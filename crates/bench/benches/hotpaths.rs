//! Criterion micro-benchmarks of the hot code paths (real wall-clock, as
//! opposed to the harness binaries' virtual-time measurements):
//!
//! - CRIU dump and restore across snapshot sizes (with zero-page dedup
//!   on/off workloads)
//! - class-file parse + verify throughput
//! - Markdown rendering
//! - image decode and box resize
//! - statistics kernels (bootstrap CI, Shapiro–Wilk, Mann–Whitney)
//! - fleet event-loop throughput, serial vs sharded, on a fixed
//!   50k-arrival streamed trace

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use prebake_criu::{
    dump, repack, restore, DumpOptions, RepackOptions, RestoreMode, RestoreOptions, WsImage,
};
use prebake_fleet::{
    FleetConfig, FleetSim, FunctionProfile, Gear, GearCost, KeepAlive, Policy, RegistryConfig,
    StartSelection,
};
use prebake_functions::image::{resize_box, CompressedImage};
use prebake_functions::{markdown, sample_markdown};
use prebake_platform::loadgen::{ArrivalGen, MergedArrivals};
use prebake_runtime::classfile::ClassFile;
use prebake_runtime::gen::{synth_class, SplitMix64};
use prebake_sim::kernel::{Kernel, INIT_PID};
use prebake_sim::mem::{Prot, VmaKind, PAGE_SIZE};
use prebake_sim::proc::Pid;
use prebake_sim::time::{SimDuration, SimInstant};
use prebake_stats::{bootstrap, mannwhitney, shapiro};

/// Builds a kernel hosting a process with `pages` materialised pages
/// (`zero_fraction` of them all-zero to exercise dedup).
fn kernel_with_process(pages: u64, zero_fraction: f64) -> (Kernel, Pid, Pid) {
    let mut k = Kernel::free(1);
    let tracer = k.sys_clone(INIT_PID).unwrap();
    let target = k.sys_clone(INIT_PID).unwrap();
    let addr = k
        .sys_mmap(
            target,
            pages * PAGE_SIZE as u64,
            Prot::RW,
            VmaKind::RuntimeHeap,
        )
        .unwrap();
    let mut rng = SplitMix64::new(7);
    for i in 0..pages {
        let data = if (i as f64 / pages as f64) < zero_fraction {
            vec![0u8; PAGE_SIZE]
        } else {
            rng.nonzero_bytes(PAGE_SIZE)
        };
        k.mem_write(target, addr.add(i * PAGE_SIZE as u64), &data)
            .unwrap();
    }
    (k, tracer, target)
}

fn bench_criu(c: &mut Criterion) {
    let mut group = c.benchmark_group("criu");
    group.sample_size(20);
    for &pages in &[256u64, 1024, 4096] {
        group.throughput(Throughput::Bytes(pages * PAGE_SIZE as u64));
        group.bench_with_input(BenchmarkId::new("dump", pages), &pages, |b, &pages| {
            b.iter_batched(
                || kernel_with_process(pages, 0.0),
                |(mut k, tracer, target)| {
                    let mut opts = DumpOptions::new(target, "/img");
                    opts.leave_running = true;
                    dump(&mut k, tracer, &opts).unwrap()
                },
                criterion::BatchSize::LargeInput,
            );
        });
        group.bench_with_input(BenchmarkId::new("restore", pages), &pages, |b, &pages| {
            let (mut k, tracer, target) = kernel_with_process(pages, 0.0);
            let mut opts = DumpOptions::new(target, "/img");
            opts.leave_running = true;
            dump(&mut k, tracer, &opts).unwrap();
            b.iter(|| {
                let stats = restore(&mut k, tracer, &RestoreOptions::new("/img")).unwrap();
                // drop the restored process so pids/memory don't pile up
                k.sys_exit(stats.pid, 0).unwrap();
                k.reap(stats.pid).unwrap();
                stats.pages_installed
            });
        });
    }
    // Extent-vectored vs page-granular eager restore of one image set.
    {
        let (mut k, tracer, target) = kernel_with_process(1024, 0.0);
        let mut dopts = DumpOptions::new(target, "/img");
        dopts.leave_running = true;
        dump(&mut k, tracer, &dopts).unwrap();
        for (label, vectored) in [
            ("eager_vectored_1024", true),
            ("eager_per_page_1024", false),
        ] {
            let mut opts = RestoreOptions::new("/img");
            opts.vectored = vectored;
            group.bench_function(label, |b| {
                b.iter(|| {
                    let stats = restore(&mut k, tracer, &opts).unwrap();
                    k.sys_exit(stats.pid, 0).unwrap();
                    k.reap(stats.pid).unwrap();
                    stats.pages_installed
                });
            });
        }
    }
    // Sharded vs serial extent install of one image set (the wall-clock
    // cost of the crossbeam fan-out plus per-shard decode).
    {
        let (mut k, tracer, target) = kernel_with_process(1024, 0.0);
        let mut dopts = DumpOptions::new(target, "/img");
        dopts.leave_running = true;
        dump(&mut k, tracer, &dopts).unwrap();
        for (label, threads) in [("install_serial_1024", 1), ("install_sharded4_1024", 4)] {
            let mut opts = RestoreOptions::new("/img");
            opts.threads = threads;
            group.bench_function(label, |b| {
                b.iter(|| {
                    let stats = restore(&mut k, tracer, &opts).unwrap();
                    k.sys_exit(stats.pid, 0).unwrap();
                    k.reap(stats.pid).unwrap();
                    stats.shards
                });
            });
        }
    }
    // Prefetch streaming before and after the fault-order repack: the
    // same strided working set read from a dump-order vs reordered image.
    {
        let (mut k, tracer, target) = kernel_with_process(1024, 0.0);
        let mut dopts = DumpOptions::new(target, "/img_layout");
        dopts.leave_running = true;
        dump(&mut k, tracer, &dopts).unwrap();
        let vma = k
            .process(target)
            .unwrap()
            .mem
            .vmas()
            .next()
            .unwrap()
            .clone();
        let base = vma.start.0 / PAGE_SIZE as u64;
        let ws: Vec<u64> = (0..1024u64)
            .step_by(2)
            .chain((1..1024u64).step_by(2))
            .map(|i| base + i)
            .collect();
        k.fs_write_file("/img_layout/ws.img", WsImage::from_fault_log(ws).encode())
            .unwrap();
        let opts = RestoreOptions::with_mode("/img_layout", RestoreMode::Prefetch);
        group.bench_function("prefetch_dump_order_1024", |b| {
            b.iter(|| {
                let stats = restore(&mut k, tracer, &opts).unwrap();
                k.sys_exit(stats.pid, 0).unwrap();
                k.reap(stats.pid).unwrap();
                stats.pages_installed
            });
        });
        repack(&mut k, &RepackOptions::new("/img_layout")).unwrap();
        group.bench_function("prefetch_fault_order_1024", |b| {
            b.iter(|| {
                let stats = restore(&mut k, tracer, &opts).unwrap();
                k.sys_exit(stats.pid, 0).unwrap();
                k.reap(stats.pid).unwrap();
                stats.pages_installed
            });
        });
    }
    // Single-page vs batched (fault-around) lazy fault servicing: restore
    // withholds every page, then a sequential sweep faults them all in.
    {
        let (mut k, tracer, target) = kernel_with_process(1024, 0.0);
        let mut dopts = DumpOptions::new(target, "/img");
        dopts.leave_running = true;
        dump(&mut k, tracer, &dopts).unwrap();
        for (label, window) in [
            ("fault_service_single_1024", 1),
            ("fault_service_batched_1024", 64),
        ] {
            let mut opts = RestoreOptions::with_mode("/img", RestoreMode::Lazy);
            opts.fault_around = window;
            group.bench_function(label, |b| {
                b.iter(|| {
                    let stats = restore(&mut k, tracer, &opts).unwrap();
                    let vma = k
                        .process(stats.pid)
                        .unwrap()
                        .mem
                        .vmas()
                        .next()
                        .unwrap()
                        .clone();
                    for i in 0..1024u64 {
                        k.mem_read(stats.pid, vma.start.add(i * PAGE_SIZE as u64), 8)
                            .unwrap();
                    }
                    k.sys_exit(stats.pid, 0).unwrap();
                    k.reap(stats.pid).unwrap();
                    stats.pages_lazy
                });
            });
        }
    }
    // Zero-page dedup benefit.
    group.bench_function("dump_half_zero_1024", |b| {
        b.iter_batched(
            || kernel_with_process(1024, 0.5),
            |(mut k, tracer, target)| {
                let mut opts = DumpOptions::new(target, "/img");
                opts.leave_running = true;
                dump(&mut k, tracer, &opts).unwrap()
            },
            criterion::BatchSize::LargeInput,
        );
    });
    group.finish();
}

fn bench_classfile(c: &mut Criterion) {
    let mut group = c.benchmark_group("classfile");
    for &size in &[4usize << 10, 64 << 10] {
        let class = synth_class("bench.C", 1, size);
        let bytes = class.encode();
        group.throughput(Throughput::Bytes(bytes.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("parse_verify", size),
            &bytes,
            |b, bytes| {
                b.iter(|| {
                    let parsed = ClassFile::parse(bytes).unwrap();
                    parsed.verify().unwrap();
                    parsed.code_bytes()
                });
            },
        );
    }
    group.finish();
}

fn bench_markdown(c: &mut Criterion) {
    let doc = sample_markdown();
    let mut group = c.benchmark_group("markdown");
    group.throughput(Throughput::Bytes(doc.len() as u64));
    group.bench_function("render_sample_doc", |b| {
        b.iter(|| markdown::render_page("bench", &doc));
    });
    group.finish();
}

fn bench_image(c: &mut Criterion) {
    let mut group = c.benchmark_group("image");
    group.sample_size(10);
    let small = CompressedImage::synthetic(860, 360, 3, 1 << 16);
    group.bench_function("decode_860x360", |b| b.iter(|| small.decode()));
    let bmp = small.decode();
    group.bench_function("resize_box_10pct_860x360", |b| {
        b.iter(|| resize_box(&bmp, 0.1))
    });
    group.finish();
}

fn bench_stats(c: &mut Criterion) {
    let mut rng = SplitMix64::new(5);
    let a: Vec<f64> = (0..200)
        .map(|_| 100.0 + (rng.next_u64() % 997) as f64 / 100.0)
        .collect();
    let b2: Vec<f64> = (0..200)
        .map(|_| 60.0 + (rng.next_u64() % 997) as f64 / 100.0)
        .collect();
    let mut group = c.benchmark_group("stats");
    group.bench_function("bootstrap_median_ci_200x2000", |b| {
        b.iter(|| bootstrap::median_ci(&a, 2000, 0.95, 1));
    });
    group.bench_function("shapiro_wilk_200", |b| {
        b.iter(|| shapiro::shapiro_wilk(&a));
    });
    group.bench_function("mann_whitney_200v200", |b| {
        b.iter(|| mannwhitney::mann_whitney(&a, &b2));
    });
    group.finish();
}

/// A fleet sized like the scale ablation's quick gate: 6 prebaked
/// tenants on 200 workers under the adaptive policy with the registry
/// tier on, fed a lazily merged 50k-arrival Poisson mix.
const FLEET_BENCH_ARRIVALS_PER_TENANT: usize = 8_334;

fn fleet_bench_sim(shards: usize) -> FleetSim {
    let mut sim = FleetSim::new(FleetConfig {
        workers: 200,
        mem_budget_bytes: 4 << 30,
        cold_start_concurrency: 4,
        queue_cap: 4096,
        max_replicas_per_function: 64,
        policy: Policy {
            keep_alive: KeepAlive::FixedTtl(SimDuration::from_secs(60)),
            start: StartSelection::Adaptive,
        },
        registry: Some(RegistryConfig::default()),
        shards,
        retain_completed: false,
        ..FleetConfig::default()
    });
    for t in 0..6u64 {
        sim.register(FunctionProfile::synthetic(
            &format!("tenant-{t}"),
            &[
                (
                    Gear::Vanilla,
                    GearCost {
                        cold_ms: 150.0 + 40.0 * t as f64,
                        first_service_ms: 8.0 + t as f64,
                        warm_service_ms: 1.5 + 0.5 * t as f64,
                        replica_mem_bytes: (64 + 24 * t) << 20,
                        image_bytes: 0,
                    },
                ),
                (
                    Gear::Prefetch,
                    GearCost {
                        cold_ms: 18.0 + 6.0 * t as f64,
                        first_service_ms: 3.0 + 0.5 * t as f64,
                        warm_service_ms: 1.5 + 0.5 * t as f64,
                        replica_mem_bytes: (64 + 24 * t) << 20,
                        image_bytes: (24 + 12 * t) << 20,
                    },
                ),
            ],
        ));
    }
    sim
}

fn fleet_bench_stream() -> MergedArrivals<ArrivalGen> {
    let gens = (0..6u64)
        .map(|t| {
            ArrivalGen::poisson(
                &format!("tenant-{t}"),
                FLEET_BENCH_ARRIVALS_PER_TENANT,
                SimInstant::EPOCH + SimDuration::from_millis(13 * t),
                SimDuration::from_millis(14 + 4 * t),
                t.wrapping_add(1).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            )
            .unwrap()
        })
        .collect();
    MergedArrivals::new(gens)
}

fn bench_fleet(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet");
    group.sample_size(10);
    group.throughput(Throughput::Elements(
        6 * FLEET_BENCH_ARRIVALS_PER_TENANT as u64,
    ));
    // Serial (one shard, one queue) vs sharded event loop on the same
    // streamed trace; the elements/sec criterion reports is arrivals/sec,
    // and the speedup between the two rows is the scan-domain reduction
    // the cells buy (DESIGN.md §16).
    for &shards in &[1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("event_loop_50k", shards),
            &shards,
            |b, &shards| {
                b.iter_batched(
                    || fleet_bench_sim(shards),
                    |mut sim| {
                        sim.run_stream(fleet_bench_stream()).unwrap();
                        sim.events_processed()
                    },
                    criterion::BatchSize::LargeInput,
                );
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_criu,
    bench_classfile,
    bench_markdown,
    bench_image,
    bench_stats,
    bench_fleet
);
criterion_main!(benches);
