//! The bench regression gate: compares two `BENCH_*.json` documents
//! metric by metric with direction-aware tolerance bands.
//!
//! Both documents are flattened to `path → number` (e.g.
//! `sweep[3].p99_ms`, `compact.pages_compacted`). Paths whose leaf names
//! mark a latency or cost metric are *lower-is-better*: the gate fails
//! when the new value exceeds the old by more than the relative
//! tolerance **and** the absolute floor (the floor keeps sub-millisecond
//! jitter on tiny medians from tripping a percentage band). All other
//! numeric leaves are *neutral*: changes are reported as drift but never
//! fail the gate, since deterministic reruns only move them when
//! behavior intentionally changed.

use crate::json::Value;

/// Whether a metric's direction is known.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Latency/cost: growth beyond tolerance is a regression.
    LowerIsBetter,
    /// Counters and structure: changes are drift, never failures.
    Neutral,
}

/// Classifies a flattened metric path by its leaf name.
pub fn direction_of(path: &str) -> Direction {
    let leaf = path
        .rsplit(['.', ']'])
        .find(|s| !s.is_empty())
        .unwrap_or(path);
    if leaf.ends_with("_ms")
        || leaf.ends_with("_mb")
        || leaf == "cold_fraction"
        || leaf == "shed"
        || leaf.ends_with("egress_bytes")
    {
        Direction::LowerIsBetter
    } else {
        Direction::Neutral
    }
}

/// What the gate concluded about one metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Lower-is-better metric grew past tolerance: fails the gate.
    Regression,
    /// Lower-is-better metric shrank past tolerance.
    Improvement,
    /// Neutral metric moved past tolerance.
    Drift,
    /// Within tolerance (or below the absolute floor).
    Stable,
}

/// One compared metric.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDelta {
    /// Flattened path, e.g. `sweep[3].p99_ms`.
    pub path: String,
    /// Baseline value.
    pub old: f64,
    /// Candidate value.
    pub new: f64,
    /// Direction the path classified to.
    pub direction: Direction,
    /// The gate's conclusion.
    pub verdict: Verdict,
}

impl MetricDelta {
    /// Relative change `(new - old) / |old|` (infinite when the
    /// baseline is zero and the candidate isn't).
    pub fn rel_change(&self) -> f64 {
        if self.old == 0.0 {
            if self.new == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (self.new - self.old) / self.old.abs()
        }
    }
}

/// Tolerances for the gate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerance {
    /// Relative band, e.g. `0.05` = ±5 %.
    pub rel: f64,
    /// Absolute floor: deltas smaller than this never regress
    /// (milliseconds for `_ms` metrics; same unit as the metric
    /// otherwise).
    pub floor_abs: f64,
}

impl Default for Tolerance {
    fn default() -> Self {
        Tolerance {
            rel: 0.05,
            floor_abs: 0.5,
        }
    }
}

/// The full comparison of two documents.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DiffReport {
    /// Every metric present in both documents, in baseline file order.
    pub deltas: Vec<MetricDelta>,
    /// Numeric paths only the baseline has (schema shrank).
    pub missing_in_new: Vec<String>,
    /// Numeric paths only the candidate has (schema grew).
    pub missing_in_old: Vec<String>,
}

impl DiffReport {
    /// Metrics that fail the gate.
    pub fn regressions(&self) -> impl Iterator<Item = &MetricDelta> {
        self.deltas
            .iter()
            .filter(|d| d.verdict == Verdict::Regression)
    }

    /// True when the candidate passes (no regressions; missing metrics
    /// are reported but do not fail, so the gate survives schema
    /// evolution between stacked PRs).
    pub fn passes(&self) -> bool {
        self.regressions().next().is_none()
    }

    /// Renders the human-readable comparison table. Stable with
    /// everything in band; one line per regression, improvement, drift,
    /// and missing path otherwise.
    pub fn render(&self, tol: Tolerance) -> String {
        let mut out = String::new();
        let (mut reg, mut imp, mut drift, mut stable) = (0usize, 0usize, 0usize, 0usize);
        for d in &self.deltas {
            match d.verdict {
                Verdict::Regression => reg += 1,
                Verdict::Improvement => imp += 1,
                Verdict::Drift => drift += 1,
                Verdict::Stable => stable += 1,
            }
            if d.verdict != Verdict::Stable {
                out.push_str(&format!(
                    "{:>12}  {}  {:.4} -> {:.4}  ({:+.1}%)\n",
                    match d.verdict {
                        Verdict::Regression => "REGRESSION",
                        Verdict::Improvement => "improvement",
                        Verdict::Drift => "drift",
                        Verdict::Stable => unreachable!(),
                    },
                    d.path,
                    d.old,
                    d.new,
                    d.rel_change() * 100.0,
                ));
            }
        }
        for p in &self.missing_in_new {
            out.push_str(&format!("{:>12}  {p}\n", "missing-new"));
        }
        for p in &self.missing_in_old {
            out.push_str(&format!("{:>12}  {p}\n", "new-metric"));
        }
        out.push_str(&format!(
            "compared {} metrics (tol {:.1}% / floor {}): \
             {reg} regressions, {imp} improvements, {drift} drifts, {stable} stable\n",
            self.deltas.len(),
            tol.rel * 100.0,
            tol.floor_abs,
        ));
        out
    }
}

/// Flattens every numeric leaf of `v` into `(path, value)` pairs, in
/// document order.
pub fn flatten(v: &Value) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    walk(v, String::new(), &mut out);
    out
}

fn walk(v: &Value, path: String, out: &mut Vec<(String, f64)>) {
    match v {
        Value::Num(n) => out.push((path, *n)),
        Value::Arr(items) => {
            for (i, item) in items.iter().enumerate() {
                walk(item, format!("{path}[{i}]"), out);
            }
        }
        Value::Obj(members) => {
            for (k, member) in members {
                let child = if path.is_empty() {
                    k.clone()
                } else {
                    format!("{path}.{k}")
                };
                walk(member, child, out);
            }
        }
        Value::Null | Value::Bool(_) | Value::Str(_) => {}
    }
}

/// Compares `new` against the `old` baseline.
pub fn diff(old: &Value, new: &Value, tol: Tolerance) -> DiffReport {
    use std::collections::BTreeMap;
    let old_flat = flatten(old);
    let new_map: BTreeMap<String, f64> = flatten(new).into_iter().collect();
    let old_keys: std::collections::BTreeSet<&String> = old_flat.iter().map(|(k, _)| k).collect();

    let mut report = DiffReport::default();
    for (path, old_v) in &old_flat {
        let Some(&new_v) = new_map.get(path) else {
            report.missing_in_new.push(path.clone());
            continue;
        };
        let direction = direction_of(path);
        let over_floor = (new_v - old_v).abs() > tol.floor_abs;
        let over_band = if *old_v == 0.0 {
            new_v != *old_v
        } else {
            ((new_v - old_v) / old_v.abs()).abs() > tol.rel
        };
        let verdict = match direction {
            Direction::LowerIsBetter if over_floor && over_band => {
                if new_v > *old_v {
                    Verdict::Regression
                } else {
                    Verdict::Improvement
                }
            }
            Direction::Neutral if over_floor && over_band => Verdict::Drift,
            _ => Verdict::Stable,
        };
        report.deltas.push(MetricDelta {
            path: path.clone(),
            old: *old_v,
            new: new_v,
            direction,
            verdict,
        });
    }
    report.missing_in_old = new_map
        .keys()
        .filter(|k| !old_keys.contains(k))
        .cloned()
        .collect();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn directions_classify_by_leaf_name() {
        assert_eq!(direction_of("sweep[3].p99_ms"), Direction::LowerIsBetter);
        assert_eq!(
            direction_of("baseline.cold_fraction"),
            Direction::LowerIsBetter
        );
        assert_eq!(direction_of("mem_high_water_mb"), Direction::LowerIsBetter);
        assert_eq!(
            direction_of("registry.egress_bytes"),
            Direction::LowerIsBetter
        );
        assert_eq!(direction_of("sweep[0].shed"), Direction::LowerIsBetter);
        assert_eq!(direction_of("parallel[1].shards"), Direction::Neutral);
        assert_eq!(
            direction_of("layout.fault_order.seek_bytes_avoided"),
            Direction::Neutral
        );
    }

    #[test]
    fn identical_documents_pass_clean() {
        let v = parse(r#"{"a": {"p99_ms": 100.0, "count": 7}, "b": [1.5, 2.5]}"#).unwrap();
        let report = diff(&v, &v, Tolerance::default());
        assert!(report.passes());
        assert_eq!(report.deltas.len(), 4);
        assert!(report.deltas.iter().all(|d| d.verdict == Verdict::Stable));
        assert!(report.missing_in_new.is_empty());
        assert!(report.missing_in_old.is_empty());
    }

    #[test]
    fn twenty_percent_p99_regression_fails_the_gate() {
        let old = parse(r#"{"sweep": [{"p99_ms": 100.0, "requests": 50}]}"#).unwrap();
        let new = parse(r#"{"sweep": [{"p99_ms": 120.0, "requests": 50}]}"#).unwrap();
        let report = diff(&old, &new, Tolerance::default());
        assert!(!report.passes());
        let regs: Vec<_> = report.regressions().collect();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].path, "sweep[0].p99_ms");
        assert!((regs[0].rel_change() - 0.2).abs() < 1e-9);
        let text = report.render(Tolerance::default());
        assert!(text.contains("REGRESSION"));
        assert!(text.contains("1 regressions"));
    }

    #[test]
    fn improvements_and_neutral_drift_do_not_fail() {
        let old = parse(r#"{"p99_ms": 100.0, "expirations": 40}"#).unwrap();
        let new = parse(r#"{"p99_ms": 50.0, "expirations": 80}"#).unwrap();
        let report = diff(&old, &new, Tolerance::default());
        assert!(report.passes());
        assert_eq!(report.deltas[0].verdict, Verdict::Improvement);
        assert_eq!(report.deltas[1].verdict, Verdict::Drift);
    }

    #[test]
    fn absolute_floor_absorbs_tiny_median_jitter() {
        // 0.43ms -> 0.47ms is +9% but only 0.04ms: not a regression.
        let old = parse(r#"{"p50_ms": 0.43}"#).unwrap();
        let new = parse(r#"{"p50_ms": 0.47}"#).unwrap();
        let report = diff(&old, &new, Tolerance::default());
        assert!(report.passes());
        assert_eq!(report.deltas[0].verdict, Verdict::Stable);
        // ...but a tighter floor catches it.
        let tight = diff(
            &old,
            &new,
            Tolerance {
                rel: 0.05,
                floor_abs: 0.01,
            },
        );
        assert!(!tight.passes());
    }

    #[test]
    fn schema_changes_report_without_failing() {
        let old = parse(r#"{"a_ms": 1.0, "gone_ms": 2.0}"#).unwrap();
        let new = parse(r#"{"a_ms": 1.0, "added_ms": 3.0}"#).unwrap();
        let report = diff(&old, &new, Tolerance::default());
        assert!(report.passes());
        assert_eq!(report.missing_in_new, vec!["gone_ms".to_owned()]);
        assert_eq!(report.missing_in_old, vec!["added_ms".to_owned()]);
        let text = report.render(Tolerance::default());
        assert!(text.contains("missing-new  gone_ms"));
        assert!(text.contains("new-metric  added_ms"));
    }

    #[test]
    fn zero_baseline_growth_is_caught_for_latency_metrics() {
        let old = parse(r#"{"queue_p99_ms": 0.0}"#).unwrap();
        let new = parse(r#"{"queue_p99_ms": 45.0}"#).unwrap();
        let report = diff(&old, &new, Tolerance::default());
        assert!(!report.passes());
        assert!(report.deltas[0].rel_change().is_infinite());
    }
}
