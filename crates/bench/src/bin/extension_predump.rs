//! Extension (paper §7 future work): incremental checkpointing cost.
//!
//! The paper plans to evaluate "checkpoint/restore as a service, including
//! the performance to deal with even bigger function code sizes and
//! concurrent snapshots". Large warmed functions make the *dump* itself
//! expensive — and the dump freezes the function, so a builder that
//! re-bakes on every deploy pays real downtime. This harness compares a
//! full freeze-everything dump against CRIU's pre-dump + `--track-mem`
//! incremental flow for all three synthetic sizes, reporting the freeze
//! window (the function's downtime) and the final-image size.

use prebake_bench::{hr, HarnessArgs};
use prebake_core::env::{provision_machine, Deployment, RUNTIME_BIN};
use prebake_criu::dump::{dump, pre_dump, DumpOptions};
use prebake_functions::{FunctionSpec, SyntheticSize};
use prebake_runtime::Replica;
use prebake_sim::kernel::Kernel;
use prebake_sim::proc::{CapSet, Pid};

/// Boots and warms a replica of `spec`, returning the kernel, the
/// supervisor and the replica pid.
fn warmed_replica(spec: FunctionSpec, seed: u64) -> (Kernel, Pid, Pid) {
    let mut kernel = Kernel::new(seed);
    let watchdog = provision_machine(&mut kernel).expect("provision");
    let dep = Deployment::install(&mut kernel, spec, 8080).expect("install");
    let pid = kernel.sys_clone(watchdog).expect("clone");
    kernel.process_mut(pid).expect("proc").caps = CapSet::empty();
    let config = dep.jlvm_config();
    kernel
        .sys_execve(
            pid,
            RUNTIME_BIN,
            &[RUNTIME_BIN.to_owned(), config.archive_path.clone()],
        )
        .expect("exec");
    let handler = dep.spec.make_handler(&dep.app_dir);
    let mut replica = Replica::boot(&mut kernel, pid, config, handler).expect("boot");
    replica
        .handle(&mut kernel, &dep.spec.sample_request())
        .expect("warm-up request");
    (kernel, watchdog, pid)
}

fn main() {
    let args = HarnessArgs::parse();
    println!("Extension — full dump vs pre-dump + incremental dump (warmed synthetics)");
    hr();
    println!(
        "{:<8} {:>12} {:>12} {:>13} {:>13} {:>12} {:>12}",
        "size", "full freeze", "inc freeze", "full image", "inc image", "pre pages", "inc pages"
    );
    hr();

    for size in SyntheticSize::all() {
        let spec = FunctionSpec::synthetic(size);

        // Full dump: freeze for the whole page walk.
        let (mut kernel, watchdog, pid) = warmed_replica(spec.clone(), args.seed);
        let mut opts = DumpOptions::new(pid, "/full");
        opts.leave_running = true;
        let full = dump(&mut kernel, watchdog, &opts).expect("full dump");

        // Incremental: pre-dump while serving, touch a little state
        // (one more request), then dump only the residue.
        let (mut kernel, watchdog, pid) = warmed_replica(spec, args.seed + 1);
        let pre =
            pre_dump(&mut kernel, watchdog, &DumpOptions::new(pid, "/pre")).expect("pre-dump");
        // the function keeps serving between pre-dump and final dump
        // (its state record page goes dirty, little else)
        let mut opts = DumpOptions::new(pid, "/final");
        opts.parent = Some("/pre".to_owned());
        let inc = dump(&mut kernel, watchdog, &opts).expect("incremental dump");

        println!(
            "{:<8} {:>10.2}ms {:>10.2}ms {:>11.1}MB {:>11.2}MB {:>12} {:>12}",
            size.label(),
            full.frozen_for.as_millis_f64(),
            inc.frozen_for.as_millis_f64(),
            full.image_bytes as f64 / 1e6,
            inc.image_bytes as f64 / 1e6,
            pre.pages_stored,
            inc.pages_stored,
        );
    }
    hr();
    println!(
        "take-away: pre-dump moves the page transfer out of the freeze window, \
         so the final freeze pays only pagemap walks + the dirty residue. The \
         benefit scales with the resident set (big: ~69ms -> ~26ms); for small \
         functions the extra soft-dirty walk eats the gain — incremental \
         checkpointing is a big-function tool, which is exactly the regime the \
         paper's §7 worries about."
    );
}
