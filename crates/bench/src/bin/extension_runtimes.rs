//! Extension (paper §7 future work): prebaking across runtimes.
//!
//! "We plan to extend our evaluation to other runtime environments such
//! as Node.JS and Python ... as different runtimes implement distinct
//! start-up procedures, the potential improvements remain unknown."
//!
//! This harness runs the medium synthetic function on three runtime
//! profiles (JVM-calibrated, V8-like, CPython-like) under all three
//! start techniques. Expected shape: prebaking always removes the fixed
//! bootstrap, but the *warm-snapshot bonus* tracks how much lazy
//! compilation the runtime does — huge for the JVM's JIT, moderate for
//! V8's baseline tier, smallest for CPython (bytecode compile only, no
//! JIT).

use prebake_bench::{hr, parallel_startup_trials, speedup_ratio_pct, HarnessArgs};
use prebake_core::measure::{StartMode, TrialRunner};
use prebake_functions::{FunctionSpec, SyntheticSize};
use prebake_runtime::profile::RuntimeProfile;
use prebake_stats::summary::median;

fn main() {
    let args = HarnessArgs::parse();
    let reps = args.reps.min(100);
    println!(
        "Extension — prebaking across runtime profiles, medium synthetic function ({reps} reps)"
    );
    hr();
    println!(
        "{:<8} {:>12} {:>14} {:>12} {:>16} {:>16}",
        "runtime", "vanilla", "pb-nowarmup", "pb-warmup", "nowarmup ratio", "warmup ratio"
    );
    hr();

    for profile in RuntimeProfile::all() {
        let spec = FunctionSpec::synthetic(SyntheticSize::Medium).with_runtime(profile);
        let mut medians = Vec::new();
        for mode in StartMode::all_three() {
            let runner = TrialRunner::new(spec.clone(), mode).expect("build runner");
            let samples: Vec<f64> = parallel_startup_trials(&runner, reps, args.seed)
                .iter()
                .map(|t| t.first_response_ms)
                .collect();
            medians.push(median(&samples));
        }
        let (v, nw, w) = (medians[0], medians[1], medians[2]);
        println!(
            "{:<8} {:>10.2}ms {:>12.2}ms {:>10.2}ms {:>15.2}% {:>15.2}%",
            profile.label(),
            v,
            nw,
            w,
            speedup_ratio_pct(v, nw),
            speedup_ratio_pct(v, w)
        );
    }
    hr();
    println!(
        "take-away: every runtime gains from prebaking (the bootstrap always \
         disappears), but the warm-snapshot bonus ranks java > node > python — \
         it captures exactly the lazy-compilation work each runtime would redo."
    );
}
