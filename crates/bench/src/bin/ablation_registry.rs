//! Ablation 8: the snapshot-registry tier — pull mode × placement on a
//! multi-node fleet.
//!
//! The paper keeps every prebaked image on the machine that restores
//! it; at fleet scale images live in a shared registry and cold starts
//! pay the network. This harness replays a heavy-tailed multi-tenant
//! trace through a 6-node fleet where every cold start pulls its
//! snapshot image through the placed node's cache, and sweeps the
//! distribution strategy:
//!
//! - `local` — no registry tier (the single-machine fiction): the
//!   lower bound everything is measured against.
//! - `naive-full-pull` — fetch the full image on every placement,
//!   cache nothing (the "pull the container image" baseline).
//! - `pull-through` — image-granular node caches: repeat placements of
//!   a function on a node are free, cross-function bytes are not.
//! - `dedup-pull-through` — frame-granular caches keyed by
//!   `page_content_hash`: frames any resident image already holds
//!   (the shared runtime base) never cross the wire again.
//! - `dedup+affinity` — same, plus placement prefers the node that
//!   would fetch the fewest bytes ("schedule where the image is warm").
//! - `dedup+affinity+prepull` — same, plus the histogram pre-warm
//!   engine pre-pulls images to the predicted node ahead of demand.
//!
//! Every variant runs the same arrivals, profiles, and seed; the only
//! degrees of freedom are the pull mode and placement. The harness
//! asserts the full stack (`dedup+affinity`) beats `naive-full-pull`
//! on both cold-start p99 latency and total registry egress, and
//! writes `BENCH_registry.json` (bit-reproducible under the default
//! seed).

use prebake_bench::{hr, improvement_pct, HarnessArgs};
use prebake_fleet::{
    FleetConfig, FleetSim, FunctionProfile, Gear, GearCost, KeepAlive, Policy, RegistryConfig,
    StartSelection,
};
use prebake_platform::loadgen::Schedule;
use prebake_registry::{PullMode, RegistryCost};
use prebake_sim::time::{SimDuration, SimInstant};
use prebake_stats::summary::quantile;

/// Fraction of each image's frames drawn from the shared runtime base
/// (the warm JLVM pages every function carries).
const SHARED_FRACTION: f64 = 0.6;

/// Fleet shape: a 6-node cluster with room for the whole mix.
const WORKERS: usize = 6;
const MEM_BUDGET: u64 = 768 << 20;

/// Name of the timer-driven tenant (strict 3-minute cadence).
const CRON_FUNCTION: &str = "synthetic-cron";

/// One registry strategy under test.
struct Variant {
    label: &'static str,
    registry: Option<RegistryConfig>,
}

/// One variant's outcome on the shared trace.
struct Outcome {
    label: &'static str,
    cold_fraction: f64,
    cold_p99_ms: f64,
    p99_ms: f64,
    egress_bytes: u64,
    dedup_bytes: u64,
    pulls: u64,
    cache_hits: u64,
    prepulls: u64,
    prewarms: u64,
}

/// The tenant mix: three size classes, two tenants each, plus the cron
/// function. Costs are synthetic (this ablation isolates the *network*
/// term, which the registry charges exactly) and shaped like the
/// measured Fig. 5 profiles: prebaked restore is fast, vanilla boot is
/// the expensive fallback, and image size scales with the function.
fn profiles() -> Vec<FunctionProfile> {
    let class = |cold_vanilla: f64, cold_prefetch: f64, mem: u64, image: u64| {
        [
            (
                Gear::Vanilla,
                GearCost {
                    cold_ms: cold_vanilla,
                    first_service_ms: 10.0,
                    warm_service_ms: 2.0,
                    replica_mem_bytes: mem,
                    image_bytes: 0,
                },
            ),
            (
                Gear::Prefetch,
                GearCost {
                    cold_ms: cold_prefetch,
                    first_service_ms: 4.0,
                    warm_service_ms: 2.0,
                    replica_mem_bytes: mem,
                    image_bytes: image,
                },
            ),
        ]
    };
    let small = class(150.0, 18.0, 64 << 20, 24 << 20);
    let medium = class(250.0, 30.0, 128 << 20, 48 << 20);
    let big = class(400.0, 45.0, 256 << 20, 96 << 20);
    vec![
        FunctionProfile::synthetic("small-a", &small),
        FunctionProfile::synthetic("small-b", &small),
        FunctionProfile::synthetic("medium-a", &medium),
        FunctionProfile::synthetic("medium-b", &medium),
        FunctionProfile::synthetic("big-a", &big),
        FunctionProfile::synthetic("big-b", &big),
        FunctionProfile::synthetic(CRON_FUNCTION, &medium),
    ]
}

/// The shared trace: heavy-tailed (Pareto) gaps per tenant straddling
/// the keep-alive horizon, plus the cron tenant's strict cadence.
fn workload(seed: u64) -> Schedule {
    let mix: [(&str, usize, f64, f64); 6] = [
        ("small-a", 120, 400.0, 1.3),    // hot: ~2s mean gap
        ("small-b", 120, 700.0, 1.3),    // warmish
        ("medium-a", 60, 8_000.0, 1.3),  // tail past the TTL
        ("medium-b", 60, 12_000.0, 1.3), // mostly past it
        ("big-a", 30, 25_000.0, 1.2),    // mostly cold
        ("big-b", 30, 40_000.0, 1.2),    // cold, rare, expensive
    ];
    let mut schedule = Schedule::default();
    for (i, (name, n, scale_ms, alpha)) in mix.into_iter().enumerate() {
        schedule = schedule.merge(
            Schedule::pareto(name, n, SimInstant::EPOCH, scale_ms, alpha, seed + i as u64)
                .expect("valid pareto parameters"),
        );
    }
    schedule.merge(
        Schedule::constant(
            CRON_FUNCTION,
            20,
            SimInstant::EPOCH,
            SimDuration::from_secs(180),
        )
        .expect("valid constant schedule"),
    )
}

fn run_variant(
    variant: &Variant,
    profiles: &[FunctionProfile],
    schedule: &Schedule,
    seed: u64,
) -> Outcome {
    // Histogram keep-alive with pre-warm for every variant: the
    // predictive engine is what the prepull row piggybacks on, and
    // holding the policy fixed isolates the registry axis.
    let policy = Policy {
        keep_alive: KeepAlive::Histogram {
            floor: SimDuration::from_secs(1),
            cap: SimDuration::from_secs(60),
            quantile: 0.99,
            prewarm: true,
        },
        start: StartSelection::Fixed(Gear::Prefetch),
    };
    let mut sim = FleetSim::new(FleetConfig {
        workers: WORKERS,
        mem_budget_bytes: MEM_BUDGET,
        policy,
        seed,
        registry: variant.registry.clone(),
        ..FleetConfig::default()
    });
    for p in profiles {
        sim.register(p.clone());
    }
    sim.run(schedule).expect("all functions registered");
    assert_eq!(
        sim.completed().len() as u64,
        sim.metrics().requests.get(),
        "every admitted request must be served ({})",
        variant.label,
    );
    let mut latency: Vec<f64> = sim.completed().iter().map(|r| r.latency_ms()).collect();
    let mut cold: Vec<f64> = sim
        .completed()
        .iter()
        .filter(|r| r.cold)
        .map(|r| r.latency_ms())
        .collect();
    latency.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    cold.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    assert!(
        !cold.is_empty(),
        "the trace must exercise cold starts ({})",
        variant.label
    );
    let m = sim.metrics();
    let (pulls, cache_hits) = sim
        .registry()
        .map_or((0, 0), |r| (r.pulls(), r.cache_hits()));
    Outcome {
        label: variant.label,
        cold_fraction: m.cold_fraction(),
        cold_p99_ms: quantile(&cold, 0.99),
        p99_ms: quantile(&latency, 0.99),
        egress_bytes: m.registry_egress_bytes.get(),
        dedup_bytes: m.registry_dedup_bytes.get(),
        pulls,
        cache_hits,
        prepulls: m.prepulls.get(),
        prewarms: m.prewarm_starts.get(),
    }
}

fn main() {
    let args = HarnessArgs::parse();
    println!(
        "Ablation — snapshot registry tier: {WORKERS}-node fleet, \
         shared fraction {SHARED_FRACTION}, seed {}",
        args.seed
    );
    hr();

    let cost = RegistryCost::default();
    let rc = |mode, affinity, prepull| RegistryConfig {
        cost,
        mode,
        affinity_placement: affinity,
        prepull,
        shared_fraction: SHARED_FRACTION,
    };
    let variants = [
        Variant {
            label: "local",
            registry: None,
        },
        Variant {
            label: "naive-full-pull",
            registry: Some(rc(PullMode::Naive, false, false)),
        },
        Variant {
            label: "pull-through",
            registry: Some(rc(PullMode::PullThrough, false, false)),
        },
        Variant {
            label: "dedup-pull-through",
            registry: Some(rc(PullMode::DedupPullThrough, false, false)),
        },
        Variant {
            label: "dedup+affinity",
            registry: Some(rc(PullMode::DedupPullThrough, true, false)),
        },
        Variant {
            label: "dedup+affinity+prepull",
            registry: Some(rc(PullMode::DedupPullThrough, true, true)),
        },
    ];

    let profiles = profiles();
    let schedule = workload(args.seed);
    println!(
        "{} arrivals, {} tenants; image sizes 24/48/96 MB behind a \
         12ms + 10 Gbit/s registry link",
        schedule.len(),
        profiles.len(),
    );
    hr();
    println!(
        "{:<23} {:>6} {:>10} {:>10} {:>9} {:>9} {:>5} {:>5}",
        "variant", "cold%", "cold p99", "p99", "egress", "dedup", "hit", "pre"
    );
    hr();

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"seed\": {},\n  \"workers\": {},\n  \"mem_budget_mb\": {},\n  \
         \"shared_fraction\": {},\n  \"registry_latency_ms\": 12,\n  \
         \"registry_gbps\": 10,\n  \"arrivals\": {},\n  \"sweep\": [\n",
        args.seed,
        WORKERS,
        MEM_BUDGET >> 20,
        SHARED_FRACTION,
        schedule.len(),
    ));
    let mut outcomes = Vec::new();
    for (i, v) in variants.iter().enumerate() {
        let o = run_variant(v, &profiles, &schedule, args.seed);
        println!(
            "{:<23} {:>5.1}% {:>8.1}ms {:>8.1}ms {:>7.1}MB {:>7.1}MB {:>5} {:>5}",
            o.label,
            o.cold_fraction * 100.0,
            o.cold_p99_ms,
            o.p99_ms,
            o.egress_bytes as f64 / 1e6,
            o.dedup_bytes as f64 / 1e6,
            o.cache_hits,
            o.prepulls,
        );
        json.push_str(&format!(
            "    {{\"variant\": \"{}\", \"cold_fraction\": {:.6}, \
             \"cold_p99_ms\": {:.4}, \"p99_ms\": {:.4}, \"egress_bytes\": {}, \
             \"dedup_bytes\": {}, \"pulls\": {}, \"cache_hits\": {}, \
             \"prepulls\": {}, \"prewarm_starts\": {}}}{}\n",
            o.label,
            o.cold_fraction,
            o.cold_p99_ms,
            o.p99_ms,
            o.egress_bytes,
            o.dedup_bytes,
            o.pulls,
            o.cache_hits,
            o.prepulls,
            o.prewarms,
            if i == variants.len() - 1 { "" } else { "," },
        ));
        outcomes.push(o);
    }
    hr();

    // -- acceptance: the full stack must beat the naive baseline on
    // both cold-start p99 and total registry egress ---------------------
    let find = |label: &str| {
        outcomes
            .iter()
            .find(|o| o.label == label)
            .expect("variant ran")
    };
    let naive = find("naive-full-pull");
    let pull_through = find("pull-through");
    let dedup = find("dedup-pull-through");
    let winner = find("dedup+affinity");
    assert!(
        pull_through.egress_bytes <= naive.egress_bytes,
        "caching whole images must not add egress"
    );
    assert!(
        dedup.egress_bytes < pull_through.egress_bytes,
        "frame dedup must ship fewer bytes than whole-image caching"
    );
    assert!(
        winner.egress_bytes < naive.egress_bytes,
        "dedup+affinity egress {} !< naive {}",
        winner.egress_bytes,
        naive.egress_bytes
    );
    assert!(
        winner.cold_p99_ms < naive.cold_p99_ms,
        "dedup+affinity cold p99 {} !< naive {}",
        winner.cold_p99_ms,
        naive.cold_p99_ms
    );
    json.push_str(&format!(
        "  ],\n  \"baseline\": {{\"variant\": \"{}\", \"cold_p99_ms\": {:.4}, \
         \"egress_bytes\": {}}},\n  \"winner\": {{\"variant\": \"{}\", \
         \"cold_p99_ms\": {:.4}, \"egress_bytes\": {}}}\n}}\n",
        naive.label,
        naive.cold_p99_ms,
        naive.egress_bytes,
        winner.label,
        winner.cold_p99_ms,
        winner.egress_bytes,
    ));

    // Only a full-rep run under the default seed refreshes the
    // checked-in copy (it is bit-reproducible); quick or reseeded runs
    // land in the gitignored results/ directory.
    let path = if args.reps >= 40 && args.seed == 1 {
        "BENCH_registry.json".to_string()
    } else {
        std::fs::create_dir_all("results").expect("mkdir results");
        "results/BENCH_registry.json".to_string()
    };
    std::fs::write(&path, &json).expect("write BENCH_registry.json");
    println!(
        "take-away: dedup-aware pull-through caching with image-affinity placement \
         cuts cold-start p99 from {:.1}ms to {:.1}ms ({:.1}% better) and total \
         registry egress from {:.1}MB to {:.1}MB ({:.1}% fewer bytes) versus \
         pulling the full image on every placement — the shared runtime base \
         crosses the wire once per node, and placement keeps it that way. \
         Wrote {path}.",
        naive.cold_p99_ms,
        winner.cold_p99_ms,
        improvement_pct(naive.cold_p99_ms, winner.cold_p99_ms),
        naive.egress_bytes as f64 / 1e6,
        winner.egress_bytes as f64 / 1e6,
        improvement_pct(naive.egress_bytes as f64, winner.egress_bytes as f64),
    );
}
