//! Ablation 5: content-addressed page store — dedup + copy-on-write
//! restore (`pagestore.img`, DESIGN.md §9).
//!
//! The paper's restore byte-copies every page per replica, so cache
//! footprint and restore work grow linearly with replica count. This
//! harness quantifies what the shared page store buys back, in three
//! parts:
//!
//! 1. the Fig. 5 synthetic functions restored eager vs CoW vs
//!    CoW+prefetch — start-to-first-response p50/p99 plus the per-trial
//!    dedup and CoW-break counters;
//! 2. image-cache accounting — what N replicas (and pairs of different
//!    functions) charge a dedup-aware cache vs raw per-snapshot totals;
//! 3. concurrent replicas on one machine — resident memory and restore
//!    latency as replicas of one snapshot stack up, eager vs CoW.

use prebake_bench::{hr, improvement_pct, parallel_startup_trials, HarnessArgs};
use prebake_core::env::{provision_machine, Deployment};
use prebake_core::measure::{StartMode, TrialRunner};
use prebake_core::prebaker::{bake, SnapshotPolicy};
use prebake_criu::cache::ImageCache;
use prebake_criu::image::ImageSet;
use prebake_criu::restore::{restore_set, RestoreMode, RestoreOptions, RestorePid};
use prebake_criu::{read_images, CriuCosts};
use prebake_functions::{FunctionSpec, SyntheticSize};
use prebake_sim::kernel::Kernel;
use prebake_sim::proc::Pid;
use prebake_stats::summary::quantile;

/// Bakes `spec`'s 1-warm-up snapshot on a fresh machine and loads the
/// image set, with the dumped listener stripped so many replicas can
/// restore onto one host kernel (production gives each replica its own
/// container network namespace; this bench packs them into one machine
/// to measure shared-frame behaviour).
fn baked_set(spec: &FunctionSpec) -> (Kernel, Pid, ImageSet) {
    let mut kernel = Kernel::new(0xAB15);
    let watchdog = provision_machine(&mut kernel).expect("provision");
    let dep = Deployment::install(&mut kernel, spec.clone(), 8080).expect("install");
    bake(
        &mut kernel,
        watchdog,
        &dep,
        SnapshotPolicy::AfterWarmup(1),
        &dep.images_dir(),
    )
    .expect("bake");
    let mut set = read_images(&mut kernel, &dep.images_dir()).expect("read images");
    set.files.fds.clear();
    (kernel, watchdog, set)
}

fn main() {
    let args = HarnessArgs::parse();
    let reps = args.reps.min(40);

    // -- part 1: first-response latency, eager vs CoW ------------------
    println!("Ablation — content-addressed page store ({reps} reps)");
    hr();
    println!(
        "{:<10} {:<16} {:>9} {:>13} {:>10} {:>10} {:>7} {:>7}",
        "function", "mode", "snapshot", "unique/total", "p50", "p99", "breaks", "majflt"
    );
    hr();

    let mut big_eager_p50 = 0.0;
    let mut big_cow_p50 = 0.0;
    let mut big_cow_breaks = 0u64;
    for size in [
        SyntheticSize::Small,
        SyntheticSize::Medium,
        SyntheticSize::Big,
    ] {
        let spec = FunctionSpec::synthetic(size);
        for mode in StartMode::cow_ablation() {
            let runner = TrialRunner::new(spec.clone(), mode).expect("runner");
            let trials = parallel_startup_trials(&runner, reps, args.seed);
            let first_response: Vec<f64> = trials.iter().map(|t| t.first_response_ms).collect();
            let p50 = quantile(&first_response, 0.5);
            let p99 = quantile(&first_response, 0.99);

            // Dedup and break counts are virtual-machine behaviour, not
            // noise: every repetition must agree exactly.
            let t0 = &trials[0];
            assert!(
                trials
                    .iter()
                    .all(|t| (t.pages_unique, t.cow_breaks()) == (t0.pages_unique, t0.cow_breaks())),
                "dedup/CoW counters must be deterministic across reps"
            );

            if size == SyntheticSize::Big {
                match mode {
                    StartMode::PrebakeWarmup(_) => big_eager_p50 = p50,
                    StartMode::PrebakeCow(_) => {
                        big_cow_p50 = p50;
                        big_cow_breaks = t0.cow_breaks();
                    }
                    _ => {}
                }
            }
            println!(
                "{:<10} {:<16} {:>6.1}MB {:>5}/{:<5} {:>8.2}ms {:>8.2}ms {:>7} {:>7}",
                spec.name(),
                mode.label(),
                runner.snapshot_bytes() as f64 / 1e6,
                t0.pages_unique,
                t0.pages_stored,
                p50,
                p99,
                t0.cow_breaks(),
                t0.probes.major_faults,
            );
        }
        hr();
    }
    assert!(
        big_cow_p50 <= big_eager_p50,
        "CoW first-response p50 must not regress vs eager on the big function \
         (cow {big_cow_p50:.2}ms vs eager {big_eager_p50:.2}ms)"
    );

    // -- part 2: dedup-aware image-cache accounting --------------------
    println!("\nImage-cache accounting (dedup-aware charging vs raw bytes)");
    hr();
    println!(
        "{:<34} {:>10} {:>10} {:>8}",
        "residents", "raw", "charged", "saved"
    );
    hr();
    let big = FunctionSpec::synthetic(SyntheticSize::Big);
    let (_, _, big_set) = baked_set(&big);
    let mut two_replica_saving = 0.0;
    for n in [2usize, 4, 8] {
        let mut cache = ImageCache::new();
        for i in 0..n {
            cache.insert(format!("replica-{i}"), big_set.clone());
        }
        let raw = cache.total_bytes();
        let charged = cache.charged_bytes();
        let saved = improvement_pct(raw as f64, charged as f64);
        if n == 2 {
            two_replica_saving = saved;
        }
        println!(
            "{:<34} {:>7.1}MB {:>7.1}MB {:>7.1}%",
            format!("{n}x {}", big.name()),
            raw as f64 / 1e6,
            charged as f64 / 1e6,
            saved
        );
    }
    // Different functions share runtime/library frames, not app frames.
    let small = FunctionSpec::synthetic(SyntheticSize::Small);
    let (_, _, small_set) = baked_set(&small);
    let mut cache = ImageCache::new();
    cache.insert("big", big_set.clone());
    cache.insert("small", small_set);
    println!(
        "{:<34} {:>7.1}MB {:>7.1}MB {:>7.1}%",
        format!("{} + {}", big.name(), small.name()),
        cache.total_bytes() as f64 / 1e6,
        cache.charged_bytes() as f64 / 1e6,
        improvement_pct(cache.total_bytes() as f64, cache.charged_bytes() as f64)
    );
    hr();
    assert!(
        two_replica_saving >= 30.0,
        "two replicas of one function must cut cache bytes by >= 30% \
         (got {two_replica_saving:.1}%)"
    );

    // -- part 3: concurrent replicas on one machine --------------------
    println!("\nConcurrent replicas from one snapshot (big function, one machine)");
    hr();
    println!(
        "{:<8} {:>14} {:>14} {:>12} {:>12}",
        "replicas", "eager RSS", "CoW RSS", "eager p50", "CoW p50"
    );
    hr();
    for n in [1usize, 2, 4, 8] {
        let mut rss = Vec::new();
        let mut p50 = Vec::new();
        for mode in [RestoreMode::Eager, RestoreMode::Cow] {
            let (mut kernel, watchdog, set) = baked_set(&big);
            let opts = RestoreOptions {
                images_dir: String::new(),
                pid: RestorePid::Fresh,
                mode,
                costs: CriuCosts::paper_calibrated(),
                vectored: true,
                fault_around: 1,
                threads: 1,
            };
            let mut pids = Vec::new();
            let mut elapsed = Vec::new();
            for _ in 0..n {
                let stats = restore_set(&mut kernel, watchdog, &set, &opts).expect("restore");
                pids.push(stats.pid);
                elapsed.push(stats.elapsed.as_millis_f64());
            }
            // Machine-wide snapshot memory: private pages of every
            // replica plus the shared pool (counted once, not per
            // mapping).
            let private: u64 = pids
                .iter()
                .map(|&pid| {
                    let mem = &kernel.process(pid).unwrap().mem;
                    mem.resident_bytes() - mem.cow_pages() * prebake_sim::mem::PAGE_SIZE as u64
                })
                .sum();
            rss.push(private + kernel.page_store().resident_bytes());
            p50.push(quantile(&elapsed, 0.5));
        }
        println!(
            "{:<8} {:>11.1}MB {:>11.1}MB {:>9.2}ms {:>9.2}ms",
            n,
            rss[0] as f64 / 1e6,
            rss[1] as f64 / 1e6,
            p50[0],
            p50[1]
        );
    }
    hr();
    println!(
        "take-away: dedup collapses duplicate runtime pages inside one snapshot and \
         shares frames across replicas, so N replicas cost close to one snapshot of \
         memory ({two_replica_saving:.1}% cache bytes saved at N=2) while CoW restore \
         reaches first response {:.1}% faster than eager on the big function — the \
         copy cost moves to the {big_cow_breaks} pages the first request actually \
         writes.",
        improvement_pct(big_eager_p50, big_cow_p50),
    );
}
