//! Ablation 6: vectored extent restore and fault-around batching.
//!
//! The paper restores snapshots page-at-a-time, so eager restore pays a
//! fixed syscall-shaped cost per stored page. This harness reruns the
//! Fig. 5 synthetic functions with the extent-based restore engine in
//! both gears — page-granular (one `restore_page_op` per page, the
//! paper's shape) and vectored (one `extent_setup` per coalesced
//! pagemap run plus streaming page copies) — and sweeps the uffd
//! fault-around window over the lazy path of the big function. Eager
//! restore should get cheaper in proportion to run length; fault-around
//! should collapse the lazy path's major-fault count without changing
//! which pages arrive.
//!
//! Besides the human-readable table the harness writes
//! `BENCH_restore.json` (p50/p95 per mode x size plus the window sweep)
//! so the numbers can be diffed across commits; with the default
//! `--seed` the file is bit-reproducible.

use prebake_bench::{hr, improvement_pct, parallel_startup_trials, HarnessArgs};
use prebake_core::measure::{StartMode, StartupTrial, TrialRunner};
use prebake_functions::{FunctionSpec, SyntheticSize};
use prebake_stats::summary::quantile;

/// Fault-around windows swept over the lazy path (1 = no batching).
const WINDOWS: [usize; 4] = [1, 4, 16, 64];

/// One treatment's latency summary, folded from raw trials.
struct Treatment {
    p50: f64,
    p95: f64,
    probes: prebake_sim::probe::ProbeCounters,
}

fn run(runner: &TrialRunner, reps: usize, seed: u64) -> Treatment {
    let trials = parallel_startup_trials(runner, reps, seed);
    let first_response: Vec<f64> = trials.iter().map(|t| t.first_response_ms).collect();
    let probes = trials[0].probes;
    // Probe counts come from virtual-machine behaviour, not noise, so
    // every repetition must agree exactly.
    assert!(
        trials.iter().all(|t: &StartupTrial| t.probes == probes),
        "probe counters must be deterministic across reps"
    );
    Treatment {
        p50: quantile(&first_response, 0.5),
        p95: quantile(&first_response, 0.95),
        probes,
    }
}

fn main() {
    let args = HarnessArgs::parse();
    let reps = args.reps.min(40);
    println!("Ablation — vectored extent restore, Fig. 5 functions ({reps} reps)");
    hr();

    // -- part 1: eager restore, per-page vs vectored -------------------
    println!(
        "{:<10} {:<12} {:>9} {:>10} {:>10} {:>8} {:>9}",
        "function", "restore", "snapshot", "p50", "p95", "extents", "gain"
    );
    hr();
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"seed\": {},\n  \"reps\": {},\n  \"eager\": [\n",
        args.seed, reps
    ));
    let mut big_gain = 0.0;
    for (si, size) in [
        SyntheticSize::Small,
        SyntheticSize::Medium,
        SyntheticSize::Big,
    ]
    .into_iter()
    .enumerate()
    {
        let spec = FunctionSpec::synthetic(size);
        let mode = StartMode::PrebakeWarmup(1);
        let per_page_runner = TrialRunner::new(spec.clone(), mode)
            .expect("runner")
            .page_granular();
        let vectored_runner = TrialRunner::new(spec.clone(), mode).expect("runner");
        let per_page = run(&per_page_runner, reps, args.seed);
        let vectored = run(&vectored_runner, reps, args.seed);
        assert_eq!(
            per_page.probes.extents_restored, 0,
            "page-granular restore must not issue extents"
        );
        assert!(
            vectored.probes.extents_restored > 0,
            "vectored restore must coalesce at least one run"
        );
        let gain = improvement_pct(per_page.p50, vectored.p50);
        if size == SyntheticSize::Big {
            big_gain = gain;
        }
        let snapshot_mb = vectored_runner.snapshot_bytes() as f64 / 1e6;
        println!(
            "{:<10} {:<12} {:>6.1}MB {:>8.2}ms {:>8.2}ms {:>8} {:>8.1}%",
            spec.name(),
            "per-page",
            snapshot_mb,
            per_page.p50,
            per_page.p95,
            per_page.probes.extents_restored,
            0.0,
        );
        println!(
            "{:<10} {:<12} {:>6.1}MB {:>8.2}ms {:>8.2}ms {:>8} {:>8.1}%",
            "",
            "vectored",
            snapshot_mb,
            vectored.p50,
            vectored.p95,
            vectored.probes.extents_restored,
            gain,
        );
        json.push_str(&format!(
            "    {{\"function\": \"{}\", \"snapshot_mb\": {:.3}, \
             \"per_page\": {{\"p50_ms\": {:.4}, \"p95_ms\": {:.4}}}, \
             \"vectored\": {{\"p50_ms\": {:.4}, \"p95_ms\": {:.4}, \"extents\": {}}}, \
             \"improvement_pct\": {:.2}}}{}\n",
            spec.name(),
            snapshot_mb,
            per_page.p50,
            per_page.p95,
            vectored.p50,
            vectored.p95,
            vectored.probes.extents_restored,
            gain,
            if si == 2 { "" } else { "," },
        ));
    }
    hr();
    assert!(
        big_gain >= 20.0,
        "vectored eager restore must cut big-function p50 by >= 20% (got {big_gain:.1}%)"
    );

    // -- part 2: fault-around window sweep, lazy big function ----------
    let big = FunctionSpec::synthetic(SyntheticSize::Big);
    println!(
        "\nFault-around window sweep — lazy restore, {} function",
        big.name()
    );
    hr();
    println!(
        "{:<8} {:>10} {:>10} {:>9} {:>9} {:>9}",
        "window", "p50", "p95", "majflt", "minflt", "avoided"
    );
    hr();
    json.push_str("  ],\n  \"fault_around\": [\n");
    let mut majors_by_window = Vec::new();
    for (wi, window) in WINDOWS.into_iter().enumerate() {
        let runner = TrialRunner::new(big.clone(), StartMode::PrebakeLazy(1))
            .expect("runner")
            .fault_around(window);
        let t = run(&runner, reps, args.seed);
        majors_by_window.push(t.probes.major_faults);
        println!(
            "{:<8} {:>8.2}ms {:>8.2}ms {:>9} {:>9} {:>9}",
            window,
            t.p50,
            t.p95,
            t.probes.major_faults,
            t.probes.minor_faults,
            t.probes.faults_avoided
        );
        json.push_str(&format!(
            "    {{\"window\": {}, \"p50_ms\": {:.4}, \"p95_ms\": {:.4}, \
             \"major_faults\": {}, \"minor_faults\": {}, \"faults_avoided\": {}}}{}\n",
            window,
            t.p50,
            t.p95,
            t.probes.major_faults,
            t.probes.minor_faults,
            t.probes.faults_avoided,
            if wi == WINDOWS.len() - 1 { "" } else { "," },
        ));
    }
    json.push_str("  ]\n}\n");
    hr();
    assert!(
        majors_by_window[1] < majors_by_window[0],
        "window >= 4 must take fewer major faults than window 1 \
         ({} vs {})",
        majors_by_window[1],
        majors_by_window[0]
    );
    assert!(
        majors_by_window.windows(2).all(|w| w[1] <= w[0]),
        "major faults must be monotone non-increasing in the window"
    );

    // Only a full-rep run under the default seed refreshes the checked-in
    // copy (it is bit-reproducible); quick or reseeded runs land in the
    // gitignored results/ directory.
    let path = if reps >= 40 && args.seed == 1 {
        "BENCH_restore.json".to_string()
    } else {
        std::fs::create_dir_all("results").expect("mkdir results");
        "results/BENCH_restore.json".to_string()
    };
    std::fs::write(&path, &json).expect("write BENCH_restore.json");
    println!(
        "take-away: coalescing stored pages into extents turns eager restore's per-page \
         syscall tax into one setup charge per run — {big_gain:.1}% faster to first \
         response on the big (1574-class) function — and fault-around batching serves a \
         window of withheld neighbours per uffd trap, collapsing lazy restore's major-fault \
         count ({} -> {} from window 1 to 64). Wrote {path}.",
        majors_by_window[0],
        majors_by_window[WINDOWS.len() - 1]
    );
}
