//! End-to-end span tracing of the start path: one traced cold start (plus
//! first request) per start mode × Fig. 5 synthetic function, exported as
//! Chrome trace-event JSON under `results/traces/` — load the files in
//! Perfetto or `chrome://tracing` to scrub through the start visually.
//!
//! Doubles as the tracing subsystem's acceptance harness: for every
//! trial, the Fig. 4 phases derived *from the span tree* must equal the
//! `PhaseTracker`'s probe-fold output exactly, or the run aborts.
//!
//! `--quick` traces the small function only; the default sweeps all
//! three sizes. `--reps` is ignored (one traced run per cell — span
//! artifacts, not statistics).

use prebake_bench::{hr, HarnessArgs};
use prebake_core::measure::{StartMode, TrialRunner};
use prebake_core::phases_from_span_tree;
use prebake_functions::{FunctionSpec, SyntheticSize};
use prebake_sim::trace::{chrome_trace_json, TraceSummary};

const OUT_DIR: &str = "results/traces";

fn modes() -> [StartMode; 4] {
    [
        StartMode::Vanilla,
        StartMode::PrebakeWarmup(1),
        StartMode::PrebakeLazy(1),
        StartMode::PrebakeCow(1),
    ]
}

fn main() {
    let args = HarnessArgs::parse();
    let sizes: Vec<SyntheticSize> = if args.reps <= 30 {
        vec![SyntheticSize::Small]
    } else {
        SyntheticSize::all().to_vec()
    };
    std::fs::create_dir_all(OUT_DIR).expect("create results/traces");

    println!("Span traces of the start path (seed {})", args.seed);
    hr();

    for size in &sizes {
        for mode in modes() {
            let spec = FunctionSpec::synthetic(*size);
            let runner = TrialRunner::new(spec, mode).expect("build runner");
            let (trial, spans) = runner.traced_trial(args.seed).expect("traced trial");

            // Acceptance gate: the span tree carries the whole phase
            // story, bit-for-bit.
            let from_spans = phases_from_span_tree(&spans).expect("trace has no startup root span");
            assert_eq!(
                from_spans,
                trial.phases,
                "{} {}: span-derived phases diverge from PhaseTracker",
                size.label(),
                mode.label()
            );

            let path = format!("{OUT_DIR}/{}-{}.json", size.label(), mode.label());
            std::fs::write(&path, chrome_trace_json(&spans)).expect("write trace");

            let summary = TraceSummary::from_spans(&spans);
            println!(
                "{} / {} — startup {:.2}ms, first response {:.2}ms, {} spans -> {}",
                size.label(),
                mode.label(),
                trial.startup_ms,
                trial.first_response_ms,
                spans.len(),
                path
            );
            println!(
                "  phases: clone {:.2}ms exec {:.2}ms rts {:.2}ms appinit {:.2}ms (spans agree exactly)",
                trial.phases.clone.as_millis_f64(),
                trial.phases.exec.as_millis_f64(),
                trial.phases.rts.as_millis_f64(),
                trial.phases.appinit.as_millis_f64(),
            );
            for line in summary.render().lines() {
                println!("  {line}");
            }
            hr();
        }
    }
    println!("all span-derived phase totals matched the probe fold");
}
