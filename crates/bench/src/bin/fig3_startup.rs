//! Figure 3: start-up time of NOOP, Markdown Render and Image Resizer
//! under the Vanilla and Prebaking techniques.
//!
//! Paper protocol: 200 repetitions per treatment; bootstrap 95 % CIs of
//! the median; Shapiro–Wilk normality check; Wilcoxon–Mann–Whitney test
//! of median equality with the Hodges–Lehmann CI of the median distance.
//!
//! Paper reference values (medians, ms):
//!   NOOP           vanilla ≈ 103, prebake ≈ 62  (−40 %)
//!   Markdown       vanilla ≈ 100, prebake ≈ 53  (−47 %)
//!   Image Resizer  vanilla ≈ 310, prebake ≈ 87  (−71 %)

use prebake_bench::{hr, improvement_pct, parallel_startup_trials, summarize, HarnessArgs};
use prebake_core::measure::{StartMode, TrialRunner};
use prebake_functions::FunctionSpec;
use prebake_stats::mannwhitney::{hodges_lehmann, mann_whitney};
use prebake_stats::shapiro::shapiro_wilk;

fn main() {
    let args = HarnessArgs::parse();
    println!(
        "Figure 3 — start-up time, Vanilla vs Prebaking ({} reps)",
        args.reps
    );
    hr();
    println!(
        "{:<16} {:>10} {:>18} {:>10} {:>18} {:>8}",
        "function", "vanilla", "95% CI", "prebake", "95% CI", "improv."
    );
    hr();

    let specs = [
        FunctionSpec::noop(),
        FunctionSpec::markdown(),
        FunctionSpec::image_resizer(),
    ];
    let paper = [
        ("noop", 40.0),
        ("markdown-render", 47.0),
        ("image-resizer", 71.0),
    ];

    for spec in specs {
        let vanilla_runner =
            TrialRunner::new(spec.clone(), StartMode::Vanilla).expect("build vanilla runner");
        let prebake_runner = TrialRunner::new(spec.clone(), StartMode::PrebakeNoWarmup)
            .expect("build prebake runner");

        let vanilla: Vec<f64> = parallel_startup_trials(&vanilla_runner, args.reps, args.seed)
            .iter()
            .map(|t| t.startup_ms)
            .collect();
        let prebake: Vec<f64> =
            parallel_startup_trials(&prebake_runner, args.reps, args.seed + 10_000)
                .iter()
                .map(|t| t.startup_ms)
                .collect();

        let sv = summarize(&vanilla, 11);
        let sp = summarize(&prebake, 12);
        println!(
            "{:<16} {:>8.2}ms {:>18} {:>8.2}ms {:>18} {:>7.1}%",
            spec.name(),
            sv.median_ms,
            sv.ci.to_string(),
            sp.median_ms,
            sp.ci.to_string(),
            improvement_pct(sv.median_ms, sp.median_ms),
        );

        // The paper's statistical pipeline.
        let sw_v = shapiro_wilk(&vanilla);
        let sw_p = shapiro_wilk(&prebake);
        let mw = mann_whitney(&vanilla, &prebake);
        let (hl, hl_ci) = hodges_lehmann(&vanilla, &prebake, 0.95);
        println!(
            "  shapiro-wilk: vanilla W={:.4} p={:.3}, prebake W={:.4} p={:.3}",
            sw_v.w, sw_v.p_value, sw_p.w, sw_p.p_value
        );
        println!(
            "  wilcoxon-mann-whitney: p={:.2e} ({}); median distance {:.2}ms, 95% CI {}",
            mw.p_value,
            if mw.rejects_equality(0.05) {
                "medians differ"
            } else {
                "no difference detected"
            },
            hl,
            hl_ci
        );
        println!(
            "  CIs intersect: {}; snapshot {:.1} MB",
            sv.ci.intersects(&sp.ci),
            prebake_runner.snapshot_bytes() as f64 / 1e6
        );
    }
    hr();
    println!("paper reference improvements:");
    for (name, pct) in paper {
        println!("  {name:<16} ≈ {pct:.0}%");
    }
}
