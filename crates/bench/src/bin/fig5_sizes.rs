//! Figure 5: impact of function (code) size on vanilla start-up time.
//!
//! Synthetic functions — small (374 classes, ≈2.8 MB), medium (574,
//! ≈9.2 MB), big (1574, ≈41 MB) — started vanilla; the measurement is
//! time to the first response, since these functions load their classes
//! on first invocation. 95 % bootstrap CIs.
//!
//! Paper reference (Table 1 vanilla column): small ≈ 219.8 ms,
//! medium ≈ 456.0 ms, big ≈ 1621.0 ms — linear in archive size at
//! ≈ 36.7 ms/MiB.

use prebake_bench::{hr, parallel_startup_trials, summarize, HarnessArgs};
use prebake_core::measure::{StartMode, TrialRunner};
use prebake_functions::{FunctionSpec, SyntheticSize};

fn main() {
    let args = HarnessArgs::parse();
    println!(
        "Figure 5 — vanilla start-up vs function size ({} reps)",
        args.reps
    );
    hr();
    println!(
        "{:<8} {:>8} {:>10} {:>12} {:>20}",
        "size", "classes", "archive", "median", "95% CI"
    );
    hr();

    let mut points: Vec<(f64, f64)> = Vec::new();
    for size in SyntheticSize::all() {
        let spec = FunctionSpec::synthetic(size);
        let archive_mb = spec.archive().payload_bytes() as f64 / (1024.0 * 1024.0);
        let runner = TrialRunner::new(spec, StartMode::Vanilla).expect("build runner");
        let samples: Vec<f64> = parallel_startup_trials(&runner, args.reps, args.seed)
            .iter()
            .map(|t| t.first_response_ms)
            .collect();
        let s = summarize(&samples, 5);
        println!(
            "{:<8} {:>8} {:>8.1}MB {:>10.2}ms {:>20}",
            size.label(),
            size.class_count(),
            archive_mb,
            s.median_ms,
            s.ci.to_string()
        );
        points.push((archive_mb, s.median_ms));
    }
    hr();

    // Least-squares slope through the three points (the paper's implicit
    // size sensitivity).
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    let intercept = (sy - slope * sx) / n;
    println!(
        "linear fit: {intercept:.1}ms + {slope:.1}ms/MiB (paper regression ≈ 117ms + 36.7ms/MiB)"
    );
}
