//! Ablation 3: lazy restore and working-set prefetch (`prebake-lazy`).
//!
//! The paper restores snapshots eagerly, so restore time grows with
//! snapshot size (Fig. 5). This harness reruns the Fig. 5 synthetic
//! functions under the three restore strategies of the lazy-restore
//! subsystem — eager (the paper's), pure lazy (demand-fault every page)
//! and REAP-style prefetch (bulk-load the recorded `ws.img`, demand-fault
//! the rest) — and reports start-to-first-response p50/p99 plus the
//! page-fault anatomy of each strategy. Prefetch should beat eager by a
//! margin that grows with snapshot size; pure lazy pays a fault trap per
//! touched page and shows why recording matters.

use prebake_bench::{hr, improvement_pct, parallel_startup_trials, summarize, HarnessArgs};
use prebake_core::env::{provision_machine, Deployment};
use prebake_core::measure::{StartMode, TrialRunner};
use prebake_core::prebaker::{bake, record_working_set, SnapshotPolicy};
use prebake_core::starter::{PrebakeStarter, Starter};
use prebake_criu::RestoreMode;
use prebake_functions::{FunctionSpec, SyntheticSize};
use prebake_sim::kernel::Kernel;
use prebake_sim::probe::ProbeCounters;
use prebake_stats::summary::quantile;

/// Fault anatomy of the restore window alone (readiness, before the
/// first request), folded straight from the raw probe trace.
fn restore_window_faults(spec: &FunctionSpec, mode: RestoreMode) -> ProbeCounters {
    let mut kernel = Kernel::new(0xFA117);
    let watchdog = provision_machine(&mut kernel).expect("provision");
    let dep = Deployment::install(&mut kernel, spec.clone(), 8080).expect("install");
    bake(
        &mut kernel,
        watchdog,
        &dep,
        SnapshotPolicy::AfterWarmup(1),
        &dep.images_dir(),
    )
    .expect("bake");
    if mode == RestoreMode::Prefetch {
        record_working_set(&mut kernel, watchdog, &dep, &dep.images_dir()).expect("record");
    }
    let started = PrebakeStarter::with_mode(mode)
        .start(&mut kernel, watchdog, &dep)
        .expect("start");
    ProbeCounters::from_events(&started.trace)
}

fn main() {
    let args = HarnessArgs::parse();
    let reps = args.reps.min(40);
    println!("Ablation — lazy restore & working-set prefetch, Fig. 5 functions ({reps} reps)");
    hr();
    println!(
        "{:<10} {:<12} {:>9} {:>10} {:>10} {:>20} {:>8} {:>8}",
        "function", "mode", "snapshot", "p50", "p99", "median 95% CI", "majflt", "minflt"
    );
    hr();

    let mut big_eager_p50 = 0.0;
    let mut big_prefetch_p50 = 0.0;
    for size in [
        SyntheticSize::Small,
        SyntheticSize::Medium,
        SyntheticSize::Big,
    ] {
        let spec = FunctionSpec::synthetic(size);
        for mode in StartMode::lazy_ablation() {
            let runner = TrialRunner::new(spec.clone(), mode).expect("runner");
            let trials = parallel_startup_trials(&runner, reps, args.seed);
            let first_response: Vec<f64> = trials.iter().map(|t| t.first_response_ms).collect();
            let p50 = quantile(&first_response, 0.5);
            let p99 = quantile(&first_response, 0.99);
            let s = summarize(&first_response, 7);

            // Fault counts come from virtual-machine behaviour, not
            // noise, so every repetition must agree exactly.
            let probes = trials[0].probes;
            assert!(
                trials
                    .iter()
                    .all(|t| (t.probes.major_faults, t.probes.minor_faults)
                        == (probes.major_faults, probes.minor_faults)),
                "fault counts must be deterministic across reps"
            );

            if size == SyntheticSize::Big {
                match mode {
                    StartMode::PrebakeWarmup(_) => big_eager_p50 = p50,
                    StartMode::PrebakePrefetch(_) => big_prefetch_p50 = p50,
                    _ => {}
                }
            }
            println!(
                "{:<10} {:<12} {:>6.1}MB {:>8.2}ms {:>8.2}ms {:>20} {:>8} {:>8}",
                spec.name(),
                mode.label(),
                runner.snapshot_bytes() as f64 / 1e6,
                p50,
                p99,
                s.ci.to_string(),
                probes.major_faults,
                probes.minor_faults,
            );
        }
        // Where pure lazy pays: faults taken before readiness (handler
        // re-attach touches runtime state and the archive mapping).
        let lazy_win = restore_window_faults(&spec, RestoreMode::Lazy);
        let prefetch_win = restore_window_faults(&spec, RestoreMode::Prefetch);
        println!(
            "{:<10} restore window alone: lazy {} major faults, prefetch {}",
            "", lazy_win.major_faults, prefetch_win.major_faults
        );
        hr();
    }
    println!(
        "take-away: prefetch loads only the recorded working set, but the warm request's \
         class touches interleave two VMAs, so on a dump-order image the read pays a seek \
         per discontinuity — {:.1}% slower than eager to first response on the big \
         (1574-class) function; the fault-order repack (ablation_restore_parallel) \
         removes the seeks. Pure lazy resumes fastest but pays a fault trap per touched \
         page, pushing the cost into the first request.",
        -improvement_pct(big_eager_p50, big_prefetch_p50)
    );
}
