//! Ablation 9: parallel sharded restore, fault-order layout, compaction.
//!
//! Three restore-side levers over the same baked snapshots, gated
//! against the committed vectored-eager baseline of `BENCH_restore.json`
//! (89.3953 ms p50 to first response on the big synthetic function):
//!
//! 1. **Parallel sharded restore** — the coalesced extent table is
//!    partitioned into per-thread shards over disjoint ranges and
//!    installed by real crossbeam threads, charged as overlapped virtual
//!    time (wall = max shard + a per-shard spawn tax). Two shards must
//!    already beat the serial baseline.
//! 2. **Fault-order image layout** — the offline `repack` pass rewrites
//!    `pages.img` into recorded fault order, turning the prefetch read
//!    from a seek per run into one sequential stream.
//! 3. **Hot-image compaction** — `--compact` drops never-faulted pages
//!    into the fallback layer, shrinking the bytes a cold start touches;
//!    correctness is covered by the bit-identity fallback proptests.
//!
//! Writes `BENCH_parallel.json`; with the default `--seed` the file is
//! bit-reproducible (the CI determinism gate runs it twice and `cmp`s).

use prebake_bench::{hr, improvement_pct, parallel_startup_trials, HarnessArgs};
use prebake_core::measure::{StartMode, StartupTrial, TrialRunner};
use prebake_functions::{FunctionSpec, SyntheticSize};
use prebake_stats::summary::quantile;

/// Committed vectored-eager p50 on synthetic-big (`BENCH_restore.json`).
const BASELINE_BIG_P50_MS: f64 = 89.3953;

/// Shard counts swept over the eager path (1 = the serial baseline).
const THREADS: [usize; 4] = [1, 2, 4, 8];

/// One treatment's summary, folded from raw trials.
struct Treatment {
    startup_p50: f64,
    p50: f64,
    p95: f64,
    shards: usize,
    seek_bytes_avoided: u64,
    pages_compacted: usize,
}

fn run(runner: &TrialRunner, reps: usize, seed: u64) -> Treatment {
    let trials = parallel_startup_trials(runner, reps, seed);
    let startup: Vec<f64> = trials.iter().map(|t| t.startup_ms).collect();
    let first_response: Vec<f64> = trials.iter().map(|t| t.first_response_ms).collect();
    let head = &trials[0];
    // Restore counters come from virtual-machine behaviour, not noise,
    // so every repetition must agree exactly.
    assert!(
        trials.iter().all(|t: &StartupTrial| {
            t.restore_shards == head.restore_shards
                && t.seek_bytes_avoided == head.seek_bytes_avoided
                && t.pages_compacted == head.pages_compacted
        }),
        "restore counters must be deterministic across reps"
    );
    Treatment {
        startup_p50: quantile(&startup, 0.5),
        p50: quantile(&first_response, 0.5),
        p95: quantile(&first_response, 0.95),
        shards: head.restore_shards,
        seek_bytes_avoided: head.seek_bytes_avoided,
        pages_compacted: head.pages_compacted,
    }
}

fn main() {
    let args = HarnessArgs::parse();
    let reps = args.reps.min(40);
    let big = FunctionSpec::synthetic(SyntheticSize::Big);
    println!("Ablation — parallel restore, fault-order layout, compaction ({reps} reps)");
    hr();

    // -- part 1: sharded eager restore vs the serial baseline ----------
    println!(
        "{:<8} {:>10} {:>10} {:>10} {:>8}",
        "threads", "startup", "p50", "p95", "gain"
    );
    hr();
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"seed\": {},\n  \"reps\": {},\n  \"baseline_big_p50_ms\": {BASELINE_BIG_P50_MS},\n  \"parallel\": [\n",
        args.seed, reps
    ));
    let mut serial_p50 = 0.0;
    let mut best_p50 = f64::MAX;
    for (ti, threads) in THREADS.into_iter().enumerate() {
        let runner = TrialRunner::new(big.clone(), StartMode::PrebakeWarmup(1))
            .expect("runner")
            .threads(threads);
        let t = run(&runner, reps, args.seed);
        // Shards are capped by the number of coalesced extents, so high
        // thread counts may clamp below the request.
        assert!(
            t.shards >= threads.min(2) && t.shards <= threads,
            "expected 1..={threads} shards, got {}",
            t.shards
        );
        if threads == 1 {
            serial_p50 = t.p50;
        }
        best_p50 = best_p50.min(t.p50);
        println!(
            "{:<8} {:>8.2}ms {:>8.2}ms {:>8.2}ms {:>7.1}%",
            threads,
            t.startup_p50,
            t.p50,
            t.p95,
            improvement_pct(BASELINE_BIG_P50_MS, t.p50),
        );
        json.push_str(&format!(
            "    {{\"threads\": {}, \"startup_p50_ms\": {:.4}, \"p50_ms\": {:.4}, \
             \"p95_ms\": {:.4}, \"shards\": {}}}{}\n",
            threads,
            t.startup_p50,
            t.p50,
            t.p95,
            t.shards,
            if ti == THREADS.len() - 1 { "" } else { "," },
        ));
        if threads >= 2 {
            assert!(
                t.p50 < BASELINE_BIG_P50_MS,
                "{threads} shards must beat the committed vectored-eager baseline \
                 ({:.4} !< {BASELINE_BIG_P50_MS})",
                t.p50
            );
            assert!(
                t.p50 < serial_p50,
                "{threads} shards must beat this run's serial path \
                 ({:.4} !< {serial_p50:.4})",
                t.p50
            );
        }
    }
    hr();
    if reps >= 40 && args.seed == 1 {
        // The serial path is bit-identical to the committed baseline run.
        assert!(
            (serial_p50 - BASELINE_BIG_P50_MS).abs() < 5e-5,
            "threads=1 must reproduce the committed baseline exactly \
             ({serial_p50:.4} vs {BASELINE_BIG_P50_MS})"
        );
    }

    // -- part 2: fault-order layout under the prefetch read ------------
    println!("\nPrefetch restore, dump-order vs fault-order image layout");
    hr();
    println!(
        "{:<12} {:>10} {:>10} {:>14}",
        "layout", "p50", "p95", "streamed"
    );
    hr();
    let dump_runner = TrialRunner::new(big.clone(), StartMode::PrebakePrefetch(1)).expect("runner");
    let ordered_runner = TrialRunner::new(big.clone(), StartMode::PrebakePrefetch(1))
        .expect("runner")
        .fault_order()
        .expect("repack");
    let dump_order = run(&dump_runner, reps, args.seed);
    let ordered = run(&ordered_runner, reps, args.seed);
    for (label, t) in [("dump-order", &dump_order), ("fault-order", &ordered)] {
        println!(
            "{:<12} {:>8.2}ms {:>8.2}ms {:>12.2}MB",
            label,
            t.p50,
            t.p95,
            t.seek_bytes_avoided as f64 / 1e6
        );
    }
    hr();
    assert!(
        ordered.seek_bytes_avoided > dump_order.seek_bytes_avoided,
        "fault-order layout must stream more of the working-set read \
         ({} !> {})",
        ordered.seek_bytes_avoided,
        dump_order.seek_bytes_avoided
    );
    assert!(
        ordered.p95 < dump_order.p95,
        "fault-order layout must improve prefetch first-response p95 \
         ({:.4} !< {:.4})",
        ordered.p95,
        dump_order.p95
    );
    json.push_str(&format!(
        "  ],\n  \"layout\": {{\
         \"dump_order\": {{\"p50_ms\": {:.4}, \"p95_ms\": {:.4}, \"seek_bytes_avoided\": {}}}, \
         \"fault_order\": {{\"p50_ms\": {:.4}, \"p95_ms\": {:.4}, \"seek_bytes_avoided\": {}}}, \
         \"p95_improvement_pct\": {:.2}}},\n",
        dump_order.p50,
        dump_order.p95,
        dump_order.seek_bytes_avoided,
        ordered.p50,
        ordered.p95,
        ordered.seek_bytes_avoided,
        improvement_pct(dump_order.p95, ordered.p95),
    ));

    // -- part 3: hot-image compaction ----------------------------------
    println!("\nHot-image compaction (eager restore, fallback layer behind uffd)");
    hr();
    let full_runner = TrialRunner::new(big.clone(), StartMode::PrebakeWarmup(1)).expect("runner");
    let compact_runner = TrialRunner::new(big.clone(), StartMode::PrebakeWarmup(1))
        .expect("runner")
        .compact()
        .expect("repack");
    let stats = compact_runner.repack_stats().expect("compaction ran");
    let full = run(&full_runner, reps, args.seed);
    let compacted = run(&compact_runner, reps, args.seed);
    assert!(
        stats.pages_compacted > 0 && stats.hot_bytes_after < stats.hot_bytes_before,
        "compaction must shrink the hot image ({} -> {} bytes, {} pages moved)",
        stats.hot_bytes_before,
        stats.hot_bytes_after,
        stats.pages_compacted
    );
    assert_eq!(
        compacted.pages_compacted, stats.pages_compacted,
        "every trial restores against the compacted layout"
    );
    assert!(
        compacted.startup_p50 < full.startup_p50,
        "the smaller hot image must start faster ({:.4} !< {:.4})",
        compacted.startup_p50,
        full.startup_p50
    );
    let shrink = improvement_pct(stats.hot_bytes_before as f64, stats.hot_bytes_after as f64);
    println!(
        "hot image {:.2}MB -> {:.2}MB (-{:.1}%), {} pages behind the fallback layer",
        stats.hot_bytes_before as f64 / 1e6,
        stats.hot_bytes_after as f64 / 1e6,
        shrink,
        stats.pages_compacted
    );
    println!(
        "startup p50 {:.2}ms -> {:.2}ms, first response {:.2}ms -> {:.2}ms",
        full.startup_p50, compacted.startup_p50, full.p50, compacted.p50
    );
    hr();
    json.push_str(&format!(
        "  \"compact\": {{\"hot_bytes_before\": {}, \"hot_bytes_after\": {}, \
         \"pages_compacted\": {}, \"full_startup_p50_ms\": {:.4}, \
         \"compact_startup_p50_ms\": {:.4}, \"full_p50_ms\": {:.4}, \
         \"compact_p50_ms\": {:.4}}}\n}}\n",
        stats.hot_bytes_before,
        stats.hot_bytes_after,
        stats.pages_compacted,
        full.startup_p50,
        compacted.startup_p50,
        full.p50,
        compacted.p50,
    ));

    // Only a full-rep run under the default seed refreshes the checked-in
    // copy (it is bit-reproducible); quick or reseeded runs land in the
    // gitignored results/ directory.
    let path = if reps >= 40 && args.seed == 1 {
        "BENCH_parallel.json".to_string()
    } else {
        std::fs::create_dir_all("results").expect("mkdir results");
        "results/BENCH_parallel.json".to_string()
    };
    std::fs::write(&path, &json).expect("write BENCH_parallel.json");
    println!(
        "take-away: sharding the extent install across threads overlaps the restore's \
         copy time (p50 {serial_p50:.1}ms serial -> {best_p50:.1}ms best, vs the committed \
         {BASELINE_BIG_P50_MS}ms baseline); repacking the image into fault order turns the \
         prefetch read into one sequential stream ({:.1}% better p95); and compaction \
         leaves {:.1}% of the hot image behind the fault handler without losing a byte. \
         Wrote {path}.",
        improvement_pct(dump_order.p95, ordered.p95),
        shrink,
    );
}
