//! Ablation 10: fleet telemetry — SLO burst localization under
//! tail-sampled tracing.
//!
//! `ablation_fleet` (abl7) established that the adaptive prebake policy
//! serves the heavy-tailed four-tenant trace with a ~53ms p99 — every
//! request comfortably inside the 250ms latency SLO. This harness
//! replays *that same trace* with the telemetry stack attached and
//! injects a fault: a burst of invocations at t+600s on a canary tenant
//! whose only profiled gear is the vanilla fork-exec path, so each of
//! its cold starts costs ~1.6s. The questions the telemetry must
//! answer, bit-reproducibly:
//!
//! 1. **Localization** — does the SLO burn engine attribute the breach
//!    to the right tenant and the right 60s window, and only there?
//! 2. **Tail sampling** — with a 2% keep fraction, is the retained span
//!    volume ≥10× smaller than full tracing while *every* SLO-breaching
//!    request keeps its complete span tree?
//!
//! Writes `BENCH_obs.json`; with the default `--seed` the file (and the
//! dashboard and exemplar-annotated trace export under `results/`) is
//! bit-reproducible — the tier-1 gate double-runs `--quick` and `cmp`s.

use prebake_bench::fleetmix::{fig5_profiles, workload};
use prebake_bench::{hr, HarnessArgs};
use prebake_fleet::{
    default_fleet_obs, FleetConfig, FleetSim, FunctionProfile, Gear, KeepAlive, Policy,
    StartSelection,
};
use prebake_obs::{DashboardSpec, SloEventKind};
use prebake_platform::loadgen::Schedule;
use prebake_sim::time::{SimDuration, SimInstant};

/// The injected-fault tenant: profiled with the vanilla gear only, so
/// the adaptive start selection has nothing cheap to pick.
const BURST_FUNCTION: &str = "synthetic-burst";
/// Burst instant — the middle of recorder window 10.
const BURST_AT_S: u64 = 600;
/// Burst size: enough to cold-start well past the canary's share.
const BURST_SIZE: usize = 24;

fn main() {
    let args = HarnessArgs::parse();
    let reps = args.reps.min(40);
    let profile_reps = (reps / 8).clamp(2, 5);
    println!(
        "Ablation — fleet telemetry: SLO burst localization \
         ({profile_reps} profiling reps, seed {})",
        args.seed
    );
    hr();

    // -- the abl7 trace + the injected burst ---------------------------
    let mut profiles = fig5_profiles(profile_reps, args.seed);
    let vanilla_cost = *profiles[2]
        .cost(Gear::Vanilla)
        .expect("big function profiled under vanilla");
    profiles.push(FunctionProfile::synthetic(
        BURST_FUNCTION,
        &[(Gear::Vanilla, vanilla_cost)],
    ));
    let schedule = workload(&profiles, args.seed).merge(
        Schedule::burst(
            BURST_FUNCTION,
            BURST_SIZE,
            SimInstant::EPOCH + SimDuration::from_secs(BURST_AT_S),
        )
        .expect("valid burst"),
    );

    // The abl7 winner configuration (histogram keep-alive with pre-warm,
    // adaptive gear selection) with the standard telemetry shape on top:
    // 60s windows, the 250ms latency SLO, the 10% cold-fraction SLO, 2%
    // tail sampling.
    let obs_config = default_fleet_obs(0.02, args.seed);
    let window_s = obs_config.recorder.width.as_secs_f64();
    let burst_window = (BURST_AT_S as f64 / window_s) as u64;
    let mut sim = FleetSim::new(FleetConfig {
        policy: Policy {
            keep_alive: KeepAlive::Histogram {
                floor: SimDuration::from_secs(1),
                cap: SimDuration::from_secs(120),
                quantile: 0.99,
                prewarm: true,
            },
            start: StartSelection::Adaptive,
        },
        seed: args.seed,
        span_tracing: true,
        obs: Some(obs_config),
        ..FleetConfig::default()
    });
    for p in &profiles {
        sim.register(p.clone());
    }
    sim.run(&schedule).expect("all functions registered");
    let spans = sim.take_spans();
    let requests = sim.metrics().requests.get();
    let cold_starts = sim.metrics().cold_starts.get();
    let breaching: Vec<_> = sim
        .completed()
        .iter()
        .filter(|r| r.latency_ms() > 250.0)
        .collect();
    let obs = sim.obs().expect("configured");
    let report = obs.report();

    // -- 1: the burn engine localizes the burst ------------------------
    let latency_breaches: Vec<_> = report
        .events_of("fleet-latency")
        .filter_map(|e| match &e.kind {
            SloEventKind::WindowBreach { burn, bad, total } => {
                Some((e.tenant.clone(), e.window_index, *burn, *bad, *total))
            }
            SloEventKind::BurnAlert { .. } => None,
        })
        .collect();
    assert!(
        !latency_breaches.is_empty(),
        "the injected burst must breach the latency SLO"
    );
    for (tenant, window, ..) in &latency_breaches {
        assert_eq!(
            (tenant.as_str(), *window),
            (BURST_FUNCTION, burst_window),
            "latency breaches must localize to the burst tenant/window only"
        );
    }
    let worst = report
        .worst_offender("fleet-latency")
        .expect("a worst offender exists");
    assert_eq!(worst.tenant, BURST_FUNCTION);
    assert_eq!(worst.window_index, burst_window);
    assert_eq!(worst.bad as usize, breaching.len());

    // -- 2: tail sampling keeps breaches, drops the bulk ---------------
    let st = obs.sampling;
    let spans_total = st.spans_kept + st.spans_dropped;
    assert!(
        spans_total >= 10 * st.spans_kept,
        "tail sampling must cut span volume >=10x ({} of {spans_total} kept)",
        st.spans_kept
    );
    assert_eq!(
        st.interesting_kept as usize,
        breaching.len(),
        "every SLO-breaching request is interesting-kept"
    );
    for r in &breaching {
        let root = spans
            .iter()
            .find(|sp| {
                sp.name == "sched_invocation"
                    && sp
                        .attrs
                        .iter()
                        .any(|(k, v)| *k == "id" && *v == r.id.to_string())
            })
            .unwrap_or_else(|| panic!("breaching request {} lost its span tree", r.id));
        let children = spans.iter().filter(|sp| sp.parent == Some(root.id)).count();
        assert_eq!(
            children, 4,
            "breaching request {} must keep its full tree",
            r.id
        );
    }

    // -- report --------------------------------------------------------
    let spec = DashboardSpec {
        counters: vec![
            "fleet_requests_total".to_owned(),
            "fleet_cold_starts_total".to_owned(),
        ],
        quantiles: vec![("fleet_latency_ms".to_owned(), 0.99)],
    };
    println!("{}", obs.dashboard(&spec));
    hr();

    let lat = report.status("fleet-latency").expect("evaluated");
    let cold = report.status("fleet-cold-fraction").expect("evaluated");
    let count_events = |name: &str| -> (usize, usize) {
        report
            .events_of(name)
            .fold((0, 0), |(b, a), e| match e.kind {
                SloEventKind::WindowBreach { .. } => (b + 1, a),
                SloEventKind::BurnAlert { .. } => (b, a + 1),
            })
    };
    let (lat_breaches, lat_alerts) = count_events("fleet-latency");
    let (cold_breaches, cold_alerts) = count_events("fleet-cold-fraction");
    let reduction = spans_total as f64 / st.spans_kept.max(1) as f64;

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"seed\": {},\n  \"profile_reps\": {profile_reps},\n",
        args.seed
    ));
    json.push_str(&format!(
        "  \"trace\": {{\"arrivals\": {}, \"requests\": {requests}, \
         \"cold_starts\": {cold_starts}, \"burst_at_s\": {BURST_AT_S}, \
         \"burst_size\": {BURST_SIZE}}},\n",
        schedule.len(),
    ));
    json.push_str(&format!(
        "  \"slo\": [\n    {{\"objective\": \"fleet-latency\", \"bad\": {}, \
         \"total\": {}, \"burn\": {:.4}, \"window_breaches\": {lat_breaches}, \
         \"burn_alerts\": {lat_alerts}}},\n    {{\"objective\": \
         \"fleet-cold-fraction\", \"bad\": {}, \"total\": {}, \"burn\": {:.4}, \
         \"window_breaches\": {cold_breaches}, \"burn_alerts\": {cold_alerts}}}\n  ],\n",
        lat.bad, lat.total, lat.burn, cold.bad, cold.total, cold.burn,
    ));
    json.push_str(&format!(
        "  \"burst\": {{\"tenant\": \"{BURST_FUNCTION}\", \"window\": {burst_window}, \
         \"breaching_requests\": {}, \"worst_burn\": {:.4}}},\n",
        breaching.len(),
        worst.burn,
    ));
    json.push_str(&format!(
        "  \"sampling\": {{\"trees_kept\": {}, \"trees_dropped\": {}, \
         \"spans_kept\": {}, \"spans_dropped\": {}, \"interesting_kept\": {}, \
         \"reduction_x\": {reduction:.4}}}\n}}\n",
        st.trees_kept, st.trees_dropped, st.spans_kept, st.spans_dropped, st.interesting_kept,
    ));

    let path = if reps >= 40 && args.seed == 1 {
        "BENCH_obs.json".to_string()
    } else {
        std::fs::create_dir_all("results").expect("mkdir results");
        "results/BENCH_obs.json".to_string()
    };
    std::fs::write(&path, &json).expect("write BENCH_obs.json");
    // The exemplar-annotated trace export always lands in results/ (it
    // holds every retained span — useful for Perfetto, too big to
    // commit).
    std::fs::create_dir_all("results").expect("mkdir results");
    std::fs::write("results/TRACE_obs.json", obs.chrome_trace(&spans))
        .expect("write results/TRACE_obs.json");

    println!(
        "take-away: the burn engine pins the injected fault to tenant \"{BURST_FUNCTION}\" \
         in window {burst_window} (burn {:.1}x) with zero false localizations, while \
         tail sampling keeps {} of {spans_total} spans ({reduction:.1}x reduction) — \
         and all {} SLO-breaching invocations retain complete span trees. Wrote {path}.",
        worst.burn,
        st.spans_kept,
        breaching.len(),
    );
}
