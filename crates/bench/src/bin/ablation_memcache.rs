//! Ablation 2 (paper §7 future work): in-memory CRIU image cache.
//!
//! The paper plans to "experiment with in-memory optimization on CRIU to
//! speed up snapshot restore" (citing the fast in-memory CRIU work).
//! This harness compares full prebaked start-up when the restorer reads
//! image files from the (page-cache-warm) filesystem versus restoring
//! from a host-resident [`ImageSet`] — the `prebake_criu::ImageCache`
//! path. The gap should scale with snapshot size (≈0.3 ms/MiB of image
//! read), making the Image Resizer the big winner.

use prebake_bench::{hr, summarize, HarnessArgs};
use prebake_core::env::{
    export_images, fresh_container, import_images, provision_machine, Deployment,
};
use prebake_core::prebaker::{bake, SnapshotPolicy};
use prebake_core::starter::{PrebakeStarter, Starter};
use prebake_criu::{restore_set, ImageSet, RestoreOptions};
use prebake_functions::FunctionSpec;
use prebake_runtime::Replica;
use prebake_sim::kernel::Kernel;

fn main() {
    let args = HarnessArgs::parse();
    let reps = args.reps.min(60);
    println!("Ablation — in-memory image cache vs filesystem restore ({reps} reps)");
    hr();
    println!(
        "{:<16} {:>10} {:>12} {:>20} {:>12} {:>20} {:>8}",
        "function", "snapshot", "fs median", "95% CI", "mem median", "95% CI", "saved"
    );
    hr();

    for spec in [
        FunctionSpec::noop(),
        FunctionSpec::markdown(),
        FunctionSpec::image_resizer(),
    ] {
        // Bake once.
        let mut builder_kernel = Kernel::new(0xBA5E);
        let builder = provision_machine(&mut builder_kernel).expect("provision builder");
        let dep = Deployment::install(&mut builder_kernel, spec.clone(), 8080)
            .expect("install on builder");
        let report = bake(
            &mut builder_kernel,
            builder,
            &dep,
            SnapshotPolicy::AfterReady,
            &dep.images_dir(),
        )
        .expect("bake");
        let files = export_images(&mut builder_kernel, &dep.images_dir()).expect("export images");
        let set = ImageSet::parse_files(&files).expect("parse images");

        let mut fs_samples = Vec::with_capacity(reps);
        let mut mem_samples = Vec::with_capacity(reps);
        for rep in 0..reps {
            let seed = args.seed + rep as u64;

            // Filesystem path (warm page cache, the paper's deployment).
            let mut kernel = Kernel::new(seed);
            let watchdog = provision_machine(&mut kernel).expect("provision");
            let dep = Deployment::install(&mut kernel, spec.clone(), 8080).expect("install");
            import_images(&mut kernel, &dep.images_dir(), &files).expect("import");
            fresh_container(&mut kernel, &dep.image_paths()).expect("fresh container");
            let started = PrebakeStarter::new()
                .start(&mut kernel, watchdog, &dep)
                .expect("fs restore");
            fs_samples.push(started.startup.as_millis_f64());

            // In-memory path: restore_set + attach, no image files read.
            let mut kernel = Kernel::new(seed ^ 0xCACE);
            let watchdog = provision_machine(&mut kernel).expect("provision");
            let dep = Deployment::install(&mut kernel, spec.clone(), 8080).expect("install");
            fresh_container(&mut kernel, &[]).expect("fresh container");
            let t0 = kernel.now();
            let stats = restore_set(
                &mut kernel,
                watchdog,
                &set,
                &RestoreOptions::new(dep.images_dir()),
            )
            .expect("mem restore");
            let handler = dep.spec.make_handler(&dep.app_dir);
            Replica::attach(&mut kernel, stats.pid, dep.jlvm_config(), handler).expect("attach");
            mem_samples.push((kernel.now() - t0).as_millis_f64());
        }

        let fs = summarize(&fs_samples, 7);
        let mem = summarize(&mem_samples, 8);
        println!(
            "{:<16} {:>7.1}MB {:>10.2}ms {:>20} {:>10.2}ms {:>20} {:>7.1}%",
            spec.name(),
            report.snapshot_bytes() as f64 / 1e6,
            fs.median_ms,
            fs.ci.to_string(),
            mem.median_ms,
            mem.ci.to_string(),
            (fs.median_ms - mem.median_ms) / fs.median_ms * 100.0
        );
    }
    hr();
    println!(
        "take-away: the in-memory cache removes the image read (≈0.3 ms/MiB), so the \
         saving grows with snapshot size — largest for the 99 MB Image Resizer."
    );
}
