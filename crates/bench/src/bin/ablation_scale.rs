//! Ablation 11: sharded event-loop scale — a million invocations
//! through the fleet without materialising the trace.
//!
//! The fleet ablations replay tens of thousands of arrivals through a
//! single event loop; this harness asks what happens at production
//! trace scale. A six-tenant Poisson mix is *streamed* — six lazy
//! [`ArrivalGen`]s under a deterministic k-way merge feeding
//! [`FleetSim::run_stream`] — against a 200-node fleet, so the
//! million-arrival schedule never exists in memory, and the per-request
//! log is dropped ([`FleetConfig::retain_completed`]) so the run's
//! footprint stays flat while the histograms keep every distribution.
//!
//! The sweep runs the same workload at 1, 2, 4 and 8 event-loop shards.
//! For each point it measures events/sec (printed, never written to the
//! JSON — wall time is machine noise), and re-runs the shard count with
//! threading disabled to prove the threaded drain is bit-identical to
//! the serial one. On full runs the harness asserts the sharded engine
//! clears 3x the unsharded events/sec — the scan-domain reduction the
//! cells buy (each shard walks only its own workers and replicas), not
//! a parallelism dividend, so it holds on a single core.
//!
//! Shard counts partition placement domains differently, so each S row
//! is its own deterministic model variant; the cross-checks compare
//! executions of the *same* S. Besides the table the harness writes
//! `BENCH_scale.json` (virtual-domain fields only; with the default
//! `--seed` the file is bit-reproducible).
//!
//! [`ArrivalGen`]: prebake_platform::loadgen::ArrivalGen

use std::time::Instant;

use prebake_bench::{hr, HarnessArgs};
use prebake_fleet::{
    FleetConfig, FleetSim, FunctionProfile, Gear, GearCost, KeepAlive, Policy, RegistryConfig,
    StartSelection,
};
use prebake_platform::loadgen::{ArrivalGen, MergedArrivals};
use prebake_sim::time::{SimDuration, SimInstant};

/// The six-tenant synthetic mix: service times and footprints spread
/// across the range the Fig. 5 functions cover, every tenant prebaked
/// (vanilla fallback kept for the adaptive policy to reject).
fn tenants() -> Vec<FunctionProfile> {
    (0..6)
        .map(|t| {
            FunctionProfile::synthetic(
                &format!("tenant-{t}"),
                &[
                    (
                        Gear::Vanilla,
                        GearCost {
                            cold_ms: 150.0 + 40.0 * t as f64,
                            first_service_ms: 8.0 + t as f64,
                            warm_service_ms: 1.5 + 0.5 * t as f64,
                            replica_mem_bytes: (64 + 24 * t as u64) << 20,
                            image_bytes: 0,
                        },
                    ),
                    (
                        Gear::Prefetch,
                        GearCost {
                            cold_ms: 18.0 + 6.0 * t as f64,
                            first_service_ms: 3.0 + 0.5 * t as f64,
                            warm_service_ms: 1.5 + 0.5 * t as f64,
                            replica_mem_bytes: (64 + 24 * t as u64) << 20,
                            image_bytes: (24 + 12 * t as u64) << 20,
                        },
                    ),
                ],
            )
        })
        .collect()
}

/// The lazy six-way merged Poisson stream: `per_tenant` arrivals per
/// tenant, tenant-specific rates and phases, deterministic in `seed`.
fn stream(per_tenant: usize, seed: u64) -> MergedArrivals<ArrivalGen> {
    let gens = (0..6)
        .map(|t| {
            ArrivalGen::poisson(
                &format!("tenant-{t}"),
                per_tenant,
                SimInstant::EPOCH + SimDuration::from_millis(13 * t as u64),
                SimDuration::from_millis(14 + 4 * t as u64),
                seed.wrapping_add(t as u64)
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15),
            )
            .expect("valid generator")
        })
        .collect();
    MergedArrivals::new(gens)
}

fn config(shards: usize, threads: bool, seed: u64) -> FleetConfig {
    FleetConfig {
        workers: 200,
        mem_budget_bytes: 4 << 30,
        cold_start_concurrency: 4,
        queue_cap: 4096,
        max_replicas_per_function: 64,
        policy: Policy {
            keep_alive: KeepAlive::FixedTtl(SimDuration::from_secs(60)),
            start: StartSelection::Adaptive,
        },
        seed,
        registry: Some(RegistryConfig::default()),
        shards,
        threads,
        retain_completed: false,
        ..FleetConfig::default()
    }
}

/// One shard count's outcome — virtual-domain fields only, so the row
/// is bit-reproducible; wall time stays on stdout.
struct Outcome {
    shards: usize,
    requests: u64,
    shed: u64,
    cold_starts: u64,
    cold_p99_ms: f64,
    egress_bytes: u64,
    dedup_bytes: u64,
    replicas_started: u64,
    events_processed: u64,
    /// Threaded drain matched the serial drain bit-for-bit.
    identical: bool,
    events_per_sec: f64,
}

/// Everything the threaded-vs-serial cross-check compares.
fn fingerprint(sim: &FleetSim) -> (String, u64, u64, u64, u64) {
    (
        sim.render_metrics(),
        sim.registry().map_or(0, |r| r.egress_bytes()),
        sim.registry().map_or(0, |r| r.dedup_bytes()),
        sim.events_processed(),
        sim.now().as_nanos(),
    )
}

fn run_point(shards: usize, per_tenant: usize, seed: u64) -> Outcome {
    let mut sim = FleetSim::new(config(shards, true, seed));
    for p in tenants() {
        sim.register(p);
    }
    let wall = Instant::now();
    sim.run_stream(stream(per_tenant, seed))
        .expect("stream runs clean");
    let elapsed = wall.elapsed().as_secs_f64();

    // Execution cross-check: the same shard count drained serially must
    // be bit-identical (threading is an execution detail, not a model
    // input). One shard always drains serially, so the re-run would
    // compare the engine against itself.
    let identical = if shards > 1 {
        let mut serial = FleetSim::new(config(shards, false, seed));
        for p in tenants() {
            serial.register(p);
        }
        serial
            .run_stream(stream(per_tenant, seed))
            .expect("stream runs clean");
        fingerprint(&serial) == fingerprint(&sim)
    } else {
        true
    };

    let m = sim.metrics();
    let cold_p99 = m.cold_latency.quantile(0.99);
    Outcome {
        shards,
        requests: m.requests.get(),
        shed: m.shed.get(),
        cold_starts: m.cold_starts.get(),
        cold_p99_ms: if cold_p99.is_finite() { cold_p99 } else { -1.0 },
        egress_bytes: sim.registry().map_or(0, |r| r.egress_bytes()),
        dedup_bytes: sim.registry().map_or(0, |r| r.dedup_bytes()),
        replicas_started: m.replicas_started.get(),
        events_processed: sim.events_processed(),
        identical,
        events_per_sec: sim.events_processed() as f64 / elapsed.max(1e-9),
    }
}

fn main() {
    let args = HarnessArgs::parse();
    let quick = args.reps < 40;
    // Quick gates replay a 54k-arrival trace at the sweep's endpoints;
    // the full run is the paper-scale point: a million-plus invocations
    // across every shard count.
    let (per_tenant, sweep): (usize, &[usize]) = if quick {
        (9_000, &[1, 4])
    } else {
        (170_000, &[1, 2, 4, 8])
    };
    let total = per_tenant * 6;
    println!(
        "Ablation — sharded event-loop scale: {total} streamed arrivals, 6 tenants, \
         200 workers (seed {})",
        args.seed
    );
    hr();
    println!(
        "{:<6} {:>9} {:>6} {:>7} {:>9} {:>9} {:>9} {:>10} {:>10} {:>5}",
        "shards",
        "requests",
        "shed",
        "cold",
        "coldp99",
        "egress",
        "dedup",
        "events",
        "events/s",
        "ident"
    );
    hr();

    let outcomes: Vec<Outcome> = sweep
        .iter()
        .map(|&s| {
            let o = run_point(s, per_tenant, args.seed);
            println!(
                "{:<6} {:>9} {:>6} {:>7} {:>7.1}ms {:>7.1}MB {:>7.1}MB {:>10} {:>10.0} {:>5}",
                o.shards,
                o.requests,
                o.shed,
                o.cold_starts,
                o.cold_p99_ms,
                o.egress_bytes as f64 / 1e6,
                o.dedup_bytes as f64 / 1e6,
                o.events_processed,
                o.events_per_sec,
                o.identical,
            );
            o
        })
        .collect();
    hr();

    for o in &outcomes {
        assert!(
            o.identical,
            "threaded drain diverged at {} shards",
            o.shards
        );
        assert_eq!(
            o.requests + o.shed,
            total as u64,
            "every arrival admitted or shed at {} shards",
            o.shards
        );
    }
    let base = outcomes.first().expect("sweep non-empty");
    let best_speedup = outcomes
        .iter()
        .filter(|o| o.shards >= 4)
        .map(|o| o.events_per_sec / base.events_per_sec)
        .fold(0.0, f64::max);
    println!(
        "speedup: best {:.2}x events/sec over the unsharded loop ({} shard sweep)",
        best_speedup,
        sweep.len()
    );

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"seed\": {},\n  \"arrivals\": {},\n  \"tenants\": 6,\n  \"workers\": 200,\n  \"sweep\": [\n",
        args.seed, total
    ));
    for (i, o) in outcomes.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"shards\": {}, \"requests\": {}, \"shed\": {}, \"cold_starts\": {}, \
             \"cold_p99_ms\": {:.4}, \"registry_egress_bytes\": {}, \
             \"registry_dedup_bytes\": {}, \"replicas_started\": {}, \
             \"events_processed\": {}, \"threaded_serial_identical\": {}}}{}\n",
            o.shards,
            o.requests,
            o.shed,
            o.cold_starts,
            o.cold_p99_ms,
            o.egress_bytes,
            o.dedup_bytes,
            o.replicas_started,
            o.events_processed,
            o.identical,
            if i == outcomes.len() - 1 { "" } else { "," },
        ));
    }
    json.push_str("  ]\n}\n");

    // Only a full-rep run under the default seed refreshes the checked-in
    // copy (it is bit-reproducible); quick or reseeded runs land in the
    // gitignored results/ directory.
    let path = if args.reps >= 40 && args.seed == 1 {
        "BENCH_scale.json".to_string()
    } else {
        std::fs::create_dir_all("results").expect("mkdir results");
        "results/BENCH_scale.json".to_string()
    };
    std::fs::write(&path, &json).expect("write BENCH_scale.json");
    println!(
        "take-away: the sharded event loop pushes {total} streamed invocations through a \
         200-node fleet at {:.0} events/sec — {best_speedup:.2}x the unsharded loop — with \
         threaded and serial drains bit-identical at every shard count. Wrote {path}.",
        outcomes.last().expect("non-empty").events_per_sec,
    );

    // The throughput bar is checked after the deterministic artifact is
    // on disk: a loaded machine can depress wall-clock events/sec (and
    // fail this gate) without costing the double-run JSON comparison.
    if !quick {
        assert!(
            best_speedup >= 3.0,
            "sharding must clear 3x the serial events/sec (got {best_speedup:.2}x)"
        );
    }
}
