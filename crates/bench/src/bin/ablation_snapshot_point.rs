//! Ablation 1 (paper §3.1/§4.2.2): sensitivity to the snapshot point.
//!
//! "It is critical to decide at which point of the function execution
//! lifetime the snapshot should be generated." We sweep the number of
//! warm-up requests baked into the snapshot (0 = AfterReady) for the
//! medium synthetic function, reporting first-response time and snapshot
//! size. Expectation: one warm-up request captures all class-loading/JIT
//! state (the paper's choice); additional requests buy nothing but may
//! grow the snapshot.

use prebake_bench::{hr, parallel_startup_trials, summarize, HarnessArgs};
use prebake_core::measure::{StartMode, TrialRunner};
use prebake_functions::{FunctionSpec, SyntheticSize};

fn main() {
    let args = HarnessArgs::parse();
    let reps = args.reps.min(60); // sweep has 6 treatments; keep it brisk
    println!("Ablation — snapshot-point sweep, medium synthetic function ({reps} reps/point)");
    hr();
    println!(
        "{:<14} {:>14} {:>20} {:>14}",
        "policy", "median", "95% CI", "snapshot"
    );
    hr();

    let spec = FunctionSpec::synthetic(SyntheticSize::Medium);

    // 0 warmups == AfterReady; then 1, 2, 4, 8.
    let modes = [
        StartMode::PrebakeNoWarmup,
        StartMode::PrebakeWarmup(1),
        StartMode::PrebakeWarmup(2),
        StartMode::PrebakeWarmup(4),
        StartMode::PrebakeWarmup(8),
    ];
    let mut first: Option<f64> = None;
    for mode in modes {
        let runner = TrialRunner::new(spec.clone(), mode).expect("build runner");
        let samples: Vec<f64> = parallel_startup_trials(&runner, reps, args.seed)
            .iter()
            .map(|t| t.first_response_ms)
            .collect();
        let s = summarize(&samples, 9);
        println!(
            "{:<14} {:>12.2}ms {:>20} {:>11.1}MB",
            mode.label(),
            s.median_ms,
            s.ci.to_string(),
            runner.snapshot_bytes() as f64 / 1e6
        );
        if matches!(mode, StartMode::PrebakeWarmup(1)) {
            first = Some(s.median_ms);
        }
    }
    hr();
    if let Some(w1) = first {
        println!(
            "take-away: the first warm-up request captures the class-load + JIT state \
             (w1 median {w1:.1}ms); more warm-ups change little — matching the paper's \
             choice of a single warm-up request."
        );
    }
}
