//! Figure 6: start-up speed-up of both prebaking variants over vanilla,
//! across synthetic function sizes.
//!
//! The reported quantity is the paper's ratio "vanilla start-up time /
//! prebaked start-up time", as a percentage.
//!
//! Paper reference:
//!   small: PB-NoWarmup 127.45 %, PB-Warmup 403.96 %
//!   big:   PB-NoWarmup 121.07 %, PB-Warmup 1932.49 %

use prebake_bench::{hr, parallel_startup_trials, speedup_ratio_pct, HarnessArgs};
use prebake_core::measure::{StartMode, TrialRunner};
use prebake_functions::{FunctionSpec, SyntheticSize};
use prebake_stats::summary::median;

fn main() {
    let args = HarnessArgs::parse();
    println!(
        "Figure 6 — prebaking speed-up over vanilla ({} reps)",
        args.reps
    );
    hr();
    println!(
        "{:<8} {:>12} {:>14} {:>12} {:>16} {:>16}",
        "size", "vanilla", "pb-nowarmup", "pb-warmup", "nowarmup ratio", "warmup ratio"
    );
    hr();

    let paper = [
        ("small", 127.45, 403.96),
        ("medium", 126.3, 716.3), // interpolated from Table 1 medians
        ("big", 121.07, 1932.49),
    ];

    for size in SyntheticSize::all() {
        let spec = FunctionSpec::synthetic(size);
        let mut medians = Vec::new();
        for mode in StartMode::all_three() {
            let runner = TrialRunner::new(spec.clone(), mode).expect("build runner");
            let samples: Vec<f64> = parallel_startup_trials(&runner, args.reps, args.seed)
                .iter()
                .map(|t| t.first_response_ms)
                .collect();
            medians.push(median(&samples));
        }
        let (v, nw, w) = (medians[0], medians[1], medians[2]);
        println!(
            "{:<8} {:>10.2}ms {:>12.2}ms {:>10.2}ms {:>15.2}% {:>15.2}%",
            size.label(),
            v,
            nw,
            w,
            speedup_ratio_pct(v, nw),
            speedup_ratio_pct(v, w)
        );
    }
    hr();
    println!("paper reference ratios (vanilla/prebaked, %):");
    for (label, nw, w) in paper {
        println!("  {label:<8} nowarmup {nw:>8.2}%   warmup {w:>8.2}%");
    }
    println!("(medium warmup ratio derived from Table 1: 456.0/63.7)");
}
