//! Ablation 12: the streaming gateway frontier at trace scale — a
//! million invocations through admission control, the TTL result cache,
//! and chunked-response TTFC accounting.
//!
//! Four arms stream the same six-tenant Poisson mix through a sharded
//! fleet fronted by the gateway. Three arms fix the restore gear
//! (eager / lazy / prefetch) with the result cache off, so the
//! gateway-side *time to first chunk* isolates what the restore path
//! costs the caller's first byte: eager restores pay the full image
//! before the replica serves, while lazy and prefetch replicas start
//! serving — and streaming — orders of magnitude sooner. The fourth arm
//! re-runs prefetch with a per-function TTL cache, collapsing repeat
//! invocations onto the sub-millisecond edge path.
//!
//! Every arm is conservation-checked (`offered == admitted + shed +
//! queued` plus the arrivals-level identity with cache hits), and the
//! prefetch arm is re-drained serially to prove the threaded drain is
//! bit-identical. The JSON carries virtual-domain fields only, so with
//! the default seed the file is bit-reproducible: CI runs the quick
//! sweep twice and `cmp`s the outputs.
//!
//! Full-run gates: cold-TTFC p50 of prefetch and lazy beat eager, and
//! the cached path serves strictly under 10 virtual milliseconds.

use prebake_bench::{hr, HarnessArgs};
use prebake_fleet::{
    CacheConfig, FleetConfig, FleetSim, FunctionProfile, GatewayConfig, Gear, GearCost, KeepAlive,
    Policy, StartSelection,
};
use prebake_platform::loadgen::{ArrivalGen, MergedArrivals};
use prebake_sim::time::{SimDuration, SimInstant};

/// The six-tenant mix, profiled for all three fixed gears. Eager pays
/// the full image up front (large `cold_ms`), lazy restores a sliver
/// and faults the rest into its first service, prefetch overlaps the
/// fault-in and lands in the paper's ~18 ms band.
fn tenants() -> Vec<FunctionProfile> {
    (0..6)
        .map(|t| {
            let mem = (64 + 24 * t as u64) << 20;
            let warm = 1.5 + 0.5 * t as f64;
            FunctionProfile::synthetic(
                &format!("tenant-{t}"),
                &[
                    (
                        Gear::Eager,
                        GearCost {
                            cold_ms: 110.0 + 25.0 * t as f64,
                            first_service_ms: 3.0 + 0.5 * t as f64,
                            warm_service_ms: warm,
                            replica_mem_bytes: mem,
                            image_bytes: (24 + 12 * t as u64) << 20,
                        },
                    ),
                    (
                        Gear::Lazy,
                        GearCost {
                            cold_ms: 7.0 + 1.5 * t as f64,
                            first_service_ms: 26.0 + 4.0 * t as f64,
                            warm_service_ms: warm,
                            replica_mem_bytes: mem,
                            image_bytes: (4 + 2 * t as u64) << 20,
                        },
                    ),
                    (
                        Gear::Prefetch,
                        GearCost {
                            cold_ms: 18.0 + 6.0 * t as f64,
                            first_service_ms: 3.0 + 0.5 * t as f64,
                            warm_service_ms: warm,
                            replica_mem_bytes: mem,
                            image_bytes: (24 + 12 * t as u64) << 20,
                        },
                    ),
                ],
            )
        })
        .collect()
}

/// Lazy six-way merged Poisson stream, deterministic in `seed`.
fn stream(per_tenant: usize, seed: u64) -> MergedArrivals<ArrivalGen> {
    let gens = (0..6)
        .map(|t| {
            ArrivalGen::poisson(
                &format!("tenant-{t}"),
                per_tenant,
                SimInstant::EPOCH + SimDuration::from_millis(13 * t as u64),
                SimDuration::from_millis(14 + 4 * t as u64),
                seed.wrapping_add(t as u64)
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15),
            )
            .expect("valid generator")
        })
        .collect();
    MergedArrivals::new(gens)
}

fn config(gear: Gear, cached: bool, threads: bool, seed: u64) -> FleetConfig {
    let cache = if cached {
        CacheConfig {
            default_ttl: Some(SimDuration::from_secs(30)),
            ..CacheConfig::default()
        }
    } else {
        CacheConfig::default()
    };
    FleetConfig {
        workers: 64,
        mem_budget_bytes: 4 << 30,
        cold_start_concurrency: 4,
        queue_cap: 4096,
        max_replicas_per_function: 64,
        policy: Policy {
            keep_alive: KeepAlive::FixedTtl(SimDuration::from_secs(60)),
            start: StartSelection::Fixed(gear),
        },
        seed,
        shards: 4,
        threads,
        retain_completed: false,
        gateway: Some(GatewayConfig {
            inflight_per_worker: 8,
            queue_per_worker: 32,
            cache,
            ..GatewayConfig::default()
        }),
        ..FleetConfig::default()
    }
}

/// One arm's outcome — virtual-domain fields only.
struct Outcome {
    label: &'static str,
    arrivals: u64,
    admitted: u64,
    deferred: u64,
    shed: u64,
    cache_hits: u64,
    ttfc_p50_ms: f64,
    ttfc_p99_ms: f64,
    ttfc_cold_p50_ms: f64,
    cached_serve_max_ms: f64,
    chunks: u64,
    /// Served invocations per virtual second.
    vthroughput: f64,
    conserved: bool,
}

fn finite(v: f64) -> f64 {
    if v.is_finite() {
        v
    } else {
        -1.0
    }
}

fn run_arm(label: &'static str, gear: Gear, cached: bool, per_tenant: usize, seed: u64) -> Outcome {
    let mut sim = FleetSim::new(config(gear, cached, true, seed));
    for p in tenants() {
        sim.register(p);
    }
    sim.run_stream(stream(per_tenant, seed))
        .expect("stream runs clean");

    let stats = sim.gateway_admission();
    let gm = sim.gateway_metrics().expect("frontier enabled");
    let secs = sim.now().as_nanos() as f64 / 1e9;
    Outcome {
        label,
        arrivals: gm.arrivals.get(),
        admitted: gm.admitted.get(),
        deferred: stats.deferred,
        shed: gm.shed(),
        cache_hits: gm.cache_hits.get(),
        ttfc_p50_ms: finite(gm.ttfc_ms.quantile(0.5)),
        ttfc_p99_ms: finite(gm.ttfc_ms.quantile(0.99)),
        ttfc_cold_p50_ms: finite(gm.ttfc_cold_ms.quantile(0.5)),
        cached_serve_max_ms: gm.cached_serve_max_ms,
        chunks: gm.chunks.get(),
        vthroughput: sim.metrics().requests.get() as f64 / secs.max(1e-9),
        conserved: sim.gateway_conserved(),
    }
}

/// Threaded-vs-serial cross-check on one arm: the drain mode is an
/// execution detail and must not show up in any byte of the metrics.
fn serial_identical(gear: Gear, per_tenant: usize, seed: u64) -> bool {
    let run = |threads: bool| {
        let mut sim = FleetSim::new(config(gear, false, threads, seed));
        for p in tenants() {
            sim.register(p);
        }
        sim.run_stream(stream(per_tenant, seed))
            .expect("stream runs clean");
        (
            sim.render_metrics(),
            sim.events_processed(),
            sim.now().as_nanos(),
        )
    };
    run(true) == run(false)
}

fn main() {
    let args = HarnessArgs::parse();
    let quick = args.reps < 40;
    // The full run streams 1.008M invocations (4 arms x 6 tenants x
    // 42k); quick replays 12k per arm for the CI determinism gate.
    let per_tenant: usize = if quick { 2_000 } else { 42_000 };
    let per_arm = per_tenant * 6;
    println!(
        "Ablation — streaming gateway frontier: 4 arms x {per_arm} streamed arrivals, \
         6 tenants, 64 workers (seed {})",
        args.seed
    );
    hr();
    println!(
        "{:<10} {:>9} {:>9} {:>8} {:>7} {:>8} {:>9} {:>9} {:>11} {:>9} {:>10}",
        "arm",
        "arrivals",
        "admitted",
        "deferred",
        "shed",
        "hits",
        "ttfc-p50",
        "ttfc-p99",
        "coldttfc50",
        "cachedmax",
        "vthru/s"
    );
    hr();

    let arms: [(&'static str, Gear, bool); 4] = [
        ("eager", Gear::Eager, false),
        ("lazy", Gear::Lazy, false),
        ("prefetch", Gear::Prefetch, false),
        ("cached", Gear::Prefetch, true),
    ];
    let outcomes: Vec<Outcome> = arms
        .iter()
        .map(|&(label, gear, cached)| {
            let o = run_arm(label, gear, cached, per_tenant, args.seed);
            println!(
                "{:<10} {:>9} {:>9} {:>8} {:>7} {:>8} {:>7.2}ms {:>7.2}ms {:>9.2}ms {:>7.3}ms {:>10.0}",
                o.label,
                o.arrivals,
                o.admitted,
                o.deferred,
                o.shed,
                o.cache_hits,
                o.ttfc_p50_ms,
                o.ttfc_p99_ms,
                o.ttfc_cold_p50_ms,
                o.cached_serve_max_ms,
                o.vthroughput,
            );
            o
        })
        .collect();
    hr();

    for o in &outcomes {
        assert!(o.conserved, "{} arm broke admission conservation", o.label);
        assert_eq!(
            o.arrivals, per_arm as u64,
            "{} arm offered every arrival",
            o.label
        );
        assert_eq!(
            o.arrivals,
            o.admitted + o.shed + o.cache_hits,
            "{} arm: arrivals split into admitted, shed and cache hits",
            o.label
        );
    }
    let identical = serial_identical(Gear::Prefetch, per_tenant, args.seed);
    assert!(identical, "threaded drain diverged on the prefetch arm");

    let by_label = |l: &str| outcomes.iter().find(|o| o.label == l).expect("arm present");
    let (eager, lazy, prefetch, cached) = (
        by_label("eager"),
        by_label("lazy"),
        by_label("prefetch"),
        by_label("cached"),
    );
    assert!(
        prefetch.ttfc_cold_p50_ms < eager.ttfc_cold_p50_ms,
        "prefetch cold TTFC p50 must beat eager: {} vs {}",
        prefetch.ttfc_cold_p50_ms,
        eager.ttfc_cold_p50_ms
    );
    assert!(
        lazy.ttfc_cold_p50_ms < eager.ttfc_cold_p50_ms,
        "lazy cold TTFC p50 must beat eager: {} vs {}",
        lazy.ttfc_cold_p50_ms,
        eager.ttfc_cold_p50_ms
    );
    assert!(
        cached.cache_hits > 0 && cached.cached_serve_max_ms < 10.0,
        "cached path must serve under 10 virtual ms (max {} over {} hits)",
        cached.cached_serve_max_ms,
        cached.cache_hits
    );

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"seed\": {},\n  \"arrivals_per_arm\": {},\n  \"tenants\": 6,\n  \
         \"workers\": 64,\n  \"threaded_serial_identical\": {},\n  \"arms\": [\n",
        args.seed, per_arm, identical
    ));
    for (i, o) in outcomes.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"arm\": \"{}\", \"arrivals\": {}, \"admitted\": {}, \"deferred\": {}, \
             \"shed\": {}, \"cache_hits\": {}, \"ttfc_p50_ms\": {:.4}, \"ttfc_p99_ms\": {:.4}, \
             \"ttfc_cold_p50_ms\": {:.4}, \"cached_serve_max_ms\": {:.4}, \"chunks\": {}, \
             \"virtual_throughput_per_sec\": {:.4}, \"conserved\": {}}}{}\n",
            o.label,
            o.arrivals,
            o.admitted,
            o.deferred,
            o.shed,
            o.cache_hits,
            o.ttfc_p50_ms,
            o.ttfc_p99_ms,
            o.ttfc_cold_p50_ms,
            o.cached_serve_max_ms,
            o.chunks,
            o.vthroughput,
            o.conserved,
            if i == outcomes.len() - 1 { "" } else { "," },
        ));
    }
    json.push_str("  ]\n}\n");

    // Only a full-rep run under the default seed refreshes the
    // checked-in copy; quick or reseeded runs land in gitignored
    // results/.
    let path = if args.reps >= 40 && args.seed == 1 {
        "BENCH_gateway.json".to_string()
    } else {
        std::fs::create_dir_all("results").expect("mkdir results");
        "results/BENCH_gateway.json".to_string()
    };
    std::fs::write(&path, &json).expect("write BENCH_gateway.json");
    println!(
        "take-away: fronting the fleet with the streaming gateway, prefetch restores hand the \
         caller a first chunk at {:.1}ms cold p50 vs {:.1}ms eager ({:.1}x), and the TTL cache \
         answers {} repeat invocations at the edge in at most {:.3} virtual ms. Wrote {path}.",
        prefetch.ttfc_cold_p50_ms,
        eager.ttfc_cold_p50_ms,
        eager.ttfc_cold_p50_ms / prefetch.ttfc_cold_p50_ms.max(1e-9),
        cached.cache_hits,
        cached.cached_serve_max_ms,
    );
}
