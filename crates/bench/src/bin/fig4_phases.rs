//! Figure 4: start-up phase decomposition (CLONE / EXEC / RTS / APPINIT)
//! per function and technique, stacked as part of the overall start-up.
//!
//! Paper reference: CLONE and EXEC contribute a tiny fraction; vanilla
//! RTS ≈ 70 ms for every function; prebaking brings RTS to 0 so start-up
//! is almost totally dictated by APPINIT; vanilla Image Resizer APPINIT
//! ≈ 7.18× NOOP's, dropping to ≈ 1.43× under prebaking.

use prebake_bench::{hr, parallel_startup_trials, HarnessArgs};
use prebake_core::measure::{StartMode, TrialRunner};
use prebake_functions::FunctionSpec;
use prebake_stats::summary::median;

fn main() {
    let args = HarnessArgs::parse();
    println!(
        "Figure 4 — start-up components, median of {} reps (ms)",
        args.reps
    );
    hr();
    println!(
        "{:<16} {:<10} {:>8} {:>8} {:>8} {:>9} {:>9}",
        "function", "technique", "CLONE", "EXEC", "RTS", "APPINIT", "total"
    );
    hr();

    let mut appinit_medians: Vec<(String, String, f64)> = Vec::new();

    for spec in [
        FunctionSpec::noop(),
        FunctionSpec::markdown(),
        FunctionSpec::image_resizer(),
    ] {
        for mode in [StartMode::Vanilla, StartMode::PrebakeNoWarmup] {
            let runner = TrialRunner::new(spec.clone(), mode).expect("build runner");
            let trials = parallel_startup_trials(&runner, args.reps, args.seed);
            let col = |f: fn(&prebake_core::Phases) -> f64| -> f64 {
                let v: Vec<f64> = trials.iter().map(|t| f(&t.phases)).collect();
                median(&v)
            };
            let clone_ms = col(|p| p.clone.as_millis_f64());
            let exec_ms = col(|p| p.exec.as_millis_f64());
            let rts_ms = col(|p| p.rts.as_millis_f64());
            let appinit_ms = col(|p| p.appinit.as_millis_f64());
            println!(
                "{:<16} {:<10} {:>8.2} {:>8.2} {:>8.2} {:>9.2} {:>9.2}",
                spec.name(),
                mode.label(),
                clone_ms,
                exec_ms,
                rts_ms,
                appinit_ms,
                clone_ms + exec_ms + rts_ms + appinit_ms
            );
            appinit_medians.push((spec.name().to_owned(), mode.label(), appinit_ms));
        }
    }
    hr();

    let lookup = |name: &str, mode: &str| {
        appinit_medians
            .iter()
            .find(|(n, m, _)| n == name && m == mode)
            .map(|(_, _, v)| *v)
            .unwrap_or(f64::NAN)
    };
    let ratio_vanilla = lookup("image-resizer", "vanilla") / lookup("noop", "vanilla");
    let ratio_prebake = lookup("image-resizer", "pb-nowarmup") / lookup("noop", "pb-nowarmup");
    println!("APPINIT ratio image-resizer/noop: vanilla {ratio_vanilla:.2}x (paper ≈7.18x), prebake {ratio_prebake:.2}x (paper ≈1.43x)");
    println!("paper reference: vanilla RTS ≈70ms for all functions; prebake RTS = 0");
}
