//! Table 1: start-up time 95 % confidence intervals (ms) for functions
//! with small, medium and big code bases, under the three techniques.
//!
//! Paper reference (ms):
//!             Vanilla            PB-NoWarmup        PB-Warmup
//!   Small     (219.25;220.32)    (172.12;172.80)    (54.06;54.75)
//!   Medium    (455.45;456.64)    (360.51;361.24)    (63.46;63.99)
//!   Big       (1619.91;1622.08)  (1339.90;1340.98)  (83.62;84.35)

use prebake_bench::{hr, parallel_startup_trials, summarize, HarnessArgs};
use prebake_core::measure::{StartMode, TrialRunner};
use prebake_functions::{FunctionSpec, SyntheticSize};

fn main() {
    let args = HarnessArgs::parse();
    println!(
        "Table 1 — start-up time 95% CIs, three techniques x three sizes ({} reps)",
        args.reps
    );
    hr();
    println!(
        "{:<8} {:>22} {:>22} {:>22}",
        "size", "Vanilla", "PB-NoWarmup", "PB-Warmup"
    );
    hr();

    for size in SyntheticSize::all() {
        let spec = FunctionSpec::synthetic(size);
        let mut cells = Vec::new();
        for mode in StartMode::all_three() {
            let runner = TrialRunner::new(spec.clone(), mode).expect("build runner");
            let samples: Vec<f64> = parallel_startup_trials(&runner, args.reps, args.seed)
                .iter()
                .map(|t| t.first_response_ms)
                .collect();
            cells.push(summarize(&samples, 3).ci.to_string());
        }
        println!(
            "{:<8} {:>22} {:>22} {:>22}",
            size.label(),
            cells[0],
            cells[1],
            cells[2]
        );
    }
    hr();
    println!("paper reference:");
    println!("  small   (219.25;220.32)   (172.12;172.80)   (54.06;54.75)");
    println!("  medium  (455.45;456.64)   (360.51;361.24)   (63.46;63.99)");
    println!("  big     (1619.91;1622.08) (1339.90;1340.98) (83.62;84.35)");
}
