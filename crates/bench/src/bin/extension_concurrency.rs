//! Extension (paper §7 future work): concurrent snapshots.
//!
//! "We plan to evaluate the checkpoint/restore as a service including
//! aspects such as the performance to deal with ... concurrent
//! snapshots." A multi-tenant burst — twelve *distinct* functions cold
//! starting at once — makes the starts contend for the node's I/O and
//! CPU. This harness sweeps the node's cold-start concurrency, vanilla
//! vs prebaked. Prebaking helps twice: each start is shorter *and* the
//! convoy behind a saturated node drains proportionally faster.

use prebake_bench::{hr, HarnessArgs};
use prebake_functions::FunctionSpec;
use prebake_platform::builder::{FunctionBuilder, Template};
use prebake_platform::platform::{Platform, PlatformConfig};
use prebake_platform::registry::Registry;
use prebake_runtime::http::Request;
use prebake_sim::time::SimInstant;
use prebake_stats::summary::quantile;

fn run(template: &Template, concurrency: usize, tenants: usize, seed: u64) -> (f64, f64) {
    let registry = Registry::new();
    let names: Vec<String> = (0..tenants).map(|i| format!("tenant-{i}")).collect();
    for name in &names {
        let spec = FunctionSpec::markdown().with_name(name.clone());
        registry.push(FunctionBuilder.build(spec, template).expect("build"));
    }
    let config = PlatformConfig {
        cold_start_concurrency: concurrency,
        seed,
        ..PlatformConfig::default()
    };
    let mut platform = Platform::new(config, registry);
    let body = prebake_functions::sample_markdown().into_bytes();
    for name in &names {
        platform.deploy_function(name).expect("deploy");
        platform
            .submit(SimInstant::EPOCH, name, Request::with_body(body.clone()))
            .expect("submit");
    }
    platform.run().expect("run");
    let lat: Vec<f64> = platform
        .completed()
        .iter()
        .map(|r| r.latency_ms())
        .collect();
    (quantile(&lat, 0.5), quantile(&lat, 1.0))
}

fn main() {
    let args = HarnessArgs::parse();
    let tenants = 12;
    println!("Extension — concurrent cold starts, {tenants} distinct functions at t=0 (markdown)");
    hr();
    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>12}",
        "concurrency", "vanilla p50", "vanilla max", "prebake p50", "prebake max"
    );
    hr();
    for concurrency in [1usize, 2, 4, 8, 16] {
        let (v50, vmax) = run(&Template::java11(), concurrency, tenants, args.seed);
        let (p50, pmax) = run(
            &Template::java11_criu_warm(1),
            concurrency,
            tenants,
            args.seed,
        );
        println!("{concurrency:<12} {v50:>10.1}ms {vmax:>10.1}ms {p50:>10.1}ms {pmax:>10.1}ms");
    }
    hr();
    println!(
        "take-away: with few slots the multi-tenant burst convoys behind cold \
         starts; prebaking shortens every position in the convoy, so the \
         worst-case gap widens as concurrency shrinks."
    );
}
