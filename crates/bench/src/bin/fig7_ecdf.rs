//! Figure 7: empirical CDFs of the service time for 200 requests applied
//! to each function after initialisation by Prebaking vs Vanilla.
//!
//! The paper's claim: the two ECDFs "pretty much coincide" — prebaking
//! causes no post-restore service penalty. We print matching deciles and
//! the Kolmogorov–Smirnov distance per function (small = coincide).

use prebake_bench::{hr, HarnessArgs};
use prebake_core::measure::{StartMode, TrialRunner};
use prebake_functions::FunctionSpec;
use prebake_sim::time::SimDuration;
use prebake_stats::ecdf::Ecdf;

fn main() {
    let args = HarnessArgs::parse();
    let requests = args.reps; // the paper applies 200 requests
    println!("Figure 7 — service-time ECDFs after start, {requests} requests per technique");

    for spec in [
        FunctionSpec::noop(),
        FunctionSpec::markdown(),
        FunctionSpec::image_resizer(),
    ] {
        let vanilla_runner =
            TrialRunner::new(spec.clone(), StartMode::Vanilla).expect("build runner");
        let prebake_runner =
            TrialRunner::new(spec.clone(), StartMode::PrebakeNoWarmup).expect("build runner");
        let interval = SimDuration::from_millis(100);
        let vanilla = vanilla_runner
            .service_trial(args.seed, requests, interval)
            .expect("vanilla service trial");
        let prebake = prebake_runner
            .service_trial(args.seed + 1, requests, interval)
            .expect("prebake service trial");

        let ev = Ecdf::new(&vanilla);
        let ep = Ecdf::new(&prebake);

        hr();
        println!("{} — service time quantiles (ms)", spec.name());
        println!(
            "{:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "", "p10", "p50", "p90", "p99", "max"
        );
        for (label, e) in [("vanilla", &ev), ("prebake", &ep)] {
            println!(
                "{label:>10} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
                e.inverse(0.10),
                e.inverse(0.50),
                e.inverse(0.90),
                e.inverse(0.99),
                e.inverse(1.0),
            );
        }
        let ks = ev.ks_distance(&ep);
        println!(
            "KS distance = {ks:.4} ({})",
            if ks < 0.15 {
                "ECDFs coincide — no post-restore penalty"
            } else {
                "ECDFs DIVERGE"
            }
        );
    }
    hr();
    println!("paper reference: both ECDFs pretty much coincide for all three functions");
}
