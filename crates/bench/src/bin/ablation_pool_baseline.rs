//! Ablation 3 (paper §1/§6 related work): prebaking vs the pool-based
//! cold-start mitigation (Lin & Glikson, the paper's reference \[14\])
//! under bursty load.
//!
//! Three platform configurations serve the same Poisson-with-bursts
//! trace of the Markdown function:
//!
//! 1. **vanilla**      — scale-to-zero, fork-exec cold starts
//! 2. **prebake**      — scale-to-zero, snapshot-restore cold starts
//! 3. **warm pool** — vanilla starts + a 2-replica warm pool (idle
//!    replicas the provider pays for)
//!
//! Reported: p50/p95/p99 latency, cold-start count, and replicas started
//! (an operating-cost proxy). Expectation: the pool hides cold starts at
//! standing cost; prebaking narrows the gap without idle replicas —
//! exactly the paper's motivation.

use prebake_bench::{hr, HarnessArgs};
use prebake_functions::FunctionSpec;
use prebake_platform::builder::{FunctionBuilder, Template};
use prebake_platform::loadgen;
use prebake_platform::platform::{Platform, PlatformConfig};
use prebake_platform::registry::Registry;
use prebake_runtime::http::Request;
use prebake_sim::time::{SimDuration, SimInstant};
use prebake_stats::summary::quantile;

struct Scenario {
    name: &'static str,
    template: Template,
    min_warm_pool: usize,
}

fn main() {
    let args = HarnessArgs::parse();
    let n_requests = (args.reps * 2).max(100);
    println!(
        "Ablation — prebaking vs warm-pool baseline, bursty Markdown trace ({n_requests} requests)"
    );
    hr();
    println!(
        "{:<12} {:>9} {:>9} {:>9} {:>7} {:>9} {:>9}",
        "scenario", "p50", "p95", "p99", "cold", "started", "reaped"
    );
    hr();

    let scenarios = [
        Scenario {
            name: "vanilla",
            template: Template::java11(),
            min_warm_pool: 0,
        },
        Scenario {
            name: "prebake",
            template: Template::java11_criu_warm(1),
            min_warm_pool: 0,
        },
        Scenario {
            name: "warm-pool",
            template: Template::java11(),
            min_warm_pool: 2,
        },
    ];

    for sc in scenarios {
        let registry = Registry::new();
        registry.push(
            FunctionBuilder
                .build(FunctionSpec::markdown(), &sc.template)
                .expect("build image"),
        );
        let config = PlatformConfig {
            idle_timeout: SimDuration::from_secs(10),
            min_warm_pool: sc.min_warm_pool,
            seed: args.seed,
            ..PlatformConfig::default()
        };
        let mut platform = Platform::new(config, registry);
        platform.deploy_function("markdown-render").expect("deploy");

        // Trace: steady Poisson traffic with bursts every 30 s — each
        // burst lands after the idle GC reaped the replicas, forcing
        // cold starts in the scale-to-zero scenarios.
        let body = prebake_functions::sample_markdown().into_bytes();
        let make = |_i: usize| Request::with_body(body.clone());
        let steady = n_requests * 2 / 3;
        let burst_total = n_requests - steady;
        loadgen::poisson(
            &mut platform,
            "markdown-render",
            steady,
            SimInstant::EPOCH,
            SimDuration::from_millis(400),
            args.seed,
            make,
        )
        .expect("poisson load");
        let bursts = 4usize;
        for b in 0..bursts {
            let at = SimInstant::EPOCH + SimDuration::from_secs(30 * (b as u64 + 1));
            loadgen::burst(
                &mut platform,
                "markdown-render",
                burst_total / bursts,
                at,
                make,
            )
            .expect("burst load");
        }
        platform.run().expect("platform run");

        let latencies: Vec<f64> = platform
            .completed()
            .iter()
            .map(|r| r.latency_ms())
            .collect();
        let m = platform.metrics().get("markdown-render").expect("metrics");
        println!(
            "{:<12} {:>7.1}ms {:>7.1}ms {:>7.1}ms {:>7} {:>9} {:>9}",
            sc.name,
            quantile(&latencies, 0.50),
            quantile(&latencies, 0.95),
            quantile(&latencies, 0.99),
            m.cold_starts.get(),
            m.replicas_started.get(),
            m.replicas_reaped.get()
        );
    }
    hr();
    println!(
        "take-away: warm pools erase tail latency by paying for idle replicas; \
         prebaking attacks the same tail by making each cold start cheap instead."
    );
}
