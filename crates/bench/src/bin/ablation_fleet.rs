//! Ablation 7: fleet scheduling — keep-alive policy × restore gear ×
//! fleet shape.
//!
//! The paper measures how fast one prebaked replica starts; this harness
//! asks what that buys a *cluster*. It profiles the Fig. 5 synthetic mix
//! under every restore gear with the single-machine trial harness, then
//! replays a heavy-tailed multi-tenant arrival trace through the fleet
//! scheduler for each point of a policy × fleet-size × memory-budget
//! grid. The baseline is the fixed-TTL, vanilla-start configuration the
//! keep-alive literature measures real platforms with; challengers swap
//! in prebake gears (fixed or adaptively chosen from the profile) and
//! smarter keep-alive (LRU-under-pressure, histogram-adaptive TTL with
//! predictive pre-warm).
//!
//! Besides the human-readable table the harness writes
//! `BENCH_fleet.json` (cold-start fraction, p50/p99 latency, queueing
//! and memory counters per grid point); with the default `--seed` the
//! file is bit-reproducible.

use prebake_bench::fleetmix::{fig5_profiles, workload};
use prebake_bench::{hr, HarnessArgs};
use prebake_fleet::{
    FleetConfig, FleetSim, FunctionProfile, Gear, KeepAlive, Policy, StartSelection,
};
use prebake_platform::loadgen::Schedule;
use prebake_sim::time::SimDuration;
use prebake_stats::summary::quantile;

/// One grid point's outcome.
struct Outcome {
    workers: usize,
    budget_mb: u64,
    policy_label: String,
    cold_fraction: f64,
    p50_ms: f64,
    p99_ms: f64,
    queue_p99_ms: f64,
    evictions: u64,
    expirations: u64,
    prewarms: u64,
    shed: u64,
    high_water_mb: u64,
}

fn run_point(
    profiles: &[FunctionProfile],
    schedule: &Schedule,
    workers: usize,
    budget: u64,
    policy: Policy,
    seed: u64,
) -> Outcome {
    let mut sim = FleetSim::new(FleetConfig {
        workers,
        mem_budget_bytes: budget,
        policy,
        seed,
        ..FleetConfig::default()
    });
    for p in profiles {
        sim.register(p.clone());
    }
    sim.run(schedule).expect("all functions registered");
    assert_eq!(
        sim.completed().len() as u64,
        sim.metrics().requests.get(),
        "every admitted request must be served ({} {:?})",
        policy.label(),
        (workers, budget >> 20),
    );
    let mut latency: Vec<f64> = sim.completed().iter().map(|r| r.latency_ms()).collect();
    let mut queue: Vec<f64> = sim.completed().iter().map(|r| r.queue_delay_ms()).collect();
    latency.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    queue.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let m = sim.metrics();
    Outcome {
        workers,
        budget_mb: budget >> 20,
        policy_label: policy.label(),
        cold_fraction: m.cold_fraction(),
        p50_ms: quantile(&latency, 0.5),
        p99_ms: quantile(&latency, 0.99),
        queue_p99_ms: quantile(&queue, 0.99),
        evictions: m.evictions.get(),
        expirations: m.expirations.get(),
        prewarms: m.prewarm_starts.get(),
        shed: m.shed.get(),
        high_water_mb: sim.worker_high_water().into_iter().max().unwrap_or(0) >> 20,
    }
}

fn main() {
    let args = HarnessArgs::parse();
    let reps = args.reps.min(40);
    // Profiling medians stabilise quickly; the sweep itself is exact.
    let profile_reps = (reps / 8).clamp(2, 5);
    println!(
        "Ablation — fleet scheduling, Fig. 5 mix ({profile_reps} profiling reps, seed {})",
        args.seed
    );
    hr();

    // -- part 1: profile the mix under every gear ----------------------
    let profiles = fig5_profiles(profile_reps, args.seed);

    println!(
        "{:<10} {:<9} {:>10} {:>9} {:>9} {:>10} {:>9}",
        "function", "gear", "cold", "first", "warm", "replica", "image"
    );
    hr();
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"seed\": {},\n  \"profile_reps\": {},\n  \"profiles\": [\n",
        args.seed, profile_reps
    ));
    for (fi, p) in profiles.iter().enumerate() {
        for (gi, gear) in p.gears().enumerate() {
            let c = p.cost(gear).expect("measured");
            println!(
                "{:<10} {:<9} {:>8.2}ms {:>7.2}ms {:>7.2}ms {:>8.1}MB {:>7.1}MB",
                if gi == 0 { p.name() } else { "" },
                gear.label(),
                c.cold_ms,
                c.first_service_ms,
                c.warm_service_ms,
                c.replica_mem_bytes as f64 / 1e6,
                c.image_bytes as f64 / 1e6,
            );
            json.push_str(&format!(
                "    {{\"function\": \"{}\", \"gear\": \"{}\", \"cold_ms\": {:.4}, \
                 \"first_service_ms\": {:.4}, \"warm_service_ms\": {:.4}, \
                 \"replica_mem_bytes\": {}, \"image_bytes\": {}, \"best\": {}}}{}\n",
                p.name(),
                gear.label(),
                c.cold_ms,
                c.first_service_ms,
                c.warm_service_ms,
                c.replica_mem_bytes,
                c.image_bytes,
                p.best_gear() == gear,
                if fi == profiles.len() - 1 && gi == p.gears().count() - 1 {
                    ""
                } else {
                    ","
                },
            ));
        }
    }
    hr();

    // -- part 2: policy x fleet shape sweep ----------------------------
    // Budgets scale with the mix's biggest replica footprint so "tight"
    // genuinely forces eviction decisions.
    let unit: u64 = profiles
        .iter()
        .map(|p| {
            let c = p.cost(Gear::Eager).expect("measured");
            c.replica_mem_bytes + c.image_bytes
        })
        .max()
        .expect("non-empty mix");
    // Tight shapes hold barely one big replica per worker; the generous
    // one fits the whole mix eagerly.
    let shapes: [(usize, u64); 3] = [(2, unit / 2), (4, unit / 2), (4, unit * 4)];
    let ttl = SimDuration::from_secs(60);
    let hist = |prewarm| KeepAlive::Histogram {
        floor: SimDuration::from_secs(1),
        cap: SimDuration::from_secs(120),
        quantile: 0.99,
        prewarm,
    };
    let policies = [
        Policy::vanilla_baseline(ttl),
        Policy {
            keep_alive: KeepAlive::FixedTtl(ttl),
            start: StartSelection::Fixed(Gear::Prefetch),
        },
        Policy {
            keep_alive: KeepAlive::FixedTtl(ttl),
            start: StartSelection::Adaptive,
        },
        Policy {
            keep_alive: KeepAlive::LruPressure { ttl },
            start: StartSelection::Adaptive,
        },
        Policy {
            keep_alive: hist(false),
            start: StartSelection::Adaptive,
        },
        Policy {
            keep_alive: hist(true),
            start: StartSelection::Adaptive,
        },
    ];
    let schedule = workload(&profiles, args.seed);

    println!(
        "\nPolicy sweep — {} arrivals, heavy-tailed 4-tenant trace",
        schedule.len()
    );
    hr();
    println!(
        "{:<3} {:>7} {:<24} {:>6} {:>9} {:>10} {:>6} {:>5} {:>5}",
        "wrk", "budget", "policy", "cold%", "p50", "p99", "evict", "pre", "shed"
    );
    hr();
    json.push_str("  ],\n  \"sweep\": [\n");
    let mut outcomes = Vec::new();
    for (si, &(workers, budget)) in shapes.iter().enumerate() {
        for (pi, &policy) in policies.iter().enumerate() {
            let o = run_point(&profiles, &schedule, workers, budget, policy, args.seed);
            println!(
                "{:<3} {:>5}MB {:<24} {:>5.1}% {:>7.2}ms {:>8.2}ms {:>6} {:>5} {:>5}",
                o.workers,
                o.budget_mb,
                o.policy_label,
                o.cold_fraction * 100.0,
                o.p50_ms,
                o.p99_ms,
                o.evictions,
                o.prewarms,
                o.shed,
            );
            json.push_str(&format!(
                "    {{\"workers\": {}, \"mem_budget_mb\": {}, \"policy\": \"{}\", \
                 \"cold_fraction\": {:.6}, \"p50_ms\": {:.4}, \"p99_ms\": {:.4}, \
                 \"queue_p99_ms\": {:.4}, \"evictions\": {}, \"expirations\": {}, \
                 \"prewarm_starts\": {}, \"shed\": {}, \"mem_high_water_mb\": {}}}{}\n",
                o.workers,
                o.budget_mb,
                o.policy_label,
                o.cold_fraction,
                o.p50_ms,
                o.p99_ms,
                o.queue_p99_ms,
                o.evictions,
                o.expirations,
                o.prewarms,
                o.shed,
                o.high_water_mb,
                if si == shapes.len() - 1 && pi == policies.len() - 1 {
                    ""
                } else {
                    ","
                },
            ));
            outcomes.push(o);
        }
        if si < shapes.len() - 1 {
            hr();
        }
    }
    hr();

    // -- acceptance: some policy must beat the baseline on BOTH axes ---
    let baseline_label = policies[0].label();
    let reference = outcomes
        .iter()
        .filter(|o| o.workers == shapes[2].0 && o.budget_mb == shapes[2].1 >> 20)
        .collect::<Vec<_>>();
    let base = reference
        .iter()
        .find(|o| o.policy_label == baseline_label)
        .expect("baseline ran");
    assert!(
        base.cold_fraction > 0.0,
        "the trace must exercise cold starts under the baseline"
    );
    let winner = reference
        .iter()
        .filter(|o| o.policy_label != baseline_label)
        .filter(|o| o.cold_fraction < base.cold_fraction && o.p99_ms < base.p99_ms)
        .min_by(|a, b| {
            (a.cold_fraction, a.p99_ms)
                .partial_cmp(&(b.cold_fraction, b.p99_ms))
                .expect("finite")
        })
        .unwrap_or_else(|| {
            panic!(
                "no policy beat the vanilla-TTL baseline on both cold fraction \
                 ({:.3}) and p99 ({:.2}ms)",
                base.cold_fraction, base.p99_ms
            )
        });
    json.push_str(&format!(
        "  ],\n  \"baseline\": {{\"policy\": \"{}\", \"cold_fraction\": {:.6}, \
         \"p99_ms\": {:.4}}},\n  \"winner\": {{\"policy\": \"{}\", \
         \"cold_fraction\": {:.6}, \"p99_ms\": {:.4}}}\n}}\n",
        base.policy_label,
        base.cold_fraction,
        base.p99_ms,
        winner.policy_label,
        winner.cold_fraction,
        winner.p99_ms,
    ));

    // Only a full-rep run under the default seed refreshes the checked-in
    // copy (it is bit-reproducible); quick or reseeded runs land in the
    // gitignored results/ directory.
    let path = if reps >= 40 && args.seed == 1 {
        "BENCH_fleet.json".to_string()
    } else {
        std::fs::create_dir_all("results").expect("mkdir results");
        "results/BENCH_fleet.json".to_string()
    };
    std::fs::write(&path, &json).expect("write BENCH_fleet.json");
    println!(
        "take-away: on a 4-worker fleet with headroom, {} cuts the cold-start fraction \
         from {:.1}% to {:.1}% and p99 latency from {:.2}ms to {:.2}ms versus the \
         fixed-TTL vanilla baseline — prebaked gears make the unavoidable cold starts \
         cheap, and the adaptive TTL plus pre-warm makes fewer of them. Wrote {path}.",
        winner.policy_label,
        base.cold_fraction * 100.0,
        winner.cold_fraction * 100.0,
        base.p99_ms,
        winner.p99_ms,
    );
}
