//! `benchdiff` — the bench regression gate.
//!
//! Compares a candidate `BENCH_*.json` against a committed baseline with
//! direction-aware tolerance bands and exits nonzero when any
//! lower-is-better metric (latency medians/percentiles, cold fraction,
//! memory high-water, registry egress, shed count) regressed past the
//! band. Neutral counters are reported as drift but never fail; so are
//! metrics that appear or disappear, which keeps the gate usable across
//! stacked PRs that evolve the bench schema.
//!
//! ```text
//! usage: benchdiff <baseline.json> <candidate.json> [--tol PCT] [--floor ABS]
//! ```
//!
//! `--tol` is the relative band in percent (default 5). `--floor` is the
//! absolute delta a metric must move before the band even applies
//! (default 0.5 — half a millisecond for latency metrics), which keeps
//! percentage math on sub-millisecond medians from tripping the gate.
//!
//! Exit status: 0 in band, 1 regression, 2 usage or parse error.

use prebake_bench::diff::{diff, Tolerance};
use prebake_bench::json;

fn usage(msg: &str) -> ! {
    eprintln!("{msg}\nusage: benchdiff <baseline.json> <candidate.json> [--tol PCT] [--floor ABS]");
    std::process::exit(2);
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut files: Vec<&str> = Vec::new();
    let mut tol = Tolerance::default();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--tol" => {
                let pct: f64 = argv
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--tol needs a percentage"));
                tol.rel = pct / 100.0;
                i += 2;
            }
            "--floor" => {
                tol.floor_abs = argv
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--floor needs a number"));
                i += 2;
            }
            flag if flag.starts_with("--") => usage(&format!("unknown flag {flag}")),
            path => {
                files.push(path);
                i += 1;
            }
        }
    }
    if files.len() != 2 {
        usage("expected exactly two files");
    }
    let read = |path: &str| -> json::Value {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("benchdiff: cannot read {path}: {e}");
            std::process::exit(2);
        });
        json::parse(&text).unwrap_or_else(|e| {
            eprintln!("benchdiff: {path}: {e}");
            std::process::exit(2);
        })
    };
    let baseline = read(files[0]);
    let candidate = read(files[1]);
    let report = diff(&baseline, &candidate, tol);
    print!(
        "benchdiff {} vs {}\n{}",
        files[0],
        files[1],
        report.render(tol)
    );
    if !report.passes() {
        std::process::exit(1);
    }
}
