//! The shared multi-tenant fleet workload: the Fig. 5 synthetic mix
//! profiled under every restore gear, plus the heavy-tailed arrival
//! trace both fleet-level ablations (`ablation_fleet`, `ablation_obs`)
//! replay. Kept in the library so the telemetry ablation observes
//! *exactly* the trace the scheduling ablation swept.

use prebake_fleet::{FunctionProfile, Gear};
use prebake_functions::{FunctionSpec, SyntheticSize};
use prebake_platform::loadgen::Schedule;
use prebake_sim::time::{SimDuration, SimInstant};

/// Name of the timer-driven tenant (profiled like the medium function).
pub const CRON_FUNCTION: &str = "synthetic-cron";

/// Profiles the Fig. 5 synthetic mix (small/medium/big) under every
/// gear, and appends the cron tenant sharing the medium function's
/// measured costs under its own name (same binary, different trigger).
///
/// # Panics
///
/// Panics if profiling fails — the synthetic specs are always valid.
pub fn fig5_profiles(profile_reps: usize, seed: u64) -> Vec<FunctionProfile> {
    let mut profiles: Vec<FunctionProfile> = [
        SyntheticSize::Small,
        SyntheticSize::Medium,
        SyntheticSize::Big,
    ]
    .into_iter()
    .map(|size| {
        let spec = FunctionSpec::synthetic(size);
        FunctionProfile::measure(&spec, &Gear::ALL, profile_reps, seed).expect("profiling succeeds")
    })
    .collect();
    let cron_costs: Vec<_> = profiles[1]
        .gears()
        .map(|g| (g, *profiles[1].cost(g).expect("measured")))
        .collect();
    profiles.push(FunctionProfile::synthetic(CRON_FUNCTION, &cron_costs));
    profiles
}

/// The multi-tenant trace: a hot small function, a steady medium one,
/// and a rarely-invoked big one with heavy-tailed (Pareto) gaps — the
/// shape production FaaS traces show — plus a timer-driven tenant on a
/// strict 3-minute cadence.
///
/// Gaps are tuned so the tenants straddle the baseline's 60s TTL: the
/// small function stays hot, the medium one's tail occasionally outlives
/// the TTL, and the big one usually does — the regime where keep-alive
/// policy (and the price of the resulting cold starts) decides tail
/// latency. The cron tenant's gap outlives every TTL in the sweep, so
/// only predictive pre-warm can serve it warm.
///
/// # Panics
///
/// Panics if the distribution parameters are rejected — they are
/// compile-time constants, so they never are.
pub fn workload(profiles: &[FunctionProfile], seed: u64) -> Schedule {
    let mix: [(usize, f64, f64); 3] = [
        (150, 400.0, 1.3),   // small: ~2s mean gap, always warm
        (80, 8_000.0, 1.3),  // medium: ~35s mean gap, tail past the TTL
        (40, 25_000.0, 1.2), // big: ~150s mean gap, mostly cold
    ];
    let mut schedule = Schedule::default();
    for (i, (p, (n, scale_ms, alpha))) in profiles.iter().zip(mix).enumerate() {
        schedule = schedule.merge(
            Schedule::pareto(
                p.name(),
                n,
                SimInstant::EPOCH,
                scale_ms,
                alpha,
                seed + i as u64,
            )
            .expect("valid pareto parameters"),
        );
    }
    schedule.merge(
        Schedule::constant(
            CRON_FUNCTION,
            20,
            SimInstant::EPOCH,
            SimDuration::from_secs(180),
        )
        .expect("valid constant schedule"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_cover_all_four_tenants() {
        let profiles = fig5_profiles(2, 1);
        let names: Vec<&str> = profiles.iter().map(FunctionProfile::name).collect();
        assert_eq!(
            names,
            vec![
                "synthetic-small",
                "synthetic-medium",
                "synthetic-big",
                CRON_FUNCTION
            ]
        );
        // The cron tenant shares the medium function's cost table.
        for g in profiles[1].gears() {
            assert_eq!(profiles[3].cost(g), profiles[1].cost(g));
        }
    }

    #[test]
    fn workload_is_deterministic_per_seed() {
        let profiles = fig5_profiles(2, 1);
        let a = workload(&profiles, 5);
        let b = workload(&profiles, 5);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.len(), 150 + 80 + 40 + 20);
        let arrivals = |s: &Schedule| {
            s.arrivals()
                .iter()
                .map(|x| (x.at.as_nanos(), x.function.clone()))
                .collect::<Vec<_>>()
        };
        assert_eq!(arrivals(&a), arrivals(&b));
        assert_ne!(arrivals(&a), arrivals(&workload(&profiles, 6)));
    }
}
