//! # prebake-bench
//!
//! Shared harness utilities for the experiment binaries (one per paper
//! table/figure — see `DESIGN.md` §4 for the index and `EXPERIMENTS.md`
//! for paper-vs-measured results).
//!
//! Every binary accepts:
//!
//! - `--reps <N>` — repetitions per treatment (default 200, the paper's
//!   count)
//! - `--quick` — 30 repetitions, for smoke runs
//! - `--seed <S>` — base RNG seed (default 1)
//!
//! Repetitions fan out across host threads with crossbeam; each trial
//! builds its own virtual machine, so parallelism cannot perturb the
//! measured virtual times.

#![warn(missing_docs)]

pub mod diff;
pub mod fleetmix;
pub mod json;

use prebake_core::measure::{StartupTrial, TrialRunner};
use prebake_stats::bootstrap::{median_ci, ConfInterval};
use prebake_stats::summary::median;

/// Command-line options shared by all harness binaries.
#[derive(Debug, Clone, Copy)]
pub struct HarnessArgs {
    /// Repetitions per treatment.
    pub reps: usize,
    /// Base seed.
    pub seed: u64,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        HarnessArgs { reps: 200, seed: 1 }
    }
}

impl HarnessArgs {
    /// Parses `std::env::args()`; exits with a usage message on error.
    pub fn parse() -> HarnessArgs {
        let mut args = HarnessArgs::default();
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < argv.len() {
            match argv[i].as_str() {
                "--quick" => {
                    args.reps = 30;
                    i += 1;
                }
                "--reps" => {
                    args.reps = argv
                        .get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--reps needs a number"));
                    i += 2;
                }
                "--seed" => {
                    args.seed = argv
                        .get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--seed needs a number"));
                    i += 2;
                }
                other => usage(&format!("unknown flag {other}")),
            }
        }
        args
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("{msg}\nusage: <bin> [--reps N] [--quick] [--seed S]");
    std::process::exit(2);
}

/// Runs `reps` startup trials serially with the same seed schedule as
/// [`parallel_startup_trials`] — the reference the parallel fan-out must
/// reproduce bit-for-bit (each trial builds its own virtual machine, so
/// host threading can never leak into virtual time).
///
/// # Panics
///
/// Panics if any trial fails.
pub fn serial_startup_trials(runner: &TrialRunner, reps: usize, seed0: u64) -> Vec<StartupTrial> {
    (0..reps)
        .map(|i| {
            runner
                .startup_trial(seed0 + i as u64)
                .expect("startup trial failed")
        })
        .collect()
}

/// Runs `reps` startup trials in parallel across host threads.
///
/// # Panics
///
/// Panics if any trial fails — experiment configurations are expected to
/// be valid.
pub fn parallel_startup_trials(runner: &TrialRunner, reps: usize, seed0: u64) -> Vec<StartupTrial> {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(reps.max(1));
    let mut results: Vec<Option<StartupTrial>> = vec![None; reps];
    let chunk = reps.div_ceil(threads);
    crossbeam::thread::scope(|scope| {
        for (t, slice) in results.chunks_mut(chunk).enumerate() {
            let base = seed0 + (t * chunk) as u64;
            scope.spawn(move |_| {
                for (i, slot) in slice.iter_mut().enumerate() {
                    *slot = Some(
                        runner
                            .startup_trial(base + i as u64)
                            .expect("startup trial failed"),
                    );
                }
            });
        }
    })
    .expect("trial thread panicked");
    results.into_iter().map(|t| t.unwrap()).collect()
}

/// Summary of one treatment's sample: median + bootstrap 95 % CI.
#[derive(Debug, Clone, Copy)]
pub struct TreatmentSummary {
    /// Sample median (ms).
    pub median_ms: f64,
    /// 95 % bootstrap CI of the median.
    pub ci: ConfInterval,
}

/// Computes the paper's standard per-treatment summary.
///
/// # Panics
///
/// Panics on an empty sample.
pub fn summarize(samples_ms: &[f64], seed: u64) -> TreatmentSummary {
    TreatmentSummary {
        median_ms: median(samples_ms),
        ci: median_ci(samples_ms, 2000, 0.95, seed),
    }
}

/// Prints a horizontal rule sized to the report tables.
pub fn hr() {
    println!("{}", "-".repeat(78));
}

/// Formats an improvement percentage `(old - new) / old`.
pub fn improvement_pct(old: f64, new: f64) -> f64 {
    (old - new) / old * 100.0
}

/// Formats the paper's speed-up ratio `old / new` as a percentage
/// (e.g. 403.96 for "403.96 %").
pub fn speedup_ratio_pct(old: f64, new: f64) -> f64 {
    old / new * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use prebake_core::measure::StartMode;
    use prebake_functions::FunctionSpec;

    #[test]
    fn parallel_trials_cover_all_seeds() {
        let runner = TrialRunner::new(FunctionSpec::noop(), StartMode::Vanilla).unwrap();
        let trials = parallel_startup_trials(&runner, 8, 100);
        assert_eq!(trials.len(), 8);
        // Deterministic: same seeds give the same set of startups.
        let again = parallel_startup_trials(&runner, 8, 100);
        for (a, b) in trials.iter().zip(&again) {
            assert_eq!(a.startup_ms, b.startup_ms);
        }
    }

    #[test]
    fn parallel_trials_match_serial_bit_for_bit() {
        // The fan-out must be a pure scheduling change: same seeds, same
        // virtual-time results, in the same order.
        let runner = TrialRunner::new(FunctionSpec::noop(), StartMode::PrebakeNoWarmup).unwrap();
        let serial = serial_startup_trials(&runner, 7, 42);
        let parallel = parallel_startup_trials(&runner, 7, 42);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.startup_ms, p.startup_ms);
            assert_eq!(s.first_response_ms, p.first_response_ms);
            assert_eq!(s.probes, p.probes);
        }
    }

    #[test]
    fn summarize_produces_ci_containing_median() {
        let data: Vec<f64> = (0..50).map(|i| 100.0 + (i % 7) as f64).collect();
        let s = summarize(&data, 1);
        assert!(s.ci.contains(s.median_ms));
    }

    #[test]
    fn ratio_helpers() {
        assert!((improvement_pct(100.0, 60.0) - 40.0).abs() < 1e-9);
        assert!((speedup_ratio_pct(219.8, 54.4) - 404.04).abs() < 0.5);
    }
}
