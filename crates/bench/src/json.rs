//! A minimal JSON reader for the committed `BENCH_*.json` baselines.
//!
//! The bench harnesses *write* JSON with hand-formatted `format!` calls;
//! this module is the matching *reader* for the regression gate
//! (`benchdiff`), so the repo stays free of a serde dependency. It
//! parses the full JSON grammar (objects, arrays, strings with escapes,
//! numbers as `f64`, booleans, null) with byte positions in errors.

use std::fmt;

/// A parsed JSON value. Object keys keep file order (the bench writers
/// emit deterministically, and diff output should follow them).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, as `f64` (bench metrics are all representable).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in key order of appearance.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, when this is a [`Value::Num`].
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// A parse failure, with the byte offset it happened at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document (trailing whitespace allowed,
/// trailing garbage rejected).
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            at: self.pos,
            msg: msg.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogates don't appear in bench output;
                            // map them to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xc0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .expect("valid utf-8 slice"),
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>().map(Value::Num).map_err(|_| ParseError {
            at: start,
            msg: format!("invalid number '{text}'"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("-12.5e2").unwrap(), Value::Num(-1250.0));
        assert_eq!(
            parse(r#""a\"b\nA""#).unwrap(),
            Value::Str("a\"b\nA".to_owned())
        );
        let v = parse(r#"{"a": [1, 2, {"b": false}], "c": "x"}"#).unwrap();
        assert_eq!(v.get("c"), Some(&Value::Str("x".to_owned())));
        match v.get("a").unwrap() {
            Value::Arr(items) => {
                assert_eq!(items.len(), 3);
                assert_eq!(items[0].as_f64(), Some(1.0));
            }
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("1 2").is_err(), "trailing garbage");
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn round_trips_a_committed_baseline_shape() {
        let doc = r#"{
  "seed": 1,
  "reps": 40,
  "parallel": [
    {"threads": 1, "p50_ms": 89.3953, "p95_ms": 90.8682, "shards": 1},
    {"threads": 8, "p50_ms": 68.2383, "p95_ms": 69.0226, "shards": 5}
  ],
  "layout": {"fault_order": {"p50_ms": 78.2533, "seek_bytes_avoided": 65359872}}
}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("reps").and_then(Value::as_f64), Some(40.0));
        let layout = v.get("layout").unwrap().get("fault_order").unwrap();
        assert_eq!(
            layout.get("seek_bytes_avoided").and_then(Value::as_f64),
            Some(65_359_872.0)
        );
    }
}
