//! The simulated machine: one kernel = one node.
//!
//! The kernel owns the virtual clock, the cost model, the noise source,
//! the process table, the filesystem and the port namespace. Every
//! operation other layers perform flows through a kernel method, which
//! validates it against POSIX-ish semantics, mutates real state and
//! charges calibrated virtual time.

use bytes::Bytes;

use std::collections::BTreeMap;

use crate::cost::{per_byte, CostModel};
use crate::error::{Errno, SysResult};
use crate::fs::{SimFs, Stat};
use crate::mem::{Page, Prot, VirtAddr, VmaKind, PAGE_SIZE};
use crate::noise::Noise;
use crate::pagestore::SharedPageStore;
use crate::probe::{ProbeEvent, ProbeKind};
use crate::proc::{Cap, CapSet, FdEntry, Pid, ProcState, Process, ThreadState, Tid};
use crate::time::{Clock, SimDuration, SimInstant};
use crate::trace::{SpanId, TraceSpan, Tracer};
use crate::uffd::UffdBackend;

/// Pid of the always-present init process.
pub const INIT_PID: Pid = Pid(1);

/// A simulated machine.
///
/// # Examples
///
/// ```
/// use prebake_sim::kernel::{Kernel, INIT_PID};
///
/// let mut k = Kernel::new(42);
/// k.fs_create_dir_all("/app").unwrap();
/// k.fs_write_file("/app/bin", vec![0u8; 1024]).unwrap();
/// let pid = k.sys_clone(INIT_PID).unwrap();
/// k.sys_execve(pid, "/app/bin", &["bin".into()]).unwrap();
/// assert!(k.now().as_nanos() > 0, "work was charged to the clock");
/// ```
#[derive(Debug)]
pub struct Kernel {
    clock: Clock,
    costs: CostModel,
    noise: Noise,
    procs: BTreeMap<Pid, Process>,
    fs: SimFs,
    next_pid: u32,
    next_tid: u32,
    next_pipe: u64,
    bound_ports: BTreeMap<u16, Pid>,
    tracing: bool,
    trace: Vec<ProbeEvent>,
    /// Nested span recorder (disabled by default; see [`crate::trace`]).
    tracer: Tracer,
    /// Demand-paging registrations (`userfaultfd` analogue), per process.
    uffd: BTreeMap<Pid, UffdBackend>,
    /// Machine-wide content-addressed pool of shared page frames backing
    /// copy-on-write restores.
    page_store: SharedPageStore,
}

impl Kernel {
    /// Creates a machine with paper-calibrated costs and ±1.5 % noise.
    pub fn new(seed: u64) -> Self {
        Kernel::with_config(CostModel::paper_calibrated(), Noise::new(seed, 0.015))
    }

    /// Creates a machine with explicit cost and noise configuration.
    pub fn with_config(costs: CostModel, noise: Noise) -> Self {
        let mut procs = BTreeMap::new();
        let mut init = Process::new(INIT_PID, INIT_PID, "init", Tid(1));
        init.caps = CapSet::all();
        procs.insert(INIT_PID, init);
        Kernel {
            clock: Clock::new(),
            costs,
            noise,
            procs,
            fs: SimFs::new(),
            next_pid: 2,
            next_tid: 2,
            next_pipe: 1,
            bound_ports: BTreeMap::new(),
            tracing: false,
            trace: Vec::new(),
            tracer: Tracer::new(),
            uffd: BTreeMap::new(),
            page_store: SharedPageStore::new(),
        }
    }

    /// A machine whose operations cost nothing — for state-only tests.
    pub fn free(seed: u64) -> Self {
        Kernel::with_config(CostModel::free(), Noise::new(seed, 0.0))
    }

    // ---------------------------------------------------------------- time

    /// Current virtual time.
    pub fn now(&self) -> SimInstant {
        self.clock.now()
    }

    /// Charges `base` work to the clock, perturbed by the noise source.
    /// Returns the actual (jittered) duration.
    pub fn charge(&mut self, base: SimDuration) -> SimDuration {
        let actual = self.noise.jitter(base);
        self.clock.advance(actual);
        actual
    }

    /// Advances the clock without noise (external waits, think time).
    pub fn advance(&mut self, d: SimDuration) {
        self.clock.advance(d);
    }

    /// Moves the clock forward to `t` if it lags (event-queue sync).
    pub fn advance_to(&mut self, t: SimInstant) {
        self.clock.advance_to(t);
    }

    /// Runs `f` without advancing the clock: whatever virtual time the
    /// enclosed operations would charge is rolled back afterwards.
    ///
    /// This models work that happens *outside* any measured timeline —
    /// container-image pulls, artifact installation, machine provisioning
    /// — which the paper deliberately excludes ("we deliberately excluded
    /// some typical components of FaaS platforms, such as container
    /// orchestrators"). State changes (files written, processes created,
    /// cache warmth) persist; only time is suppressed.
    ///
    /// # Errors
    ///
    /// Propagates `f`'s error; the clock is restored either way.
    pub fn uncharged<T>(
        &mut self,
        f: impl FnOnce(&mut Kernel) -> crate::error::SysResult<T>,
    ) -> crate::error::SysResult<T> {
        let before = self.clock.now();
        let result = f(self);
        self.clock.set(before);
        result
    }

    /// The cost table in force.
    pub fn costs(&self) -> &CostModel {
        &self.costs
    }

    /// Mutable access to the noise source (shared deterministic stream
    /// for workload generators).
    pub fn noise_mut(&mut self) -> &mut Noise {
        &mut self.noise
    }

    // ------------------------------------------------------------- tracing

    /// Enables or disables probe recording.
    pub fn set_tracing(&mut self, on: bool) {
        self.tracing = on;
    }

    /// Drains the recorded probe events.
    pub fn take_trace(&mut self) -> Vec<ProbeEvent> {
        std::mem::take(&mut self.trace)
    }

    /// Emits a user-level marker (runtime log line analogue).
    pub fn emit_marker(&mut self, pid: Pid, name: impl Into<String>) {
        self.probe(pid, ProbeKind::Marker(name.into()));
    }

    /// Records a probe event: appended to the flat trace when probe
    /// tracing is on, and attached to the innermost open span when span
    /// tracing is on. Both sinks are independent, so span trees carry the
    /// exact event stream the `PhaseTracker` folds.
    fn probe(&mut self, pid: Pid, kind: ProbeKind) {
        if !self.tracing && !self.tracer.enabled() {
            return;
        }
        let event = ProbeEvent {
            time: self.clock.now(),
            pid,
            kind,
        };
        if self.tracer.enabled() {
            self.tracer.annotate(event.clone());
        }
        if self.tracing {
            self.trace.push(event);
        }
    }

    fn probe_enter(&mut self, pid: Pid, name: &'static str) {
        self.probe(pid, ProbeKind::SyscallEnter(name));
    }

    fn probe_exit(&mut self, pid: Pid, name: &'static str) {
        self.probe(pid, ProbeKind::SyscallExit(name));
    }

    fn probe_fault(&mut self, pid: Pid, major: bool) {
        self.probe(pid, ProbeKind::PageFault { major });
    }

    fn probe_cow_break(&mut self, pid: Pid) {
        self.probe(pid, ProbeKind::CowBreak);
    }

    fn probe_extent_copy(&mut self, pid: Pid, pages: u64) {
        self.probe(pid, ProbeKind::ExtentCopy { pages });
    }

    fn probe_fault_around(&mut self, pid: Pid, pages: u64) {
        self.probe(pid, ProbeKind::FaultAround { pages });
    }

    // --------------------------------------------------------------- spans

    /// Enables or disables span recording (independent of probe tracing).
    pub fn set_span_tracing(&mut self, on: bool) {
        self.tracer.set_enabled(on);
    }

    /// Whether span recording is on.
    pub fn span_tracing(&self) -> bool {
        self.tracer.enabled()
    }

    /// Opens a named span at the current virtual time, nested under the
    /// innermost open span. Returns [`SpanId::NONE`] (ignored everywhere)
    /// while span tracing is off, so call sites bracket unconditionally.
    pub fn span_begin(&mut self, name: &'static str, pid: Pid) -> SpanId {
        let now = self.clock.now();
        self.tracer.begin(name, pid, now)
    }

    /// Closes a span at the current virtual time. Open descendants are
    /// closed at the same instant (error paths that skipped their own
    /// `span_end` stay well-formed).
    pub fn span_end(&mut self, id: SpanId) {
        let now = self.clock.now();
        self.tracer.end(id, now);
    }

    /// Attaches a key/value attribute to a recorded span.
    pub fn span_attr(&mut self, id: SpanId, key: &'static str, value: impl Into<String>) {
        self.tracer.attr(id, key, value);
    }

    /// Number of spans currently open — non-zero means an enclosing
    /// tracing session owns the tree being recorded.
    pub fn open_spans(&self) -> usize {
        self.tracer.open_spans()
    }

    /// Drains recorded spans, closing any still open at the current time.
    pub fn take_spans(&mut self) -> Vec<TraceSpan> {
        let now = self.clock.now();
        self.tracer.take(now)
    }

    // ------------------------------------------------------------ processes

    /// Immutable access to a process.
    ///
    /// # Errors
    ///
    /// [`Errno::Esrch`] if no such process.
    pub fn process(&self, pid: Pid) -> SysResult<&Process> {
        self.procs.get(&pid).ok_or(Errno::Esrch)
    }

    /// Mutable access to a process.
    ///
    /// # Errors
    ///
    /// [`Errno::Esrch`] if no such process.
    pub fn process_mut(&mut self, pid: Pid) -> SysResult<&mut Process> {
        self.procs.get_mut(&pid).ok_or(Errno::Esrch)
    }

    /// Number of live (non-zombie) processes.
    pub fn live_processes(&self) -> usize {
        self.procs.values().filter(|p| !p.is_zombie()).count()
    }

    /// All pids currently in the table.
    pub fn pids(&self) -> Vec<Pid> {
        self.procs.keys().copied().collect()
    }

    fn alloc_tid(&mut self) -> Tid {
        let t = Tid(self.next_tid);
        self.next_tid += 1;
        t
    }

    /// `clone(2)`: creates a child duplicating the parent's memory and
    /// descriptor table.
    ///
    /// # Errors
    ///
    /// [`Errno::Esrch`] if the parent does not exist.
    pub fn sys_clone(&mut self, parent: Pid) -> SysResult<Pid> {
        let span = self.span_begin("sys_clone", parent);
        self.probe_enter(parent, "clone");
        let cost = self.costs.clone_call;
        self.charge(cost);
        let parent_proc = self.procs.get(&parent).ok_or(Errno::Esrch)?.clone();
        let pid = Pid(self.next_pid);
        self.next_pid += 1;
        let tid = self.alloc_tid();
        let mut child = Process::new(pid, parent, parent_proc.comm.clone(), tid);
        child.mem = parent_proc.mem.clone();
        child.fds = parent_proc.fds.clone();
        child.caps = parent_proc.caps;
        child.cmdline = parent_proc.cmdline.clone();
        self.procs.insert(pid, child);
        // The copied address space keeps its missing marks, so the child
        // needs the backend too (UFFD_FEATURE_FORK semantics).
        if let Some(backend) = self.uffd.get(&parent).cloned() {
            self.uffd.insert(pid, backend);
        }
        self.probe_exit(parent, "clone");
        self.span_end(span);
        Ok(pid)
    }

    /// `clone` with an explicit pid (CRIU restore via `ns_last_pid`).
    ///
    /// # Errors
    ///
    /// [`Errno::Eperm`] without checkpoint/restore capability,
    /// [`Errno::Eexist`] if the pid is taken.
    pub fn sys_clone_with_pid(&mut self, parent: Pid, pid: Pid) -> SysResult<Pid> {
        let caps = self.process(parent)?.caps;
        if !caps.can_checkpoint() {
            return Err(Errno::Eperm);
        }
        if self.procs.contains_key(&pid) {
            return Err(Errno::Eexist);
        }
        let span = self.span_begin("sys_clone", parent);
        self.probe_enter(parent, "clone");
        let cost = self.costs.clone_call;
        self.charge(cost);
        let parent_proc = self.procs.get(&parent).ok_or(Errno::Esrch)?.clone();
        let tid = self.alloc_tid();
        let mut child = Process::new(pid, parent, parent_proc.comm.clone(), tid);
        child.caps = caps;
        self.next_pid = self.next_pid.max(pid.0 + 1);
        self.procs.insert(pid, child);
        self.probe_exit(parent, "clone");
        self.span_end(span);
        Ok(pid)
    }

    /// `execve(2)`: replaces the process image with `path`.
    ///
    /// Reads the binary (cold or warm), resets the address space, maps the
    /// text/data segment and a stack, and records the command line.
    ///
    /// # Errors
    ///
    /// [`Errno::Esrch`] / [`Errno::Enoent`] on missing process/binary.
    pub fn sys_execve(&mut self, pid: Pid, path: &str, argv: &[String]) -> SysResult<()> {
        let span = self.span_begin("sys_execve", pid);
        self.probe_enter(pid, "execve");
        let (data, cached) = self.fs.read_file(path)?;
        let read_cost = self.costs.fs_read(data.len() as u64, cached);
        let exec_cost = self.costs.exec_base;
        self.charge(exec_cost + read_cost);

        let comm = path.rsplit('/').next().unwrap_or(path).to_owned();
        self.uffd.remove(&pid); // exec tears down the registered regions
        let proc = self.procs.get_mut(&pid).ok_or(Errno::Esrch)?;
        proc.mem = crate::mem::AddressSpace::new();
        proc.comm = comm;
        proc.cmdline = argv.to_vec();
        // Text/data segment: file-backed, pages arrive from the page cache
        // (already charged above), so they are not materialised here.
        proc.mem.mmap(
            (data.len() as u64).max(PAGE_SIZE as u64),
            Prot::RX,
            VmaKind::Binary {
                path: path.to_owned(),
            },
        )?;
        // 8 MiB stack, demand-zero.
        proc.mem.mmap(8 << 20, Prot::RW, VmaKind::Stack)?;
        self.probe_exit(pid, "execve");
        self.span_end(span);
        Ok(())
    }

    /// Terminates a process (voluntary exit or kill).
    ///
    /// # Errors
    ///
    /// [`Errno::Esrch`] if no such process.
    pub fn sys_exit(&mut self, pid: Pid, code: i32) -> SysResult<()> {
        let cost = self.costs.exit_call;
        self.charge(cost);
        let proc = self.procs.get_mut(&pid).ok_or(Errno::Esrch)?;
        proc.state = ProcState::Zombie;
        proc.exit_code = Some(code);
        proc.mem = crate::mem::AddressSpace::new();
        proc.fds = crate::proc::FdTable::new();
        self.bound_ports.retain(|_, owner| *owner != pid);
        self.uffd.remove(&pid);
        // Dropping the address space released its shared-frame
        // references; frames no replica maps any more go with it.
        self.page_store.reclaim();
        Ok(())
    }

    /// Reaps a zombie, removing it from the table.
    ///
    /// # Errors
    ///
    /// [`Errno::Esrch`] if no such process, [`Errno::Echild`] if it has
    /// not exited.
    pub fn reap(&mut self, pid: Pid) -> SysResult<i32> {
        let proc = self.procs.get(&pid).ok_or(Errno::Esrch)?;
        let code = proc.exit_code.ok_or(Errno::Echild)?;
        self.procs.remove(&pid);
        self.uffd.remove(&pid);
        Ok(code)
    }

    /// Grants a capability to a process (platform provisioning step; the
    /// OpenFaaS integration models `--privileged` / `CAP_CHECKPOINT_RESTORE`
    /// with this).
    ///
    /// # Errors
    ///
    /// [`Errno::Esrch`] if no such process.
    pub fn grant_cap(&mut self, pid: Pid, cap: Cap) -> SysResult<()> {
        let proc = self.procs.get_mut(&pid).ok_or(Errno::Esrch)?;
        proc.caps = proc.caps.with(cap);
        Ok(())
    }

    // -------------------------------------------------------------- memory

    /// `mmap` at an allocator-chosen address.
    ///
    /// # Errors
    ///
    /// Propagates address-space errors ([`Errno::Einval`]).
    pub fn sys_mmap(
        &mut self,
        pid: Pid,
        len: u64,
        prot: Prot,
        kind: VmaKind,
    ) -> SysResult<VirtAddr> {
        let cost = self.costs.mmap_base;
        self.charge(cost);
        self.procs
            .get_mut(&pid)
            .ok_or(Errno::Esrch)?
            .mem
            .mmap(len, prot, kind)
    }

    /// `mmap` at a fixed address (restore path).
    ///
    /// # Errors
    ///
    /// Propagates address-space errors ([`Errno::Eexist`], [`Errno::Einval`]).
    pub fn sys_mmap_fixed(
        &mut self,
        pid: Pid,
        start: VirtAddr,
        len: u64,
        prot: Prot,
        kind: VmaKind,
    ) -> SysResult<VirtAddr> {
        let cost = self.costs.mmap_base;
        self.charge(cost);
        self.procs
            .get_mut(&pid)
            .ok_or(Errno::Esrch)?
            .mem
            .mmap_fixed(start, len, prot, kind)
    }

    /// `munmap` the mapping starting at `start`.
    ///
    /// # Errors
    ///
    /// [`Errno::Einval`] if no mapping starts there.
    pub fn sys_munmap(&mut self, pid: Pid, start: VirtAddr) -> SysResult<()> {
        let cost = self.costs.munmap_base;
        self.charge(cost);
        self.procs
            .get_mut(&pid)
            .ok_or(Errno::Esrch)?
            .mem
            .munmap(start)
            .map(|_| ())
    }

    /// Writes guest memory, charging fault + copy costs. Missing pages in
    /// the range are demand-paged in first (major faults).
    ///
    /// # Errors
    ///
    /// [`Errno::Efault`] / [`Errno::Eperm`] per address-space rules.
    pub fn mem_write(&mut self, pid: Pid, addr: VirtAddr, bytes: &[u8]) -> SysResult<()> {
        self.resolve_faults(pid, addr, bytes.len() as u64)?;
        let stats = self
            .procs
            .get_mut(&pid)
            .ok_or(Errno::Esrch)?
            .mem
            .write(addr, bytes)?;
        let cost = self.costs.page_touch * stats.pages_materialized
            + self.costs.page_copy * stats.pages_touched;
        self.charge(cost);
        if stats.cow_broken > 0 {
            // Write-protect faults on shared frames: the deferred
            // private copy is paid now, once per broken page.
            let break_cost = self.costs.cow_break * stats.cow_broken;
            self.charge(break_cost);
            for _ in 0..stats.cow_broken {
                self.probe_cow_break(pid);
            }
        }
        if stats.pages_materialized > 0 && self.uffd.contains_key(&pid) {
            // Demand-zero materialisation under a registered region is a
            // minor fault: counted and lightly charged, no content fetch.
            let minor_cost = self.costs.fault_minor * stats.pages_materialized;
            self.charge(minor_cost);
            self.uffd
                .get_mut(&pid)
                .expect("registration checked above")
                .note_minor(stats.pages_materialized);
            for _ in 0..stats.pages_materialized {
                self.probe_fault(pid, false);
            }
        }
        Ok(())
    }

    /// Reads guest memory, charging copy costs. Missing pages in the range
    /// are demand-paged in first (major faults).
    ///
    /// # Errors
    ///
    /// [`Errno::Efault`] per address-space rules.
    pub fn mem_read(&mut self, pid: Pid, addr: VirtAddr, len: u64) -> SysResult<Vec<u8>> {
        self.resolve_faults(pid, addr, len)?;
        let (data, stats) = self
            .procs
            .get(&pid)
            .ok_or(Errno::Esrch)?
            .mem
            .read(addr, len)?;
        let cost = self.costs.page_copy * stats.pages_touched;
        self.charge(cost);
        Ok(data)
    }

    /// Touches guest memory the way in-guest execution does: missing
    /// pages in the range are demand-paged in (major faults, with their
    /// usual charges), but no copy-out happens and nothing else is
    /// charged — present pages cost nothing to run over.
    ///
    /// # Errors
    ///
    /// [`Errno::Efault`] per address-space rules.
    pub fn mem_touch(&mut self, pid: Pid, addr: VirtAddr, len: u64) -> SysResult<()> {
        self.resolve_faults(pid, addr, len)
    }

    // --------------------------------------------------- scatter-gather ops

    /// Installs a run of contiguous pages starting at `start_index` as
    /// one vectored copy — the `preadv`/iovec analogue the extent-based
    /// restore uses. Charges one [`CostModel::extent_setup`] for the
    /// whole run and emits a single [`ProbeKind::ExtentCopy`] event. The
    /// per-page streaming share is the caller's to charge (criu's
    /// `restore_per_page` install cost): bytes move at the same rate on
    /// both gears, so pricing it here would double-charge the vectored
    /// path relative to the page-granular one.
    ///
    /// # Errors
    ///
    /// [`Errno::Esrch`] if no such process; [`Errno::Efault`] if any page
    /// of the run is outside a mapping (pages before the bad one stay
    /// installed, as a partial `pwritev` would leave them).
    pub fn copy_extent(&mut self, pid: Pid, start_index: u64, pages: &[Page]) -> SysResult<()> {
        if pages.is_empty() {
            return Ok(());
        }
        let n = pages.len() as u64;
        let cost = self.costs.extent_setup;
        self.charge(cost);
        self.probe_extent_copy(pid, n);
        let proc = self.procs.get_mut(&pid).ok_or(Errno::Esrch)?;
        for (i, page) in pages.iter().enumerate() {
            proc.mem
                .install_page(start_index + i as u64, page.clone())?;
        }
        Ok(())
    }

    /// Marks a run of contiguous pages missing in one vectored operation
    /// — the extent-granular `UFFDIO_REGISTER` analogue a lazy restore
    /// uses to withhold whole runs. Charges one
    /// [`CostModel::extent_setup`] for the run.
    ///
    /// # Errors
    ///
    /// [`Errno::Esrch`] if no such process; [`Errno::Efault`] /
    /// [`Errno::Eexist`] per [`crate::mem::AddressSpace::mark_missing`]
    /// (pages before the bad one stay marked).
    pub fn map_extent(&mut self, pid: Pid, start_index: u64, pages: u64) -> SysResult<()> {
        if pages == 0 {
            return Ok(());
        }
        let cost = self.costs.extent_setup;
        self.charge(cost);
        let proc = self.procs.get_mut(&pid).ok_or(Errno::Esrch)?;
        for idx in start_index..start_index + pages {
            proc.mem.mark_missing(idx)?;
        }
        Ok(())
    }

    // ------------------------------------------------------- demand paging

    /// Registers a demand-paging backend for `pid` — the `UFFDIO_REGISTER`
    /// analogue. Every page the backend holds is marked missing in the
    /// process's address space; the first touch of each resolves it as a
    /// *major* fault, charging [`CostModel::fault_trap`] plus a warm
    /// per-byte fetch and a page copy. The registration lives until the
    /// process exits or execs.
    ///
    /// # Errors
    ///
    /// [`Errno::Esrch`] if no such process, [`Errno::Ebusy`] if already
    /// registered, [`Errno::Efault`] if a backend page is outside any
    /// mapping, [`Errno::Eexist`] if one is already materialised.
    pub fn uffd_register(&mut self, pid: Pid, backend: UffdBackend) -> SysResult<()> {
        if self.uffd.contains_key(&pid) {
            return Err(Errno::Ebusy);
        }
        let cost = self.costs.mmap_base;
        self.charge(cost);
        let proc = self.procs.get_mut(&pid).ok_or(Errno::Esrch)?;
        // Validate before mutating so a bad backend leaves no stray marks.
        for idx in backend.page_indices() {
            let addr = VirtAddr(idx * PAGE_SIZE as u64);
            if proc.mem.find_vma(addr).is_none() {
                return Err(Errno::Efault);
            }
            if proc.mem.page(idx).is_some() {
                return Err(Errno::Eexist);
            }
        }
        for idx in backend.page_indices() {
            proc.mem.mark_missing(idx)?;
        }
        self.uffd.insert(pid, backend);
        Ok(())
    }

    /// Whether `pid` has a registered demand-paging backend.
    pub fn uffd_registered(&self, pid: Pid) -> bool {
        self.uffd.contains_key(&pid)
    }

    /// Turns working-set recording on or off for `pid`'s backend. While
    /// on, each major fault appends its page index to an ordered log.
    ///
    /// # Errors
    ///
    /// [`Errno::Esrch`] if `pid` has no registered backend.
    pub fn uffd_set_record(&mut self, pid: Pid, on: bool) -> SysResult<()> {
        self.uffd
            .get_mut(&pid)
            .ok_or(Errno::Esrch)?
            .set_recording(on);
        Ok(())
    }

    /// Sets the fault-around window for `pid`'s backend: one trapping
    /// fault services up to `window` pages (trap page plus
    /// forward-consecutive withheld neighbours) under a single service
    /// charge. `0`/`1` disable fault-around.
    ///
    /// # Errors
    ///
    /// [`Errno::Esrch`] if `pid` has no registered backend.
    pub fn uffd_set_fault_around(&mut self, pid: Pid, window: usize) -> SysResult<()> {
        self.uffd
            .get_mut(&pid)
            .ok_or(Errno::Esrch)?
            .set_fault_around(window);
        Ok(())
    }

    /// Takes the ordered major-fault log recorded for `pid` and stops
    /// recording. First-faulted page first; refaults never appear because
    /// a resolved page is no longer missing.
    ///
    /// # Errors
    ///
    /// [`Errno::Esrch`] if `pid` has no registered backend.
    pub fn uffd_take_log(&mut self, pid: Pid) -> SysResult<Vec<u64>> {
        Ok(self.uffd.get_mut(&pid).ok_or(Errno::Esrch)?.take_log())
    }

    /// `(major, minor)` fault counts for `pid`'s backend; zeros if none is
    /// registered.
    pub fn uffd_fault_counts(&self, pid: Pid) -> (u64, u64) {
        self.uffd
            .get(&pid)
            .map(|b| (b.major_faults(), b.minor_faults()))
            .unwrap_or((0, 0))
    }

    /// Faults served from the compaction fallback layer for `pid`'s
    /// backend; zero if none is registered.
    pub fn uffd_fallback_faults(&self, pid: Pid) -> u64 {
        self.uffd.get(&pid).map_or(0, |b| b.fallback_faults())
    }

    /// Bulk-installs `pages` from `pid`'s backend in one batched copy —
    /// the prefetch path. Unlike per-touch faulting there is no per-page
    /// trap: the batch charges one warm read of the combined span plus a
    /// page copy per page. Pages that are not missing (already resolved)
    /// or unknown to the backend are skipped. Returns the number of pages
    /// installed.
    ///
    /// # Errors
    ///
    /// [`Errno::Esrch`] if `pid` has no registered backend or no process.
    pub fn uffd_prefetch(&mut self, pid: Pid, pages: &[u64]) -> SysResult<u64> {
        let backend = self.uffd.get(&pid).ok_or(Errno::Esrch)?;
        let proc = self.procs.get(&pid).ok_or(Errno::Esrch)?;
        let mut seen = std::collections::BTreeSet::new();
        let mut to_install: Vec<(u64, Page)> = Vec::new();
        for &idx in pages {
            if !seen.insert(idx) || !proc.mem.is_missing(idx) {
                continue;
            }
            if let Some(p) = backend.page(idx) {
                to_install.push((idx, p.clone()));
            }
        }
        let n = to_install.len() as u64;
        if n == 0 {
            return Ok(0);
        }
        let span = self.span_begin("uffd_prefetch", pid);
        self.span_attr(span, "pages", n.to_string());
        let cost = per_byte(n * PAGE_SIZE as u64, self.costs.fs_read_warm_ns_per_byte)
            + self.costs.page_copy * n;
        self.charge(cost);
        let proc = self.procs.get_mut(&pid).expect("looked up above");
        for (idx, page) in to_install {
            proc.mem.install_page(idx, page)?;
        }
        self.span_end(span);
        Ok(n)
    }

    /// Vectored prefetch: like [`Kernel::uffd_prefetch`] but the
    /// still-missing pages are coalesced into runs of consecutive
    /// indices, each moved as one scatter-gather operation — one
    /// [`CostModel::extent_setup`] charge per run instead of a dispatch
    /// per page, plus the same streaming cost. Returns the number of
    /// pages installed.
    ///
    /// # Errors
    ///
    /// [`Errno::Esrch`] if `pid` has no registered backend or no process.
    pub fn uffd_prefetch_vectored(&mut self, pid: Pid, pages: &[u64]) -> SysResult<u64> {
        let backend = self.uffd.get(&pid).ok_or(Errno::Esrch)?;
        let proc = self.procs.get(&pid).ok_or(Errno::Esrch)?;
        let mut seen = std::collections::BTreeSet::new();
        let mut to_install: Vec<(u64, Page)> = Vec::new();
        for &idx in pages {
            if !seen.insert(idx) || !proc.mem.is_missing(idx) {
                continue;
            }
            if let Some(p) = backend.page(idx) {
                to_install.push((idx, p.clone()));
            }
        }
        let n = to_install.len() as u64;
        if n == 0 {
            return Ok(0);
        }
        // Coalesce into maximal runs of consecutive page indices. The
        // batch keeps request order for non-adjacent pages (working-set
        // order), so runs only form where indices actually neighbour.
        let mut sorted = to_install;
        sorted.sort_by_key(|&(idx, _)| idx);
        let mut runs: Vec<Vec<(u64, Page)>> = Vec::new();
        for (idx, page) in sorted {
            match runs.last_mut() {
                Some(run) if run.last().is_some_and(|&(last, _)| idx == last + 1) => {
                    run.push((idx, page));
                }
                _ => runs.push(vec![(idx, page)]),
            }
        }
        let span = self.span_begin("uffd_prefetch", pid);
        self.span_attr(span, "pages", n.to_string());
        self.span_attr(span, "runs", runs.len().to_string());
        for run in runs {
            let len = run.len() as u64;
            let cost = self.costs.extent_setup
                + per_byte(len * PAGE_SIZE as u64, self.costs.fs_read_warm_ns_per_byte)
                + self.costs.page_copy * len;
            self.charge(cost);
            self.probe_extent_copy(pid, len);
            let proc = self.procs.get_mut(&pid).ok_or(Errno::Esrch)?;
            for (idx, page) in run {
                proc.mem.install_page(idx, page)?;
            }
        }
        self.span_end(span);
        Ok(n)
    }

    /// Resolves any missing pages in `[addr, addr+len)` before a touch:
    /// each is a major fault served from the registered backend.
    fn resolve_faults(&mut self, pid: Pid, addr: VirtAddr, len: u64) -> SysResult<()> {
        if !self.uffd.contains_key(&pid) {
            return Ok(());
        }
        let missing = match self.procs.get(&pid) {
            Some(p) => p.mem.missing_in_range(addr, len),
            None => return Ok(()),
        };
        if missing.is_empty() {
            return Ok(());
        }
        let span = self.span_begin("fault_service", pid);
        self.span_attr(span, "pages", missing.len().to_string());
        for idx in missing {
            // Fault-around servicing of an earlier trap may have already
            // installed this page — it never traps then.
            let still_missing = self.procs.get(&pid).is_some_and(|p| p.mem.is_missing(idx));
            if !still_missing {
                continue;
            }
            let backend = self.uffd.get_mut(&pid).expect("registration checked above");
            // A missing page always has backend content (uffd_register
            // marks exactly the backend's pages); zero-fill is a safety
            // net should the invariant ever be violated.
            let page = backend.page(idx).cloned().unwrap_or_else(Page::zeroed);
            backend.note_major(idx);
            // One trap services up to `window` pages: the trapping page
            // plus forward-consecutive withheld neighbours, all moved
            // under the single fault's service charge (the handler
            // answering one uffd message with a multi-page copy).
            let window = backend.fault_around() as u64;
            let mut batch: Vec<(u64, Page)> = vec![(idx, page)];
            if window > 1 {
                let proc = self.procs.get(&pid).ok_or(Errno::Esrch)?;
                let backend = self.uffd.get(&pid).expect("registration checked above");
                for next in idx + 1..idx + window {
                    if !proc.mem.is_missing(next) {
                        break;
                    }
                    match backend.page(next) {
                        Some(p) => batch.push((next, p.clone())),
                        None => break,
                    }
                }
            }
            let n = batch.len() as u64;
            // Pages missing from the compacted hot image fall through to
            // the full snapshot kept behind it — each pays the extra
            // fallback penalty on top of the normal service charge.
            let backend = self.uffd.get_mut(&pid).expect("registration checked above");
            let fallback = batch
                .iter()
                .filter(|&&(page_index, _)| backend.is_fallback(page_index))
                .count() as u64;
            if fallback > 0 {
                backend.note_fallback(fallback);
            }
            let cost = self.costs.fault_trap
                + per_byte(n * PAGE_SIZE as u64, self.costs.fs_read_warm_ns_per_byte)
                + self.costs.page_copy * n
                + self.costs.fault_fallback * fallback;
            self.charge(cost);
            self.probe_fault(pid, true);
            if n > 1 {
                self.probe_fault_around(pid, n - 1);
            }
            let proc = self.procs.get_mut(&pid).ok_or(Errno::Esrch)?;
            for (page_index, page) in batch {
                proc.mem.install_page(page_index, page)?;
            }
        }
        self.span_end(span);
        Ok(())
    }

    // ------------------------------------------------- shared page frames

    /// The machine's content-addressed shared frame pool.
    pub fn page_store(&self) -> &SharedPageStore {
        &self.page_store
    }

    /// Mutable access to the shared frame pool (restore engines insert
    /// frames here; tests reclaim through it).
    pub fn page_store_mut(&mut self) -> &mut SharedPageStore {
        &mut self.page_store
    }

    /// Maps the pool frame for `hash` at `page_index` of `pid`,
    /// copy-on-write, inserting the frame from `make` on first use
    /// machine-wide. No bytes move — the restore engine prices the
    /// mapping itself; the copy is deferred to the first write
    /// ([`CostModel::cow_break`]).
    ///
    /// # Errors
    ///
    /// [`Errno::Esrch`] if no such process; [`Errno::Efault`] /
    /// [`Errno::Eexist`] per [`crate::mem::AddressSpace::map_shared`].
    pub fn cow_map(
        &mut self,
        pid: Pid,
        page_index: u64,
        hash: u64,
        make: impl FnOnce() -> Page,
    ) -> SysResult<()> {
        let frame = self.page_store.get_or_insert(hash, make);
        self.procs
            .get_mut(&pid)
            .ok_or(Errno::Esrch)?
            .mem
            .map_shared(page_index, frame)
    }

    /// Maps a run of contiguous shared frames copy-on-write in one
    /// vectored operation, starting at `start_index`: each `(hash, page)`
    /// pair is interned in the pool and its frame mapped at the next
    /// index. One [`CostModel::extent_setup`] charge and one
    /// [`ProbeKind::ExtentCopy`] event cover the whole run; like
    /// [`Kernel::cow_map`], the frame mappings themselves move no bytes.
    ///
    /// # Errors
    ///
    /// [`Errno::Esrch`] if no such process; [`Errno::Efault`] /
    /// [`Errno::Eexist`] per [`crate::mem::AddressSpace::map_shared`]
    /// (pages before the bad one stay mapped).
    pub fn cow_map_extent(
        &mut self,
        pid: Pid,
        start_index: u64,
        frames: &[(u64, Page)],
    ) -> SysResult<()> {
        if frames.is_empty() {
            return Ok(());
        }
        let cost = self.costs.extent_setup;
        self.charge(cost);
        self.probe_extent_copy(pid, frames.len() as u64);
        for (i, (hash, page)) in frames.iter().enumerate() {
            let frame = self.page_store.get_or_insert(*hash, || page.clone());
            self.procs
                .get_mut(&pid)
                .ok_or(Errno::Esrch)?
                .mem
                .map_shared(start_index + i as u64, frame)?;
        }
        Ok(())
    }

    // ------------------------------------------------------------ filesystem

    /// Creates a directory tree, charging one metadata op per call.
    ///
    /// # Errors
    ///
    /// Propagates [`SimFs::create_dir_all`] errors.
    pub fn fs_create_dir_all(&mut self, path: &str) -> SysResult<()> {
        let cost = self.costs.fs_meta;
        self.charge(cost);
        self.fs.create_dir_all(path)
    }

    /// Writes a file, charging per byte.
    ///
    /// # Errors
    ///
    /// Propagates [`SimFs::write_file`] errors.
    pub fn fs_write_file(&mut self, path: &str, data: impl Into<Bytes>) -> SysResult<()> {
        let data = data.into();
        let cost = self.costs.fs_write(data.len() as u64);
        self.charge(cost);
        self.fs.write_file(path, data)
    }

    /// Reads a whole file, charging cold or warm rates.
    ///
    /// # Errors
    ///
    /// Propagates [`SimFs::read_file`] errors.
    pub fn fs_read_file(&mut self, path: &str) -> SysResult<Bytes> {
        let (data, cached) = self.fs.read_file(path)?;
        let cost = self.costs.fs_read(data.len() as u64, cached);
        self.charge(cost);
        Ok(data)
    }

    /// Stats a path (metadata cost only).
    ///
    /// # Errors
    ///
    /// Propagates [`SimFs::stat`] errors.
    pub fn fs_stat(&mut self, path: &str) -> SysResult<Stat> {
        let cost = self.costs.fs_meta;
        self.charge(cost);
        self.fs.stat(path)
    }

    /// Lists a directory (metadata cost only).
    ///
    /// # Errors
    ///
    /// Propagates [`SimFs::list_dir`] errors.
    pub fn fs_list_dir(&mut self, path: &str) -> SysResult<Vec<String>> {
        let cost = self.costs.fs_meta;
        self.charge(cost);
        self.fs.list_dir(path)
    }

    /// Removes a file (metadata cost only).
    ///
    /// # Errors
    ///
    /// Propagates [`SimFs::remove_file`] errors.
    pub fn fs_remove_file(&mut self, path: &str) -> SysResult<()> {
        let cost = self.costs.fs_meta;
        self.charge(cost);
        self.fs.remove_file(path)
    }

    /// Returns `true` if a path exists (no charge — host-side check).
    pub fn fs_exists(&self, path: &str) -> bool {
        self.fs.exists(path)
    }

    /// Direct (uncharged) view of the filesystem for assertions and
    /// artifact installation by the test/bench harness.
    pub fn fs(&self) -> &SimFs {
        &self.fs
    }

    /// Direct (uncharged) mutable view of the filesystem.
    pub fn fs_mut(&mut self) -> &mut SimFs {
        &mut self.fs
    }

    /// Evicts the machine-wide page cache (fresh-container model).
    pub fn drop_caches(&mut self) {
        self.fs.drop_caches();
    }

    // ------------------------------------------------------- fds and sockets

    /// Opens a file descriptor on `path`.
    ///
    /// # Errors
    ///
    /// [`Errno::Enoent`] if missing, [`Errno::Eisdir`] for directories.
    pub fn sys_open(&mut self, pid: Pid, path: &str) -> SysResult<i32> {
        let cost = self.costs.fs_meta;
        self.charge(cost);
        let stat = self.fs.stat(path)?;
        if stat.is_dir {
            return Err(Errno::Eisdir);
        }
        Ok(self
            .procs
            .get_mut(&pid)
            .ok_or(Errno::Esrch)?
            .fds
            .insert(FdEntry::File {
                path: path.to_owned(),
                offset: 0,
            }))
    }

    /// Reads up to `len` bytes from an open file descriptor, advancing its
    /// offset. Charges cold/warm per byte actually read.
    ///
    /// # Errors
    ///
    /// [`Errno::Ebadf`] for non-file descriptors.
    pub fn sys_read_fd(&mut self, pid: Pid, fd: i32, len: u64) -> SysResult<Vec<u8>> {
        let (path, offset) = match self.procs.get(&pid).ok_or(Errno::Esrch)?.fds.get(fd)? {
            FdEntry::File { path, offset } => (path.clone(), *offset),
            _ => return Err(Errno::Ebadf),
        };
        let (data, cached) = self.fs.read_file(&path)?;
        let end = (offset + len).min(data.len() as u64);
        let slice = data[offset as usize..end as usize].to_vec();
        let cost = self.costs.fs_read(slice.len() as u64, cached);
        self.charge(cost);
        if let FdEntry::File { offset, .. } = self.procs.get_mut(&pid).unwrap().fds.get_mut(fd)? {
            *offset = end;
        }
        Ok(slice)
    }

    /// Closes a descriptor. Releases the port if it was a listener.
    ///
    /// # Errors
    ///
    /// [`Errno::Ebadf`] if not open.
    pub fn sys_close(&mut self, pid: Pid, fd: i32) -> SysResult<()> {
        let cost = self.costs.fs_meta;
        self.charge(cost);
        let entry = self
            .procs
            .get_mut(&pid)
            .ok_or(Errno::Esrch)?
            .fds
            .remove(fd)?;
        if let FdEntry::Listener { port } = entry {
            self.bound_ports.remove(&port);
        }
        Ok(())
    }

    /// Creates a listening socket bound to `port`.
    ///
    /// # Errors
    ///
    /// [`Errno::Eaddrinuse`] if the port is bound.
    pub fn sys_listen(&mut self, pid: Pid, port: u16) -> SysResult<i32> {
        if self.bound_ports.contains_key(&port) {
            return Err(Errno::Eaddrinuse);
        }
        let cost = self.costs.socket_listen;
        self.charge(cost);
        let fd = self
            .procs
            .get_mut(&pid)
            .ok_or(Errno::Esrch)?
            .fds
            .insert(FdEntry::Listener { port });
        self.bound_ports.insert(port, pid);
        Ok(fd)
    }

    /// Re-binds a listener at a fixed descriptor (restore path).
    ///
    /// # Errors
    ///
    /// [`Errno::Eaddrinuse`] / fd-table errors.
    pub fn sys_listen_at(&mut self, pid: Pid, fd: i32, port: u16) -> SysResult<()> {
        if self.bound_ports.contains_key(&port) {
            return Err(Errno::Eaddrinuse);
        }
        let cost = self.costs.socket_listen;
        self.charge(cost);
        self.procs
            .get_mut(&pid)
            .ok_or(Errno::Esrch)?
            .fds
            .insert_at(fd, FdEntry::Listener { port })?;
        self.bound_ports.insert(port, pid);
        Ok(())
    }

    /// The pid listening on `port`, if any.
    pub fn port_owner(&self, port: u16) -> Option<Pid> {
        self.bound_ports.get(&port).copied()
    }

    /// Models a TCP accept on a listening socket (request arrival).
    ///
    /// # Errors
    ///
    /// [`Errno::Enotconn`] if nothing listens on `port`.
    pub fn socket_accept(&mut self, port: u16) -> SysResult<Pid> {
        let owner = self.port_owner(port).ok_or(Errno::Enotconn)?;
        let cost = self.costs.socket_accept;
        self.charge(cost);
        Ok(owner)
    }

    /// Creates a pipe, returning `(read_fd, write_fd)`.
    ///
    /// # Errors
    ///
    /// [`Errno::Esrch`] if no such process.
    pub fn sys_pipe(&mut self, pid: Pid) -> SysResult<(i32, i32)> {
        let cost = self.costs.pipe_create;
        self.charge(cost);
        let pipe = self.next_pipe;
        self.next_pipe += 1;
        let proc = self.procs.get_mut(&pid).ok_or(Errno::Esrch)?;
        let r = proc.fds.insert(FdEntry::PipeRead { pipe });
        let w = proc.fds.insert(FdEntry::PipeWrite { pipe });
        Ok((r, w))
    }

    /// Charges the cost of streaming `bytes` through a pipe (the parasite
    /// → dumper page channel).
    pub fn pipe_xfer(&mut self, bytes: u64) {
        let cost = self.costs.pipe_xfer(bytes);
        self.charge(cost);
    }

    // --------------------------------------------------------------- ptrace

    fn check_ptrace_perm(&self, tracer: Pid, target: Pid) -> SysResult<()> {
        let t = self.process(tracer)?;
        let tgt = self.process(target)?;
        if t.caps.can_checkpoint() || tgt.ppid == tracer {
            Ok(())
        } else {
            Err(Errno::Eperm)
        }
    }

    /// `PTRACE_SEIZE`: attaches `tracer` to `target`.
    ///
    /// # Errors
    ///
    /// [`Errno::Eperm`] without capability (unless the target is a child),
    /// [`Errno::Ebusy`] if already traced.
    pub fn ptrace_seize(&mut self, tracer: Pid, target: Pid) -> SysResult<()> {
        self.check_ptrace_perm(tracer, target)?;
        let cost = self.costs.ptrace_attach;
        self.charge(cost);
        let tgt = self.procs.get_mut(&target).ok_or(Errno::Esrch)?;
        if tgt.traced_by.is_some() {
            return Err(Errno::Ebusy);
        }
        tgt.traced_by = Some(tracer);
        Ok(())
    }

    /// `PTRACE_INTERRUPT` on every thread: freezes the target.
    ///
    /// # Errors
    ///
    /// [`Errno::Eperm`] if `tracer` has not seized `target`.
    pub fn ptrace_freeze(&mut self, tracer: Pid, target: Pid) -> SysResult<()> {
        let tgt = self.procs.get(&target).ok_or(Errno::Esrch)?;
        if tgt.traced_by != Some(tracer) {
            return Err(Errno::Eperm);
        }
        let threads = tgt.threads.len() as u64;
        let cost = self.costs.ptrace_freeze_per_thread * threads;
        self.charge(cost);
        let tgt = self.procs.get_mut(&target).unwrap();
        for t in &mut tgt.threads {
            t.state = ThreadState::Frozen;
        }
        tgt.state = ProcState::Frozen;
        Ok(())
    }

    /// Reads one page of the (frozen) target's memory.
    ///
    /// Absent (demand-zero) pages read as zeros, matching `process_vm_readv`
    /// semantics.
    ///
    /// # Errors
    ///
    /// [`Errno::Eperm`] if not the tracer, [`Errno::Efault`] if unmapped.
    pub fn ptrace_peek_page(
        &mut self,
        tracer: Pid,
        target: Pid,
        page_index: u64,
    ) -> SysResult<Page> {
        {
            let tgt = self.procs.get(&target).ok_or(Errno::Esrch)?;
            if tgt.traced_by != Some(tracer) {
                return Err(Errno::Eperm);
            }
        }
        let addr = VirtAddr(page_index * PAGE_SIZE as u64);
        // A dump of a lazily restored task must observe backend content.
        self.resolve_faults(target, addr, PAGE_SIZE as u64)?;
        let tgt = self.procs.get(&target).expect("looked up above");
        if tgt.mem.find_vma(addr).is_none() {
            return Err(Errno::Efault);
        }
        let page = tgt
            .mem
            .page(page_index)
            .cloned()
            .unwrap_or_else(Page::zeroed);
        let cost = self.costs.ptrace_xfer_per_page;
        self.charge(cost);
        Ok(page)
    }

    /// Writes bytes into the target's memory (parasite code injection;
    /// bypasses page protections like `PTRACE_POKEDATA`).
    ///
    /// # Errors
    ///
    /// [`Errno::Eperm`] if not the tracer, [`Errno::Efault`] if unmapped.
    pub fn ptrace_poke(
        &mut self,
        tracer: Pid,
        target: Pid,
        addr: VirtAddr,
        bytes: &[u8],
    ) -> SysResult<()> {
        {
            let tgt = self.procs.get(&target).ok_or(Errno::Esrch)?;
            if tgt.traced_by != Some(tracer) {
                return Err(Errno::Eperm);
            }
        }
        let pages = bytes.len().div_ceil(PAGE_SIZE) as u64;
        let cost = self.costs.ptrace_xfer_per_page * pages.max(1);
        self.charge(cost);
        self.resolve_faults(target, addr, bytes.len() as u64)?;
        // Poke ignores write protection: temporarily raise it.
        let tgt = self.procs.get_mut(&target).unwrap();
        let vma = tgt.mem.find_vma(addr).ok_or(Errno::Efault)?.clone();
        if vma.prot.write {
            tgt.mem.write(addr, bytes)?;
        } else {
            // emulate text poking through a privileged path
            let start = vma.start;
            let len = vma.len;
            let kind = vma.kind.clone();
            tgt.mem.munmap(start)?;
            tgt.mem.mmap_fixed(start, len, Prot::RWX, kind)?;
            tgt.mem.write(addr, bytes)?;
        }
        Ok(())
    }

    /// Executes an `mmap` inside the target via the injected parasite
    /// ("remote syscall" in CRIU terminology).
    ///
    /// # Errors
    ///
    /// [`Errno::Eperm`] if not the tracer.
    pub fn remote_mmap(
        &mut self,
        tracer: Pid,
        target: Pid,
        len: u64,
        kind: VmaKind,
    ) -> SysResult<VirtAddr> {
        {
            let tgt = self.procs.get(&target).ok_or(Errno::Esrch)?;
            if tgt.traced_by != Some(tracer) {
                return Err(Errno::Eperm);
            }
        }
        let cost = self.costs.mmap_base + self.costs.ptrace_xfer_per_page;
        self.charge(cost);
        self.procs
            .get_mut(&target)
            .unwrap()
            .mem
            .mmap(len, Prot::RWX, kind)
    }

    /// Removes a parasite mapping from the target ("cure").
    ///
    /// # Errors
    ///
    /// [`Errno::Eperm`] if not the tracer, [`Errno::Einval`] if no mapping.
    pub fn remote_munmap(&mut self, tracer: Pid, target: Pid, start: VirtAddr) -> SysResult<()> {
        {
            let tgt = self.procs.get(&target).ok_or(Errno::Esrch)?;
            if tgt.traced_by != Some(tracer) {
                return Err(Errno::Eperm);
            }
        }
        let cost = self.costs.munmap_base + self.costs.ptrace_xfer_per_page;
        self.charge(cost);
        self.procs
            .get_mut(&target)
            .unwrap()
            .mem
            .munmap(start)
            .map(|_| ())
    }

    /// Resumes all frozen threads of the target.
    ///
    /// # Errors
    ///
    /// [`Errno::Eperm`] if not the tracer.
    pub fn ptrace_resume(&mut self, tracer: Pid, target: Pid) -> SysResult<()> {
        let tgt = self.procs.get(&target).ok_or(Errno::Esrch)?;
        if tgt.traced_by != Some(tracer) {
            return Err(Errno::Eperm);
        }
        let cost = self.costs.sched_resume;
        self.charge(cost);
        let tgt = self.procs.get_mut(&target).unwrap();
        for t in &mut tgt.threads {
            t.state = ThreadState::Running;
        }
        tgt.state = ProcState::Running;
        Ok(())
    }

    /// `PTRACE_DETACH`.
    ///
    /// # Errors
    ///
    /// [`Errno::Eperm`] if not the tracer.
    pub fn ptrace_detach(&mut self, tracer: Pid, target: Pid) -> SysResult<()> {
        let tgt = self.procs.get_mut(&target).ok_or(Errno::Esrch)?;
        if tgt.traced_by != Some(tracer) {
            return Err(Errno::Eperm);
        }
        tgt.traced_by = None;
        let cost = self.costs.ptrace_detach;
        self.charge(cost);
        Ok(())
    }

    // ---------------------------------------------------------------- /proc

    /// Renders `/proc/<pid>/maps`.
    ///
    /// # Errors
    ///
    /// [`Errno::Esrch`] if no such process.
    pub fn proc_maps(&mut self, pid: Pid) -> SysResult<String> {
        let cost = self.costs.procfs_read;
        self.charge(cost);
        let proc = self.procs.get(&pid).ok_or(Errno::Esrch)?;
        let mut out = String::new();
        for vma in proc.mem.vmas() {
            out.push_str(&vma.to_string());
            out.push('\n');
        }
        Ok(out)
    }

    /// Walks `/proc/<pid>/pagemap` for the mapping starting at `start`,
    /// returning indices of present (materialised) pages.
    ///
    /// # Errors
    ///
    /// [`Errno::Esrch`] / [`Errno::Einval`] on bad pid/mapping.
    pub fn proc_pagemap(&mut self, pid: Pid, start: VirtAddr) -> SysResult<Vec<u64>> {
        let proc = self.procs.get(&pid).ok_or(Errno::Esrch)?;
        let vma = proc
            .mem
            .vmas()
            .find(|v| v.start == start)
            .ok_or(Errno::Einval)?
            .clone();
        let cost = self.costs.pagemap_per_page * vma.page_count();
        self.charge(cost);
        let proc = self.procs.get(&pid).unwrap();
        Ok(proc.mem.present_pages(&vma))
    }

    /// Walks the pagemap soft-dirty bits for the mapping starting at
    /// `start`: indices of pages written since the last
    /// [`proc_clear_soft_dirty`](Kernel::proc_clear_soft_dirty).
    ///
    /// # Errors
    ///
    /// [`Errno::Esrch`] / [`Errno::Einval`] on bad pid/mapping.
    pub fn proc_pagemap_soft_dirty(&mut self, pid: Pid, start: VirtAddr) -> SysResult<Vec<u64>> {
        let proc = self.procs.get(&pid).ok_or(Errno::Esrch)?;
        let vma = proc
            .mem
            .vmas()
            .find(|v| v.start == start)
            .ok_or(Errno::Einval)?
            .clone();
        let cost = self.costs.pagemap_per_page * vma.page_count();
        self.charge(cost);
        let proc = self.procs.get(&pid).unwrap();
        Ok(proc.mem.soft_dirty_pages(&vma))
    }

    /// Clears the process's soft-dirty bits
    /// (`echo 4 > /proc/<pid>/clear_refs`).
    ///
    /// # Errors
    ///
    /// [`Errno::Esrch`] if no such process.
    pub fn proc_clear_soft_dirty(&mut self, pid: Pid) -> SysResult<()> {
        let cost = self.costs.procfs_read;
        self.charge(cost);
        self.procs
            .get_mut(&pid)
            .ok_or(Errno::Esrch)?
            .mem
            .clear_soft_dirty();
        Ok(())
    }

    /// Renders a `/proc/<pid>/status`-style summary.
    ///
    /// # Errors
    ///
    /// [`Errno::Esrch`] if no such process.
    pub fn proc_status(&mut self, pid: Pid) -> SysResult<String> {
        let cost = self.costs.procfs_read;
        self.charge(cost);
        let proc = self.procs.get(&pid).ok_or(Errno::Esrch)?;
        Ok(format!(
            "Name:\t{}\nState:\t{}\nPid:\t{}\nPPid:\t{}\nThreads:\t{}\nVmSize:\t{} kB\nVmRSS:\t{} kB\n",
            proc.comm,
            match proc.state {
                ProcState::Running => "R (running)",
                ProcState::Frozen => "t (tracing stop)",
                ProcState::Zombie => "Z (zombie)",
            },
            proc.pid,
            proc.ppid,
            proc.threads.len(),
            proc.mem.mapped_bytes() / 1024,
            proc.mem.resident_bytes() / 1024,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel_with_bin(path: &str, size: usize) -> Kernel {
        let mut k = Kernel::free(1);
        k.fs_create_dir_all("/bin").unwrap();
        k.fs_write_file(path, vec![0xAB; size]).unwrap();
        k
    }

    #[test]
    fn clone_exec_lifecycle() {
        let mut k = kernel_with_bin("/bin/app", 4096);
        let pid = k.sys_clone(INIT_PID).unwrap();
        assert_ne!(pid, INIT_PID);
        k.sys_execve(pid, "/bin/app", &["app".into(), "-x".into()])
            .unwrap();
        let p = k.process(pid).unwrap();
        assert_eq!(p.comm, "app");
        assert_eq!(p.cmdline, vec!["app", "-x"]);
        assert_eq!(p.mem.vma_count(), 2, "binary + stack");
        k.sys_exit(pid, 0).unwrap();
        assert_eq!(k.reap(pid).unwrap(), 0);
        assert!(k.process(pid).is_err());
    }

    #[test]
    fn clone_charges_calibrated_cost() {
        let mut k = Kernel::with_config(CostModel::paper_calibrated(), Noise::disabled());
        let t0 = k.now();
        k.sys_clone(INIT_PID).unwrap();
        assert_eq!((k.now() - t0).as_micros(), 400);
    }

    #[test]
    fn exec_charges_cold_then_warm() {
        let mut k = Kernel::with_config(CostModel::paper_calibrated(), Noise::disabled());
        k.fs_create_dir_all("/bin").unwrap();
        k.fs_write_file("/bin/app", vec![0u8; 1 << 20]).unwrap();
        k.drop_caches();
        let a = k.sys_clone(INIT_PID).unwrap();
        let t0 = k.now();
        k.sys_execve(a, "/bin/app", &[]).unwrap();
        let cold = k.now() - t0;
        let b = k.sys_clone(INIT_PID).unwrap();
        let t1 = k.now();
        k.sys_execve(b, "/bin/app", &[]).unwrap();
        let warm = k.now() - t1;
        assert!(
            cold.as_nanos() > 3 * warm.as_nanos(),
            "cold {cold} vs warm {warm}"
        );
    }

    #[test]
    fn clone_with_pid_needs_capability() {
        let mut k = kernel_with_bin("/bin/app", 64);
        let unpriv = k.sys_clone(INIT_PID).unwrap();
        // fresh clone of init inherits all caps; strip by creating a process
        // without them.
        k.process_mut(unpriv).unwrap().caps = CapSet::empty();
        assert_eq!(
            k.sys_clone_with_pid(unpriv, Pid(777)).unwrap_err(),
            Errno::Eperm
        );
        let restored = k.sys_clone_with_pid(INIT_PID, Pid(777)).unwrap();
        assert_eq!(restored, Pid(777));
        assert_eq!(
            k.sys_clone_with_pid(INIT_PID, Pid(777)).unwrap_err(),
            Errno::Eexist
        );
        // allocator skips past explicitly placed pids
        let next = k.sys_clone(INIT_PID).unwrap();
        assert!(next.0 > 777);
    }

    #[test]
    fn mem_write_read_through_kernel() {
        let mut k = Kernel::free(3);
        let pid = k.sys_clone(INIT_PID).unwrap();
        let addr = k
            .sys_mmap(pid, 2 * PAGE_SIZE as u64, Prot::RW, VmaKind::Anon)
            .unwrap();
        k.mem_write(pid, addr, b"hello world").unwrap();
        let back = k.mem_read(pid, addr, 11).unwrap();
        assert_eq!(&back, b"hello world");
    }

    #[test]
    fn listener_port_exclusivity() {
        let mut k = Kernel::free(4);
        let a = k.sys_clone(INIT_PID).unwrap();
        let b = k.sys_clone(INIT_PID).unwrap();
        let fd = k.sys_listen(a, 8080).unwrap();
        assert_eq!(k.sys_listen(b, 8080).unwrap_err(), Errno::Eaddrinuse);
        assert_eq!(k.port_owner(8080), Some(a));
        assert_eq!(k.socket_accept(8080).unwrap(), a);
        k.sys_close(a, fd).unwrap();
        assert_eq!(k.port_owner(8080), None);
        assert_eq!(k.socket_accept(8080).unwrap_err(), Errno::Enotconn);
        k.sys_listen(b, 8080).unwrap();
    }

    #[test]
    fn exit_releases_ports() {
        let mut k = Kernel::free(5);
        let a = k.sys_clone(INIT_PID).unwrap();
        k.sys_listen(a, 9000).unwrap();
        k.sys_exit(a, 0).unwrap();
        assert_eq!(k.port_owner(9000), None);
    }

    #[test]
    fn ptrace_requires_seize_then_freeze() {
        let mut k = Kernel::free(6);
        let tracer = k.sys_clone(INIT_PID).unwrap(); // inherits all caps
        let target = k.sys_clone(INIT_PID).unwrap();
        assert_eq!(
            k.ptrace_freeze(tracer, target).unwrap_err(),
            Errno::Eperm,
            "freeze before seize"
        );
        k.ptrace_seize(tracer, target).unwrap();
        assert_eq!(
            k.ptrace_seize(tracer, target).unwrap_err(),
            Errno::Ebusy,
            "double seize"
        );
        k.ptrace_freeze(tracer, target).unwrap();
        assert!(k.process(target).unwrap().all_frozen());
        k.ptrace_resume(tracer, target).unwrap();
        assert_eq!(k.process(target).unwrap().state, ProcState::Running);
        k.ptrace_detach(tracer, target).unwrap();
        assert!(k.process(target).unwrap().traced_by.is_none());
    }

    #[test]
    fn ptrace_denied_without_caps() {
        let mut k = Kernel::free(7);
        let tracer = k.sys_clone(INIT_PID).unwrap();
        k.process_mut(tracer).unwrap().caps = CapSet::empty();
        let target = k.sys_clone(INIT_PID).unwrap();
        assert_eq!(k.ptrace_seize(tracer, target).unwrap_err(), Errno::Eperm);
        // ...but a parent may trace its own child.
        let child = k.sys_clone(tracer).unwrap();
        k.ptrace_seize(tracer, child).unwrap();
    }

    #[test]
    fn peek_page_sees_target_memory() {
        let mut k = Kernel::free(8);
        let tracer = k.sys_clone(INIT_PID).unwrap();
        let target = k.sys_clone(INIT_PID).unwrap();
        let addr = k
            .sys_mmap(target, PAGE_SIZE as u64, Prot::RW, VmaKind::Anon)
            .unwrap();
        k.mem_write(target, addr, &[0xCD; 32]).unwrap();
        k.ptrace_seize(tracer, target).unwrap();
        k.ptrace_freeze(tracer, target).unwrap();
        let page = k
            .ptrace_peek_page(tracer, target, addr.page_index())
            .unwrap();
        assert_eq!(page.bytes()[0], 0xCD);
        assert_eq!(
            k.ptrace_peek_page(tracer, target, 0).unwrap_err(),
            Errno::Efault
        );
    }

    #[test]
    fn parasite_inject_and_cure() {
        let mut k = Kernel::free(9);
        let tracer = k.sys_clone(INIT_PID).unwrap();
        let target = k.sys_clone(INIT_PID).unwrap();
        k.ptrace_seize(tracer, target).unwrap();
        k.ptrace_freeze(tracer, target).unwrap();
        let blob = k
            .remote_mmap(tracer, target, PAGE_SIZE as u64, VmaKind::Parasite)
            .unwrap();
        k.ptrace_poke(tracer, target, blob, &[0x90; 128]).unwrap();
        assert_eq!(
            k.process(target).unwrap().mem.find_vma(blob).unwrap().kind,
            VmaKind::Parasite
        );
        k.remote_munmap(tracer, target, blob).unwrap();
        assert!(k.process(target).unwrap().mem.find_vma(blob).is_none());
    }

    #[test]
    fn proc_views_render() {
        let mut k = Kernel::free(10);
        let pid = k.sys_clone(INIT_PID).unwrap();
        let addr = k
            .sys_mmap(pid, 3 * PAGE_SIZE as u64, Prot::RW, VmaKind::RuntimeHeap)
            .unwrap();
        k.mem_write(pid, addr.add(PAGE_SIZE as u64), &[1]).unwrap();
        let maps = k.proc_maps(pid).unwrap();
        assert!(maps.contains("[runtime:heap]"), "{maps}");
        let present = k.proc_pagemap(pid, addr).unwrap();
        assert_eq!(present, vec![addr.page_index() + 1]);
        let status = k.proc_status(pid).unwrap();
        assert!(status.contains("VmRSS:\t4 kB"), "{status}");
    }

    #[test]
    fn pagemap_of_unknown_vma_is_einval() {
        let mut k = Kernel::free(11);
        let pid = k.sys_clone(INIT_PID).unwrap();
        assert_eq!(
            k.proc_pagemap(pid, VirtAddr(0xdead000)).unwrap_err(),
            Errno::Einval
        );
    }

    #[test]
    fn tracing_records_clone_exec_and_markers() {
        let mut k = kernel_with_bin("/bin/app", 128);
        k.set_tracing(true);
        let pid = k.sys_clone(INIT_PID).unwrap();
        k.sys_execve(pid, "/bin/app", &[]).unwrap();
        k.emit_marker(pid, "ready");
        let trace = k.take_trace();
        let names: Vec<String> = trace
            .iter()
            .map(|e| match &e.kind {
                ProbeKind::SyscallEnter(n) => format!("enter:{n}"),
                ProbeKind::SyscallExit(n) => format!("exit:{n}"),
                ProbeKind::Marker(m) => format!("mark:{m}"),
                ProbeKind::PageFault { major } => format!("fault:major={major}"),
                ProbeKind::CowBreak => "cow-break".to_owned(),
                ProbeKind::ExtentCopy { pages } => format!("extent:{pages}"),
                ProbeKind::FaultAround { pages } => format!("fault-around:{pages}"),
            })
            .collect();
        assert_eq!(
            names,
            vec![
                "enter:clone",
                "exit:clone",
                "enter:execve",
                "exit:execve",
                "mark:ready"
            ]
        );
        // times are monotone
        for w in trace.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
        assert!(k.take_trace().is_empty(), "trace drained");
    }

    #[test]
    fn tracing_disabled_records_nothing() {
        let mut k = kernel_with_bin("/bin/app", 128);
        let pid = k.sys_clone(INIT_PID).unwrap();
        k.sys_execve(pid, "/bin/app", &[]).unwrap();
        k.emit_marker(pid, "ready");
        assert!(k.take_trace().is_empty());
    }

    #[test]
    fn cow_map_dedups_frames_and_write_breaks_with_charge_and_probe() {
        let mut k = Kernel::with_config(CostModel::paper_calibrated(), Noise::disabled());
        let a_pid = k.sys_clone(INIT_PID).unwrap();
        let b_pid = k.sys_clone(INIT_PID).unwrap();
        let addr = k
            .sys_mmap(a_pid, 2 * PAGE_SIZE as u64, Prot::RW, VmaKind::RuntimeHeap)
            .unwrap();
        let addr_b = k
            .sys_mmap(b_pid, 2 * PAGE_SIZE as u64, Prot::RW, VmaKind::RuntimeHeap)
            .unwrap();
        assert_eq!(addr, addr_b, "fresh spaces allocate identically");

        // Two replicas map the same content hash: one frame machine-wide.
        for pid in [a_pid, b_pid] {
            k.cow_map(pid, addr.page_index(), 0xC0FFEE, || {
                Page::from_bytes(&[6u8; PAGE_SIZE])
            })
            .unwrap();
        }
        assert_eq!(k.page_store().frame_count(), 1);
        assert_eq!(k.page_store().external_refs(), 2);

        // Reads observe shared content and never break.
        assert_eq!(k.mem_read(a_pid, addr, 4).unwrap(), vec![6u8; 4]);
        assert_eq!(k.page_store().external_refs(), 2);

        // The first write pays exactly one cow_break beyond the plain
        // write cost, and emits the CowBreak probe.
        k.set_tracing(true);
        let before = k.now();
        k.mem_write(a_pid, addr, &[1u8; 8]).unwrap();
        let with_break = k.now() - before;
        let breaks: Vec<_> = k
            .take_trace()
            .into_iter()
            .filter(|e| e.kind.is_cow_break())
            .collect();
        assert_eq!(breaks.len(), 1);
        assert_eq!(breaks[0].pid, a_pid);
        k.set_tracing(false);

        let before = k.now();
        k.mem_write(a_pid, addr, &[2u8; 8]).unwrap();
        let plain = k.now() - before;
        assert_eq!(
            (with_break - plain).as_nanos(),
            k.costs().cow_break.as_nanos(),
            "break charged exactly once"
        );

        // Replica B still sees the pristine shared content.
        assert_eq!(k.mem_read(b_pid, addr, 4).unwrap(), vec![6u8; 4]);
        assert_eq!(k.page_store().external_refs(), 1);
    }

    #[test]
    fn exit_releases_shared_frames() {
        let mut k = Kernel::free(77);
        let a_pid = k.sys_clone(INIT_PID).unwrap();
        let b_pid = k.sys_clone(INIT_PID).unwrap();
        for pid in [a_pid, b_pid] {
            let addr = k
                .sys_mmap(pid, PAGE_SIZE as u64, Prot::RW, VmaKind::Anon)
                .unwrap();
            k.cow_map(pid, addr.page_index(), 9, || {
                Page::from_bytes(&[9u8; PAGE_SIZE])
            })
            .unwrap();
        }
        assert_eq!(k.page_store().external_refs(), 2);
        k.sys_exit(a_pid, 0).unwrap();
        assert_eq!(k.page_store().external_refs(), 1);
        assert_eq!(k.page_store().frame_count(), 1, "still mapped by b");
        k.sys_exit(b_pid, 0).unwrap();
        assert_eq!(k.page_store().external_refs(), 0);
        assert!(k.page_store().is_empty(), "last unmap reclaims the frame");
    }

    #[test]
    fn ptrace_peek_sees_shared_frames() {
        // A dump of a CoW-restored process must read page content through
        // the shared mapping, exactly like private pages.
        let mut k = Kernel::free(78);
        let tracer = k.sys_clone(INIT_PID).unwrap();
        k.grant_cap(tracer, Cap::CheckpointRestore).unwrap();
        let target = k.sys_clone(INIT_PID).unwrap();
        let addr = k
            .sys_mmap(target, PAGE_SIZE as u64, Prot::RW, VmaKind::Anon)
            .unwrap();
        k.cow_map(target, addr.page_index(), 5, || {
            Page::from_bytes(&[5u8; PAGE_SIZE])
        })
        .unwrap();
        k.ptrace_seize(tracer, target).unwrap();
        let page = k
            .ptrace_peek_page(tracer, target, addr.page_index())
            .unwrap();
        assert!(page.bytes().iter().all(|&b| b == 5));
    }

    #[test]
    fn read_fd_advances_offset() {
        let mut k = Kernel::free(12);
        k.fs_write_file("/data", (0u8..100).collect::<Vec<u8>>())
            .unwrap();
        let pid = k.sys_clone(INIT_PID).unwrap();
        let fd = k.sys_open(pid, "/data").unwrap();
        let first = k.sys_read_fd(pid, fd, 10).unwrap();
        assert_eq!(first, (0u8..10).collect::<Vec<u8>>());
        let second = k.sys_read_fd(pid, fd, 10).unwrap();
        assert_eq!(second, (10u8..20).collect::<Vec<u8>>());
        let rest = k.sys_read_fd(pid, fd, 1000).unwrap();
        assert_eq!(rest.len(), 80);
        let eof = k.sys_read_fd(pid, fd, 10).unwrap();
        assert!(eof.is_empty());
    }

    #[test]
    fn pipe_fds_are_paired() {
        let mut k = Kernel::free(13);
        let pid = k.sys_clone(INIT_PID).unwrap();
        let (r, w) = k.sys_pipe(pid).unwrap();
        let proc = k.process(pid).unwrap();
        match (proc.fds.get(r).unwrap(), proc.fds.get(w).unwrap()) {
            (FdEntry::PipeRead { pipe: a }, FdEntry::PipeWrite { pipe: b }) => {
                assert_eq!(a, b)
            }
            other => panic!("unexpected fd entries: {other:?}"),
        }
    }

    #[test]
    fn uncharged_preserves_state_but_not_time() {
        let mut k = Kernel::with_config(CostModel::paper_calibrated(), Noise::disabled());
        let before = k.now();
        let pid = k
            .uncharged(|k| {
                k.fs_create_dir_all("/setup")?;
                k.fs_write_file("/setup/data", vec![1u8; 1 << 20])?;
                k.sys_clone(INIT_PID)
            })
            .unwrap();
        assert_eq!(k.now(), before, "clock rolled back");
        assert!(k.fs_exists("/setup/data"), "state persists");
        assert!(k.process(pid).is_ok(), "process persists");
    }

    #[test]
    fn uncharged_restores_clock_on_error() {
        let mut k = Kernel::with_config(CostModel::paper_calibrated(), Noise::disabled());
        let before = k.now();
        let err = k
            .uncharged(|k| {
                k.fs_write_file("/made/it/partway", vec![0u8; 1024])?;
                Ok(())
            })
            .unwrap_err();
        assert_eq!(err, Errno::Enoent);
        assert_eq!(k.now(), before);
    }

    #[test]
    fn soft_dirty_kernel_interface() {
        let mut k = Kernel::free(21);
        let pid = k.sys_clone(INIT_PID).unwrap();
        let addr = k
            .sys_mmap(pid, 4 * PAGE_SIZE as u64, Prot::RW, VmaKind::Anon)
            .unwrap();
        k.mem_write(pid, addr, &[1u8]).unwrap();
        k.mem_write(pid, addr.add(2 * PAGE_SIZE as u64), &[2u8])
            .unwrap();
        assert_eq!(k.proc_pagemap_soft_dirty(pid, addr).unwrap().len(), 2);
        k.proc_clear_soft_dirty(pid).unwrap();
        assert!(k.proc_pagemap_soft_dirty(pid, addr).unwrap().is_empty());
        k.mem_write(pid, addr, &[3u8]).unwrap();
        assert_eq!(
            k.proc_pagemap_soft_dirty(pid, addr).unwrap(),
            vec![addr.page_index()]
        );
        // present view unaffected by clears
        assert_eq!(k.proc_pagemap(pid, addr).unwrap().len(), 2);
    }

    fn lazy_proc(k: &mut Kernel, pages: u64) -> (Pid, VirtAddr, UffdBackend) {
        let pid = k.sys_clone(INIT_PID).unwrap();
        let addr = k
            .sys_mmap(pid, pages * PAGE_SIZE as u64, Prot::RW, VmaKind::Anon)
            .unwrap();
        let mut backend = UffdBackend::new();
        for i in 0..pages {
            backend.insert_page(
                addr.page_index() + i,
                Page::from_bytes(&[i as u8 + 1; PAGE_SIZE]),
            );
        }
        (pid, addr, backend)
    }

    #[test]
    fn major_fault_serves_backend_content() {
        let mut k = Kernel::free(30);
        let (pid, addr, backend) = lazy_proc(&mut k, 4);
        k.uffd_register(pid, backend).unwrap();
        assert!(k.uffd_registered(pid));
        assert_eq!(k.process(pid).unwrap().mem.missing_pages(), 4);
        assert_eq!(k.process(pid).unwrap().mem.resident_pages(), 0);

        // First touch demand-pages the content in.
        let got = k.mem_read(pid, addr.add(2 * PAGE_SIZE as u64), 8).unwrap();
        assert_eq!(got, vec![3u8; 8]);
        assert_eq!(k.uffd_fault_counts(pid), (1, 0));
        assert_eq!(k.process(pid).unwrap().mem.missing_pages(), 3);

        // Refault of the same page: already resolved, no new fault.
        k.mem_read(pid, addr.add(2 * PAGE_SIZE as u64), 8).unwrap();
        assert_eq!(k.uffd_fault_counts(pid), (1, 0));

        // A write faults the old content in before applying the store.
        k.mem_write(pid, addr, &[0xEE; 4]).unwrap();
        let page0 = k.mem_read(pid, addr, PAGE_SIZE as u64).unwrap();
        assert_eq!(&page0[..4], &[0xEE; 4]);
        assert_eq!(&page0[4..8], &[1u8; 4], "rest of the faulted page kept");
        assert_eq!(k.uffd_fault_counts(pid), (2, 0));
    }

    #[test]
    fn minor_faults_counted_while_registered() {
        let mut k = Kernel::free(31);
        let (pid, addr, _) = lazy_proc(&mut k, 2);
        // Register a backend for page 0 only; page 1 stays demand-zero.
        let mut backend = UffdBackend::new();
        backend.insert_page(addr.page_index(), Page::from_bytes(&[7u8; PAGE_SIZE]));
        k.uffd_register(pid, backend).unwrap();
        k.set_tracing(true);
        k.mem_write(pid, addr.add(PAGE_SIZE as u64), &[1u8])
            .unwrap();
        assert_eq!(k.uffd_fault_counts(pid), (0, 1));
        let trace = k.take_trace();
        let faults: Vec<bool> = trace
            .iter()
            .filter_map(|e| e.kind.as_page_fault())
            .collect();
        assert_eq!(faults, vec![false]);
    }

    #[test]
    fn record_logs_fault_order() {
        let mut k = Kernel::free(32);
        let (pid, addr, backend) = lazy_proc(&mut k, 5);
        k.uffd_register(pid, backend).unwrap();
        k.uffd_set_record(pid, true).unwrap();
        let base = addr.page_index();
        // Touch pages out of address order; log must keep touch order.
        for i in [3u64, 0, 4, 0, 2] {
            k.mem_read(pid, addr.add(i * PAGE_SIZE as u64), 1).unwrap();
        }
        let log = k.uffd_take_log(pid).unwrap();
        assert_eq!(log, vec![base + 3, base, base + 4, base + 2]);
        // Recording stopped: later faults are counted but not logged.
        k.mem_read(pid, addr.add(PAGE_SIZE as u64), 1).unwrap();
        assert!(k.uffd_take_log(pid).unwrap().is_empty());
        assert_eq!(k.uffd_fault_counts(pid).0, 5);
    }

    #[test]
    fn prefetch_batches_cheaper_than_faulting() {
        let n_pages = 64u64;
        let run = |prefetch: bool| -> (SimDuration, u64) {
            let mut k = Kernel::with_config(CostModel::paper_calibrated(), Noise::disabled());
            let (pid, addr, backend) = lazy_proc(&mut k, n_pages);
            let indices = backend.page_indices();
            k.uffd_register(pid, backend).unwrap();
            let t0 = k.now();
            if prefetch {
                assert_eq!(k.uffd_prefetch(pid, &indices).unwrap(), n_pages);
            }
            // Touch every page either way.
            k.mem_read(pid, addr, n_pages * PAGE_SIZE as u64).unwrap();
            (k.now() - t0, k.uffd_fault_counts(pid).0)
        };
        let (fault_time, fault_majors) = run(false);
        let (prefetch_time, prefetch_majors) = run(true);
        assert_eq!(fault_majors, n_pages);
        assert_eq!(prefetch_majors, 0, "prefetched pages never fault");
        assert!(
            prefetch_time < fault_time,
            "batched prefetch {prefetch_time} must beat per-fault traps {fault_time}"
        );
    }

    #[test]
    fn prefetch_skips_resolved_and_unknown_pages() {
        let mut k = Kernel::free(33);
        let (pid, addr, backend) = lazy_proc(&mut k, 3);
        let base = addr.page_index();
        k.uffd_register(pid, backend).unwrap();
        k.mem_read(pid, addr, 1).unwrap(); // resolves page 0 by faulting
        let n = k
            .uffd_prefetch(pid, &[base, base + 1, base + 1, base + 99])
            .unwrap();
        assert_eq!(n, 1, "only the still-missing known page installs");
        assert_eq!(k.process(pid).unwrap().mem.missing_pages(), 1);
    }

    #[test]
    fn fault_around_services_neighbours_in_one_trap() {
        let mut k = Kernel::free(38);
        let (pid, addr, backend) = lazy_proc(&mut k, 8);
        k.uffd_register(pid, backend).unwrap();
        k.uffd_set_fault_around(pid, 4).unwrap();
        k.set_tracing(true);

        // One touch traps once but installs the whole window.
        let got = k.mem_read(pid, addr, 8).unwrap();
        assert_eq!(got, vec![1u8; 8]);
        assert_eq!(k.uffd_fault_counts(pid), (1, 0), "one trap for the window");
        assert_eq!(k.process(pid).unwrap().mem.missing_pages(), 4);
        // The neighbours carry their backend content, not zeroes.
        let got = k.mem_read(pid, addr.add(3 * PAGE_SIZE as u64), 4).unwrap();
        assert_eq!(got, vec![4u8; 4], "fault-around installed real content");
        assert_eq!(k.uffd_fault_counts(pid), (1, 0), "no refault in the window");

        let counters = crate::probe::ProbeCounters::from_events(&k.take_trace());
        assert_eq!(counters.major_faults, 1);
        assert_eq!(counters.faults_avoided, 3, "window 4 = trap + 3 neighbours");
    }

    #[test]
    fn fault_around_window_stops_at_backend_gaps() {
        let mut k = Kernel::free(39);
        let pid = k.sys_clone(INIT_PID).unwrap();
        let addr = k
            .sys_mmap(pid, 6 * PAGE_SIZE as u64, Prot::RW, VmaKind::Anon)
            .unwrap();
        let base = addr.page_index();
        // Backend covers pages 0,1 and 3 — page 2 is demand-zero.
        let mut backend = UffdBackend::new();
        for i in [0u64, 1, 3] {
            backend.insert_page(base + i, Page::from_bytes(&[i as u8 + 1; PAGE_SIZE]));
        }
        k.uffd_register(pid, backend).unwrap();
        k.uffd_set_fault_around(pid, 16).unwrap();
        k.mem_read(pid, addr, 1).unwrap();
        // The run stops at the gap: pages 0 and 1 installed, 3 still missing.
        assert_eq!(k.uffd_fault_counts(pid).0, 1);
        assert_eq!(k.process(pid).unwrap().mem.missing_pages(), 1);
        assert!(k.process(pid).unwrap().mem.is_missing(base + 3));
    }

    #[test]
    fn fault_around_cuts_majors_and_wall_time_on_sequential_touch() {
        let n_pages = 64u64;
        let run = |window: usize| -> (SimDuration, u64) {
            let mut k = Kernel::with_config(CostModel::paper_calibrated(), Noise::disabled());
            let (pid, addr, backend) = lazy_proc(&mut k, n_pages);
            k.uffd_register(pid, backend).unwrap();
            k.uffd_set_fault_around(pid, window).unwrap();
            let t0 = k.now();
            k.mem_read(pid, addr, n_pages * PAGE_SIZE as u64).unwrap();
            (k.now() - t0, k.uffd_fault_counts(pid).0)
        };
        let (single_time, single_majors) = run(1);
        let (batched_time, batched_majors) = run(16);
        assert_eq!(single_majors, n_pages);
        assert_eq!(batched_majors, n_pages / 16, "one trap per window");
        assert!(
            batched_time < single_time,
            "fault-around {batched_time} must beat per-page traps {single_time}"
        );
    }

    #[test]
    fn copy_extent_installs_a_run_under_one_setup_charge() {
        let mut k = Kernel::with_config(CostModel::paper_calibrated(), Noise::disabled());
        let pid = k.sys_clone(INIT_PID).unwrap();
        let addr = k
            .sys_mmap(pid, 16 * PAGE_SIZE as u64, Prot::RW, VmaKind::Anon)
            .unwrap();
        let pages: Vec<Page> = (0..16)
            .map(|i| Page::from_bytes(&[i as u8 + 1; PAGE_SIZE]))
            .collect();
        k.set_tracing(true);
        let t0 = k.now();
        k.copy_extent(pid, addr.page_index(), &pages).unwrap();
        let charged = k.now() - t0;
        let costs = CostModel::paper_calibrated();
        assert_eq!(
            charged, costs.extent_setup,
            "run length does not scale the charge"
        );
        assert_eq!(k.process(pid).unwrap().mem.resident_pages(), 16);
        let got = k.mem_read(pid, addr.add(5 * PAGE_SIZE as u64), 4).unwrap();
        assert_eq!(got, vec![6u8; 4]);
        let counters = crate::probe::ProbeCounters::from_events(&k.take_trace());
        assert_eq!(counters.extents_restored, 1, "one run, one probe");

        // Empty runs are free no-ops.
        let t1 = k.now();
        k.copy_extent(pid, addr.page_index(), &[]).unwrap();
        assert_eq!(k.now(), t1);
    }

    #[test]
    fn copy_extent_faults_past_the_mapping_after_partial_install() {
        let mut k = Kernel::free(40);
        let pid = k.sys_clone(INIT_PID).unwrap();
        let addr = k
            .sys_mmap(pid, 2 * PAGE_SIZE as u64, Prot::RW, VmaKind::Anon)
            .unwrap();
        let pages = vec![Page::zeroed(); 4];
        let err = k.copy_extent(pid, addr.page_index(), &pages).unwrap_err();
        assert_eq!(err, Errno::Efault);
        assert_eq!(
            k.process(pid).unwrap().mem.resident_pages(),
            2,
            "pages before the fault stay installed, like a partial pwritev"
        );
    }

    #[test]
    fn map_extent_marks_a_run_missing() {
        let mut k = Kernel::free(41);
        let pid = k.sys_clone(INIT_PID).unwrap();
        let addr = k
            .sys_mmap(pid, 8 * PAGE_SIZE as u64, Prot::RW, VmaKind::Anon)
            .unwrap();
        k.map_extent(pid, addr.page_index(), 8).unwrap();
        assert_eq!(k.process(pid).unwrap().mem.missing_pages(), 8);
        k.map_extent(pid, addr.page_index(), 0).unwrap();
        assert_eq!(
            k.map_extent(pid, addr.page_index() + 8, 1).unwrap_err(),
            Errno::Efault
        );
    }

    #[test]
    fn cow_map_extent_interns_and_maps_a_run() {
        let mut k = Kernel::free(42);
        let make_proc = |k: &mut Kernel| {
            let pid = k.sys_clone(INIT_PID).unwrap();
            let addr = k
                .sys_mmap(pid, 4 * PAGE_SIZE as u64, Prot::RW, VmaKind::Anon)
                .unwrap();
            (pid, addr)
        };
        let frames: Vec<(u64, Page)> = (0..4u64)
            .map(|i| (1000 + i, Page::from_bytes(&[i as u8 + 9; PAGE_SIZE])))
            .collect();
        let (pid1, addr1) = make_proc(&mut k);
        let (pid2, addr2) = make_proc(&mut k);
        k.set_tracing(true);
        k.cow_map_extent(pid1, addr1.page_index(), &frames).unwrap();
        k.cow_map_extent(pid2, addr2.page_index(), &frames).unwrap();
        assert_eq!(
            k.page_store().frame_count(),
            4,
            "second mapping reuses the interned frames"
        );
        let got = k.mem_read(pid2, addr2.add(PAGE_SIZE as u64), 2).unwrap();
        assert_eq!(got, vec![10u8; 2]);
        let counters = crate::probe::ProbeCounters::from_events(&k.take_trace());
        assert_eq!(
            counters.extents_restored, 2,
            "one probe per run per process"
        );
    }

    #[test]
    fn vectored_prefetch_coalesces_runs_and_matches_state() {
        let mut k = Kernel::free(43);
        let pid = k.sys_clone(INIT_PID).unwrap();
        let addr = k
            .sys_mmap(pid, 8 * PAGE_SIZE as u64, Prot::RW, VmaKind::Anon)
            .unwrap();
        let base = addr.page_index();
        let mut backend = UffdBackend::new();
        for i in [0u64, 1, 2, 5, 6] {
            backend.insert_page(base + i, Page::from_bytes(&[i as u8 + 1; PAGE_SIZE]));
        }
        k.uffd_register(pid, backend).unwrap();
        k.set_tracing(true);
        let n = k
            .uffd_prefetch_vectored(pid, &[base + 5, base, base + 1, base + 2, base + 6, base])
            .unwrap();
        assert_eq!(n, 5, "all missing known pages install, dupes skipped");
        assert_eq!(k.process(pid).unwrap().mem.missing_pages(), 0);
        assert_eq!(k.uffd_fault_counts(pid), (0, 0), "prefetch never faults");
        let counters = crate::probe::ProbeCounters::from_events(&k.take_trace());
        assert_eq!(counters.extents_restored, 2, "runs [0..3] and [5..7]");
        // Content is the backend's, not zeroes.
        let got = k.mem_read(pid, addr.add(6 * PAGE_SIZE as u64), 3).unwrap();
        assert_eq!(got, vec![7u8; 3]);
        // Nothing left to prefetch.
        assert_eq!(k.uffd_prefetch_vectored(pid, &[base]).unwrap(), 0);
    }

    #[test]
    fn uffd_register_validates_and_is_exclusive() {
        let mut k = Kernel::free(34);
        let (pid, addr, backend) = lazy_proc(&mut k, 2);
        // Backend page outside any mapping is rejected without side effects.
        let mut bad = UffdBackend::new();
        bad.insert_page(9999999, Page::zeroed());
        assert_eq!(k.uffd_register(pid, bad).unwrap_err(), Errno::Efault);
        assert_eq!(k.process(pid).unwrap().mem.missing_pages(), 0);
        // Already-materialised page is rejected.
        k.mem_write(pid, addr, &[1]).unwrap();
        let mut dup = UffdBackend::new();
        dup.insert_page(addr.page_index(), Page::zeroed());
        assert_eq!(k.uffd_register(pid, dup).unwrap_err(), Errno::Eexist);
        // Valid registration, then a second one is busy.
        let mut ok = UffdBackend::new();
        ok.insert_page(addr.page_index() + 1, Page::zeroed());
        k.uffd_register(pid, ok).unwrap();
        assert_eq!(k.uffd_register(pid, backend).unwrap_err(), Errno::Ebusy);
        // Exit clears the registration.
        k.sys_exit(pid, 0).unwrap();
        assert!(!k.uffd_registered(pid));
        assert_eq!(k.uffd_take_log(pid).unwrap_err(), Errno::Esrch);
    }

    #[test]
    fn ptrace_peek_resolves_missing_pages() {
        let mut k = Kernel::free(35);
        let tracer = k.sys_clone(INIT_PID).unwrap();
        let (pid, addr, backend) = lazy_proc(&mut k, 2);
        k.uffd_register(pid, backend).unwrap();
        k.ptrace_seize(tracer, pid).unwrap();
        k.ptrace_freeze(tracer, pid).unwrap();
        let page = k.ptrace_peek_page(tracer, pid, addr.page_index()).unwrap();
        assert_eq!(page.bytes()[0], 1, "dump sees withheld content");
        assert_eq!(k.uffd_fault_counts(pid), (1, 0));
    }

    #[test]
    fn fault_charges_are_deterministic_per_seed() {
        let run = |seed: u64| -> (u64, (u64, u64)) {
            let mut k = Kernel::new(seed);
            let (pid, addr, backend) = lazy_proc(&mut k, 8);
            k.uffd_register(pid, backend).unwrap();
            k.mem_read(pid, addr, 8 * PAGE_SIZE as u64).unwrap();
            (k.now().as_nanos(), k.uffd_fault_counts(pid))
        };
        assert_eq!(run(42), run(42), "same seed, same clock and counts");
        let (t_a, counts_a) = run(42);
        let (t_b, counts_b) = run(43);
        assert_eq!(counts_a, counts_b);
        assert_ne!(t_a, t_b, "different seed perturbs the jitter");
    }

    #[test]
    fn live_process_count() {
        let mut k = Kernel::free(14);
        assert_eq!(k.live_processes(), 1); // init
        let a = k.sys_clone(INIT_PID).unwrap();
        let _b = k.sys_clone(INIT_PID).unwrap();
        assert_eq!(k.live_processes(), 3);
        k.sys_exit(a, 0).unwrap();
        assert_eq!(k.live_processes(), 2);
    }
}
