//! # prebake-sim
//!
//! A deterministic, in-memory operating-system substrate for reproducing
//! *"Prebaking Functions to Warm the Serverless Cold Start"*
//! (Middleware '20).
//!
//! The paper's prebaking technique is defined in terms of Linux kernel
//! facilities — `clone`/`execve`, virtual memory areas,
//! `/proc/<pid>/pagemap`, ptrace parasite injection, pipes, the page
//! cache and the `CAP_CHECKPOINT_RESTORE` capability. This crate models
//! exactly those facilities over **real state** (byte-level pages, a real
//! filesystem tree, real descriptor tables) while charging **virtual
//! time** from a cost table calibrated to the paper's measurements, so
//! 200-repetition experiments run deterministically in milliseconds of
//! host time.
//!
//! ## Layout
//!
//! - [`time`] — virtual instants, durations and the per-machine clock
//! - [`noise`] — seeded log-normal measurement jitter
//! - [`cost`] — the calibrated OS cost table
//! - [`mem`] — pages, VMAs and address spaces
//! - [`fs`] — an in-memory filesystem with a page-cache model
//! - [`proc`] — processes, threads, descriptors, capabilities
//! - [`kernel`] — the machine: syscall surface, ptrace, `/proc`, probes
//! - [`event`] — a discrete-event queue for the platform layer
//! - [`probe`] — syscall/marker trace events (the `bpftrace` analogue)
//! - [`uffd`] — demand-paging fault backends (the `userfaultfd` analogue)
//! - [`pagestore`] — the content-addressed shared frame pool behind
//!   copy-on-write restore
//! - [`trace`] — nested span recording + Chrome-trace/critical-path exporters
//! - [`error`] — POSIX-style error numbers
//!
//! ## Example
//!
//! ```
//! use prebake_sim::kernel::{Kernel, INIT_PID};
//! use prebake_sim::mem::{Prot, VmaKind};
//!
//! let mut k = Kernel::new(7);
//! k.fs_create_dir_all("/app").unwrap();
//! k.fs_write_file("/app/bin", vec![0u8; 4096]).unwrap();
//!
//! let pid = k.sys_clone(INIT_PID).unwrap();
//! k.sys_execve(pid, "/app/bin", &["bin".into()]).unwrap();
//! let heap = k.sys_mmap(pid, 1 << 20, Prot::RW, VmaKind::RuntimeHeap).unwrap();
//! k.mem_write(pid, heap, b"state the snapshot will capture").unwrap();
//!
//! assert_eq!(k.mem_read(pid, heap, 5).unwrap(), b"state");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cost;
pub mod error;
pub mod event;
pub mod fs;
pub mod kernel;
pub mod mem;
pub mod noise;
pub mod pagestore;
pub mod probe;
pub mod proc;
pub mod time;
pub mod trace;
pub mod uffd;

pub use error::{Errno, SysResult};
pub use kernel::{Kernel, INIT_PID};
pub use proc::Pid;
pub use time::{SimDuration, SimInstant};
pub use trace::{SpanId, TraceSpan, TraceSummary, Tracer};
