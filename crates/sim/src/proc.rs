//! Processes, threads, file descriptors and capabilities.

use std::collections::BTreeMap;
use std::fmt;

use crate::error::{Errno, SysResult};
use crate::mem::AddressSpace;

/// A process identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pid(pub u32);

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A thread identifier (unique machine-wide, like Linux TIDs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tid(pub u32);

impl fmt::Display for Tid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Linux-style capabilities relevant to checkpoint/restore.
///
/// The paper highlights the (then-new) `CAP_CHECKPOINT_RESTORE` capability
/// that lets CRIU run unprivileged; the kernel checks it on ptrace and
/// clone-with-pid operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cap {
    /// `CAP_SYS_ADMIN` — the classic blanket requirement.
    SysAdmin,
    /// `CAP_SYS_PTRACE` — attach/peek/poke arbitrary tasks.
    SysPtrace,
    /// `CAP_CHECKPOINT_RESTORE` — Linux ≥5.9 scoped capability.
    CheckpointRestore,
}

impl Cap {
    const fn bit(self) -> u8 {
        match self {
            Cap::SysAdmin => 1 << 0,
            Cap::SysPtrace => 1 << 1,
            Cap::CheckpointRestore => 1 << 2,
        }
    }
}

/// A set of [`Cap`]s.
///
/// # Examples
///
/// ```
/// use prebake_sim::proc::{Cap, CapSet};
///
/// let caps = CapSet::empty().with(Cap::CheckpointRestore);
/// assert!(caps.has(Cap::CheckpointRestore));
/// assert!(!caps.has(Cap::SysAdmin));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct CapSet(u8);

impl CapSet {
    /// No capabilities.
    pub const fn empty() -> Self {
        CapSet(0)
    }

    /// All modelled capabilities (a root-ish task).
    pub const fn all() -> Self {
        CapSet(Cap::SysAdmin.bit() | Cap::SysPtrace.bit() | Cap::CheckpointRestore.bit())
    }

    /// Returns a copy with `cap` added.
    pub const fn with(self, cap: Cap) -> Self {
        CapSet(self.0 | cap.bit())
    }

    /// Returns `true` if `cap` is present.
    pub const fn has(self, cap: Cap) -> bool {
        self.0 & cap.bit() != 0
    }

    /// Returns `true` if the set permits checkpoint/restore operations:
    /// either the scoped capability or one of the blanket ones.
    pub const fn can_checkpoint(self) -> bool {
        self.has(Cap::CheckpointRestore) || self.has(Cap::SysAdmin) || self.has(Cap::SysPtrace)
    }
}

/// Scheduling state of a thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ThreadState {
    /// Runnable / running.
    Running,
    /// Stopped by the tracer (`PTRACE_INTERRUPT`).
    Frozen,
}

/// Register file captured per thread. The checkpoint `core` image stores
/// these and the restorer re-installs them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Regs {
    /// Instruction pointer.
    pub ip: u64,
    /// Stack pointer.
    pub sp: u64,
}

/// A thread of a simulated process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Thread {
    /// Thread id.
    pub tid: Tid,
    /// Scheduling state.
    pub state: ThreadState,
    /// Captured registers.
    pub regs: Regs,
}

/// What a file descriptor refers to. The checkpoint `files` image
/// serialises this table; restore re-opens each entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FdEntry {
    /// A regular file opened at `offset`.
    File {
        /// Guest path.
        path: String,
        /// Current file offset.
        offset: u64,
    },
    /// The read end of a pipe.
    PipeRead {
        /// Pipe id shared by both ends.
        pipe: u64,
    },
    /// The write end of a pipe.
    PipeWrite {
        /// Pipe id shared by both ends.
        pipe: u64,
    },
    /// A listening TCP socket (the function's HTTP server).
    Listener {
        /// Bound port.
        port: u16,
    },
}

/// A process's file-descriptor table.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FdTable {
    entries: BTreeMap<i32, FdEntry>,
    next_fd: i32,
}

impl FdTable {
    /// An empty table; descriptors start at 3 (0-2 reserved for stdio).
    pub fn new() -> Self {
        FdTable {
            entries: BTreeMap::new(),
            next_fd: 3,
        }
    }

    /// Installs an entry at the next free descriptor.
    pub fn insert(&mut self, entry: FdEntry) -> i32 {
        let fd = self.next_fd;
        self.next_fd += 1;
        self.entries.insert(fd, entry);
        fd
    }

    /// Installs an entry at a specific descriptor (restore path).
    ///
    /// # Errors
    ///
    /// [`Errno::Eexist`] if the descriptor is occupied, [`Errno::Ebadf`]
    /// for reserved descriptors (< 3).
    pub fn insert_at(&mut self, fd: i32, entry: FdEntry) -> SysResult<()> {
        if fd < 3 {
            return Err(Errno::Ebadf);
        }
        if self.entries.contains_key(&fd) {
            return Err(Errno::Eexist);
        }
        self.next_fd = self.next_fd.max(fd + 1);
        self.entries.insert(fd, entry);
        Ok(())
    }

    /// Looks up a descriptor.
    pub fn get(&self, fd: i32) -> SysResult<&FdEntry> {
        self.entries.get(&fd).ok_or(Errno::Ebadf)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, fd: i32) -> SysResult<&mut FdEntry> {
        self.entries.get_mut(&fd).ok_or(Errno::Ebadf)
    }

    /// Removes a descriptor, returning its entry.
    pub fn remove(&mut self, fd: i32) -> SysResult<FdEntry> {
        self.entries.remove(&fd).ok_or(Errno::Ebadf)
    }

    /// Iterates `(fd, entry)` pairs in descriptor order.
    pub fn iter(&self) -> impl Iterator<Item = (i32, &FdEntry)> {
        self.entries.iter().map(|(fd, e)| (*fd, e))
    }

    /// Number of open descriptors.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no descriptors are open.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Lifecycle state of a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProcState {
    /// At least one runnable thread.
    Running,
    /// All threads frozen by a tracer.
    Frozen,
    /// Exited, not yet reaped.
    Zombie,
}

/// A simulated process.
///
/// Fields are public within the crate; external consumers go through
/// [`Kernel`](crate::kernel::Kernel) accessors.
#[derive(Debug, Clone)]
pub struct Process {
    /// Process id.
    pub pid: Pid,
    /// Parent process id.
    pub ppid: Pid,
    /// Command name (`/proc/<pid>/comm`).
    pub comm: String,
    /// Command line.
    pub cmdline: Vec<String>,
    /// Lifecycle state.
    pub state: ProcState,
    /// Virtual memory.
    pub mem: AddressSpace,
    /// Open file descriptors.
    pub fds: FdTable,
    /// Threads (at least one while running).
    pub threads: Vec<Thread>,
    /// Capabilities.
    pub caps: CapSet,
    /// Exit code once exited.
    pub exit_code: Option<i32>,
    /// Pid of the tracer, if seized.
    pub traced_by: Option<Pid>,
}

impl Process {
    /// Creates a fresh single-threaded process shell.
    pub fn new(pid: Pid, ppid: Pid, comm: impl Into<String>, main_tid: Tid) -> Self {
        Process {
            pid,
            ppid,
            comm: comm.into(),
            cmdline: Vec::new(),
            state: ProcState::Running,
            mem: AddressSpace::new(),
            fds: FdTable::new(),
            threads: vec![Thread {
                tid: main_tid,
                state: ThreadState::Running,
                regs: Regs::default(),
            }],
            caps: CapSet::empty(),
            exit_code: None,
            traced_by: None,
        }
    }

    /// Returns `true` if every thread is frozen.
    pub fn all_frozen(&self) -> bool {
        self.threads.iter().all(|t| t.state == ThreadState::Frozen)
    }

    /// Returns `true` if the process has exited.
    pub fn is_zombie(&self) -> bool {
        self.state == ProcState::Zombie
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capset_operations() {
        let c = CapSet::empty();
        assert!(!c.has(Cap::SysAdmin));
        assert!(!c.can_checkpoint());
        let c = c.with(Cap::CheckpointRestore);
        assert!(c.can_checkpoint());
        assert!(!c.has(Cap::SysPtrace));
        assert!(CapSet::all().has(Cap::SysAdmin));
        assert!(CapSet::all().can_checkpoint());
    }

    #[test]
    fn sys_ptrace_alone_allows_checkpoint() {
        assert!(CapSet::empty().with(Cap::SysPtrace).can_checkpoint());
    }

    #[test]
    fn fd_table_allocates_from_three() {
        let mut t = FdTable::new();
        let fd = t.insert(FdEntry::Listener { port: 8080 });
        assert_eq!(fd, 3);
        let fd2 = t.insert(FdEntry::PipeRead { pipe: 1 });
        assert_eq!(fd2, 4);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn fd_insert_at_respects_reservations() {
        let mut t = FdTable::new();
        assert_eq!(
            t.insert_at(0, FdEntry::Listener { port: 1 }).unwrap_err(),
            Errno::Ebadf
        );
        t.insert_at(7, FdEntry::Listener { port: 1 }).unwrap();
        assert_eq!(
            t.insert_at(7, FdEntry::Listener { port: 2 }).unwrap_err(),
            Errno::Eexist
        );
        // allocator continues after the fixed insert
        assert_eq!(t.insert(FdEntry::PipeRead { pipe: 0 }), 8);
    }

    #[test]
    fn fd_remove_and_get() {
        let mut t = FdTable::new();
        let fd = t.insert(FdEntry::File {
            path: "/f".into(),
            offset: 0,
        });
        assert!(t.get(fd).is_ok());
        let entry = t.remove(fd).unwrap();
        assert_eq!(
            entry,
            FdEntry::File {
                path: "/f".into(),
                offset: 0
            }
        );
        assert_eq!(t.get(fd).unwrap_err(), Errno::Ebadf);
        assert!(t.is_empty());
    }

    #[test]
    fn process_freeze_predicate() {
        let mut p = Process::new(Pid(10), Pid(1), "jlvm", Tid(10));
        assert!(!p.all_frozen());
        p.threads[0].state = ThreadState::Frozen;
        assert!(p.all_frozen());
    }

    #[test]
    fn new_process_defaults() {
        let p = Process::new(Pid(5), Pid(1), "noop", Tid(5));
        assert_eq!(p.state, ProcState::Running);
        assert_eq!(p.threads.len(), 1);
        assert!(p.fds.is_empty());
        assert!(p.exit_code.is_none());
        assert!(!p.is_zombie());
    }
}
