//! Error numbers for simulated syscalls.

use std::error::Error;
use std::fmt;

/// POSIX-style error numbers returned by simulated syscalls.
///
/// The set is restricted to what the substrate actually produces; it is
/// `#[non_exhaustive]` so new kernel features can add variants without a
/// breaking change.
///
/// # Examples
///
/// ```
/// use prebake_sim::error::Errno;
///
/// let e = Errno::Enoent;
/// assert_eq!(e.to_string(), "no such file or directory");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Errno {
    /// Operation not permitted (missing capability).
    Eperm,
    /// No such file or directory.
    Enoent,
    /// No such process.
    Esrch,
    /// Bad file descriptor.
    Ebadf,
    /// Resource temporarily unavailable.
    Eagain,
    /// Bad address (unmapped guest memory).
    Efault,
    /// File or resource busy.
    Ebusy,
    /// File exists.
    Eexist,
    /// Not a directory.
    Enotdir,
    /// Is a directory.
    Eisdir,
    /// Invalid argument.
    Einval,
    /// No child processes.
    Echild,
    /// Address already in use.
    Eaddrinuse,
    /// Not connected / endpoint not listening.
    Enotconn,
    /// No space left in the mapping range.
    Enomem,
}

impl Errno {
    /// The conventional Linux errno value, for log-parity with real tools.
    pub fn code(self) -> i32 {
        match self {
            Errno::Eperm => 1,
            Errno::Enoent => 2,
            Errno::Esrch => 3,
            Errno::Ebadf => 9,
            Errno::Eagain => 11,
            Errno::Efault => 14,
            Errno::Ebusy => 16,
            Errno::Eexist => 17,
            Errno::Enotdir => 20,
            Errno::Eisdir => 21,
            Errno::Einval => 22,
            Errno::Echild => 10,
            Errno::Eaddrinuse => 98,
            Errno::Enotconn => 107,
            Errno::Enomem => 12,
        }
    }

    /// The conventional symbolic name (`ENOENT`, ...).
    pub fn name(self) -> &'static str {
        match self {
            Errno::Eperm => "EPERM",
            Errno::Enoent => "ENOENT",
            Errno::Esrch => "ESRCH",
            Errno::Ebadf => "EBADF",
            Errno::Eagain => "EAGAIN",
            Errno::Efault => "EFAULT",
            Errno::Ebusy => "EBUSY",
            Errno::Eexist => "EEXIST",
            Errno::Enotdir => "ENOTDIR",
            Errno::Eisdir => "EISDIR",
            Errno::Einval => "EINVAL",
            Errno::Echild => "ECHILD",
            Errno::Eaddrinuse => "EADDRINUSE",
            Errno::Enotconn => "ENOTCONN",
            Errno::Enomem => "ENOMEM",
        }
    }
}

impl fmt::Display for Errno {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            Errno::Eperm => "operation not permitted",
            Errno::Enoent => "no such file or directory",
            Errno::Esrch => "no such process",
            Errno::Ebadf => "bad file descriptor",
            Errno::Eagain => "resource temporarily unavailable",
            Errno::Efault => "bad address",
            Errno::Ebusy => "device or resource busy",
            Errno::Eexist => "file exists",
            Errno::Enotdir => "not a directory",
            Errno::Eisdir => "is a directory",
            Errno::Einval => "invalid argument",
            Errno::Echild => "no child processes",
            Errno::Eaddrinuse => "address already in use",
            Errno::Enotconn => "transport endpoint is not connected",
            Errno::Enomem => "cannot allocate memory",
        };
        f.write_str(msg)
    }
}

impl Error for Errno {}

/// Result alias for simulated syscalls.
pub type SysResult<T> = Result<T, Errno>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_match_linux() {
        assert_eq!(Errno::Eperm.code(), 1);
        assert_eq!(Errno::Enoent.code(), 2);
        assert_eq!(Errno::Einval.code(), 22);
        assert_eq!(Errno::Eaddrinuse.code(), 98);
    }

    #[test]
    fn names_are_symbolic() {
        assert_eq!(Errno::Efault.name(), "EFAULT");
        assert_eq!(Errno::Echild.name(), "ECHILD");
    }

    #[test]
    fn display_is_lowercase_no_period() {
        for e in [Errno::Eperm, Errno::Enoent, Errno::Ebusy, Errno::Enomem] {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
            assert!(!s.ends_with('.'));
        }
    }

    #[test]
    fn errno_is_std_error() {
        fn takes_err<E: Error + Send + Sync + 'static>(_e: E) {}
        takes_err(Errno::Einval);
    }
}
