//! Syscall/trace probes.
//!
//! The paper instruments function start-up with `bpftrace` syscall probes
//! (enter/exit of `clone` and `execve`) plus log lines emitted by the
//! runtime at phase boundaries. The kernel reproduces this: when tracing
//! is enabled it records a [`ProbeEvent`] stream that the
//! `PhaseTracker` in `prebake-core` folds into the paper's four phases
//! (CLONE, EXEC, RTS, APPINIT).

use crate::proc::Pid;
use crate::time::SimInstant;

/// One traced event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbeEvent {
    /// Virtual time of the event.
    pub time: SimInstant,
    /// Process the event belongs to.
    pub pid: Pid,
    /// What happened.
    pub kind: ProbeKind,
}

/// Event discriminator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProbeKind {
    /// Entry into a syscall (the `bpftrace` `tracepoint:syscalls:sys_enter_*` analogue).
    SyscallEnter(&'static str),
    /// Exit from a syscall.
    SyscallExit(&'static str),
    /// A named user-level marker (runtime log line), e.g. `rts-start`,
    /// `main-entry`, `ready`.
    Marker(String),
    /// A demand-paging fault resolved by the kernel's `userfaultfd`
    /// analogue. `major` is true when the page content had to be fetched
    /// from a registered fault backend (snapshot image), false for a
    /// minor fault (demand-zero materialization while registered).
    PageFault {
        /// Whether the fault was backed by snapshot content.
        major: bool,
    },
    /// A copy-on-write break: the first write to a shared page frame
    /// (mapped from the content-addressed page store) paid its deferred
    /// private copy.
    CowBreak,
    /// One vectored scatter-gather operation over a run of contiguous
    /// pages (`copy_extent` / `cow_map_extent` / vectored prefetch):
    /// `pages` pages moved under a single setup charge.
    ExtentCopy {
        /// Pages covered by the run.
        pages: u64,
    },
    /// Batched fault servicing woke `pages` *extra* neighbouring pages
    /// alongside one trapping fault — each a major fault avoided.
    FaultAround {
        /// Neighbour pages installed without trapping.
        pages: u64,
    },
}

impl ProbeKind {
    /// Marker constructor.
    pub fn marker(name: impl Into<String>) -> ProbeKind {
        ProbeKind::Marker(name.into())
    }

    /// Returns the marker name if this is a marker event.
    pub fn as_marker(&self) -> Option<&str> {
        match self {
            ProbeKind::Marker(name) => Some(name),
            _ => None,
        }
    }

    /// Returns the syscall name if this is a syscall-enter event.
    pub fn as_enter(&self) -> Option<&'static str> {
        match self {
            ProbeKind::SyscallEnter(name) => Some(name),
            _ => None,
        }
    }

    /// Returns the syscall name if this is a syscall-exit event.
    pub fn as_exit(&self) -> Option<&'static str> {
        match self {
            ProbeKind::SyscallExit(name) => Some(name),
            _ => None,
        }
    }

    /// Returns `Some(major)` if this is a page-fault event.
    pub fn as_page_fault(&self) -> Option<bool> {
        match self {
            ProbeKind::PageFault { major } => Some(*major),
            _ => None,
        }
    }

    /// Returns `true` if this is a copy-on-write break event.
    pub fn is_cow_break(&self) -> bool {
        matches!(self, ProbeKind::CowBreak)
    }

    /// Returns the run length if this is an extent-copy event.
    pub fn as_extent_copy(&self) -> Option<u64> {
        match self {
            ProbeKind::ExtentCopy { pages } => Some(*pages),
            _ => None,
        }
    }

    /// Returns the neighbour count if this is a fault-around event.
    pub fn as_fault_around(&self) -> Option<u64> {
        match self {
            ProbeKind::FaultAround { pages } => Some(*pages),
            _ => None,
        }
    }
}

/// Aggregate counts over a probe trace.
///
/// The `bpftrace` scripts the paper uses end with a `count()` aggregation
/// per tracepoint; this is the equivalent fold over a recorded
/// [`ProbeEvent`] stream. Used by the lazy-restore ablation harness to
/// report major/minor fault totals next to latency percentiles.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProbeCounters {
    /// Number of syscall-enter events.
    pub syscall_enters: u64,
    /// Number of syscall-exit events.
    pub syscall_exits: u64,
    /// Number of user-level markers.
    pub markers: u64,
    /// Major demand-paging faults (content served from a fault backend).
    pub major_faults: u64,
    /// Minor demand-paging faults (demand-zero while registered).
    pub minor_faults: u64,
    /// Copy-on-write breaks (first write to a shared page frame).
    pub cow_breaks: u64,
    /// Vectored extent operations performed (runs, not pages).
    pub extents_restored: u64,
    /// Major faults avoided by fault-around servicing (sum of the extra
    /// neighbour pages installed without their own trap).
    pub faults_avoided: u64,
}

impl ProbeCounters {
    /// Folds a probe trace into per-kind counts.
    pub fn from_events(events: &[ProbeEvent]) -> ProbeCounters {
        let mut c = ProbeCounters::default();
        for ev in events {
            match &ev.kind {
                ProbeKind::SyscallEnter(_) => c.syscall_enters += 1,
                ProbeKind::SyscallExit(_) => c.syscall_exits += 1,
                ProbeKind::Marker(_) => c.markers += 1,
                ProbeKind::PageFault { major: true } => c.major_faults += 1,
                ProbeKind::PageFault { major: false } => c.minor_faults += 1,
                ProbeKind::CowBreak => c.cow_breaks += 1,
                ProbeKind::ExtentCopy { .. } => c.extents_restored += 1,
                ProbeKind::FaultAround { pages } => c.faults_avoided += pages,
            }
        }
        c
    }

    /// Total page faults of either kind.
    pub fn total_faults(&self) -> u64 {
        self.major_faults + self.minor_faults
    }

    /// Accumulates another counter set into this one.
    pub fn merge(&mut self, other: &ProbeCounters) {
        self.syscall_enters += other.syscall_enters;
        self.syscall_exits += other.syscall_exits;
        self.markers += other.markers;
        self.major_faults += other.major_faults;
        self.minor_faults += other.minor_faults;
        self.cow_breaks += other.cow_breaks;
        self.extents_restored += other.extents_restored;
        self.faults_avoided += other.faults_avoided;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_accessors() {
        let m = ProbeKind::marker("ready");
        assert_eq!(m.as_marker(), Some("ready"));
        assert_eq!(m.as_enter(), None);

        let e = ProbeKind::SyscallEnter("clone");
        assert_eq!(e.as_enter(), Some("clone"));
        assert_eq!(e.as_exit(), None);
        assert_eq!(e.as_marker(), None);

        let x = ProbeKind::SyscallExit("execve");
        assert_eq!(x.as_exit(), Some("execve"));

        let f = ProbeKind::PageFault { major: true };
        assert_eq!(f.as_page_fault(), Some(true));
        assert_eq!(f.as_marker(), None);
        assert_eq!(m.as_page_fault(), None);

        let c = ProbeKind::CowBreak;
        assert!(c.is_cow_break());
        assert!(!f.is_cow_break());
        assert_eq!(c.as_page_fault(), None);

        let ext = ProbeKind::ExtentCopy { pages: 16 };
        assert_eq!(ext.as_extent_copy(), Some(16));
        assert_eq!(ext.as_fault_around(), None);
        assert_eq!(c.as_extent_copy(), None);

        let fa = ProbeKind::FaultAround { pages: 3 };
        assert_eq!(fa.as_fault_around(), Some(3));
        assert_eq!(fa.as_extent_copy(), None);
        assert_eq!(fa.as_page_fault(), None);
    }

    #[test]
    fn counters_fold_a_trace() {
        use crate::time::SimInstant;
        let at = SimInstant::EPOCH;
        let pid = Pid(1);
        let events = vec![
            ProbeEvent {
                time: at,
                pid,
                kind: ProbeKind::SyscallEnter("clone"),
            },
            ProbeEvent {
                time: at,
                pid,
                kind: ProbeKind::SyscallExit("clone"),
            },
            ProbeEvent {
                time: at,
                pid,
                kind: ProbeKind::marker("ready"),
            },
            ProbeEvent {
                time: at,
                pid,
                kind: ProbeKind::PageFault { major: true },
            },
            ProbeEvent {
                time: at,
                pid,
                kind: ProbeKind::PageFault { major: true },
            },
            ProbeEvent {
                time: at,
                pid,
                kind: ProbeKind::PageFault { major: false },
            },
            ProbeEvent {
                time: at,
                pid,
                kind: ProbeKind::CowBreak,
            },
            ProbeEvent {
                time: at,
                pid,
                kind: ProbeKind::ExtentCopy { pages: 8 },
            },
            ProbeEvent {
                time: at,
                pid,
                kind: ProbeKind::ExtentCopy { pages: 2 },
            },
            ProbeEvent {
                time: at,
                pid,
                kind: ProbeKind::FaultAround { pages: 3 },
            },
        ];
        let c = ProbeCounters::from_events(&events);
        assert_eq!(c.syscall_enters, 1);
        assert_eq!(c.syscall_exits, 1);
        assert_eq!(c.markers, 1);
        assert_eq!(c.major_faults, 2);
        assert_eq!(c.minor_faults, 1);
        assert_eq!(c.cow_breaks, 1);
        assert_eq!(c.extents_restored, 2, "extent runs counted, not pages");
        assert_eq!(c.faults_avoided, 3, "fault-around sums neighbour pages");
        assert_eq!(c.total_faults(), 3);

        let mut m = ProbeCounters::default();
        m.merge(&c);
        m.merge(&c);
        assert_eq!(m.major_faults, 4);
        assert_eq!(m.cow_breaks, 2);
        assert_eq!(m.syscall_enters, 2);
        assert_eq!(m.extents_restored, 4);
        assert_eq!(m.faults_avoided, 6);
    }

    #[test]
    fn counters_of_empty_trace_are_zero() {
        assert_eq!(ProbeCounters::from_events(&[]), ProbeCounters::default());
    }
}
