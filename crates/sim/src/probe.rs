//! Syscall/trace probes.
//!
//! The paper instruments function start-up with `bpftrace` syscall probes
//! (enter/exit of `clone` and `execve`) plus log lines emitted by the
//! runtime at phase boundaries. The kernel reproduces this: when tracing
//! is enabled it records a [`ProbeEvent`] stream that the
//! `PhaseTracker` in `prebake-core` folds into the paper's four phases
//! (CLONE, EXEC, RTS, APPINIT).

use crate::proc::Pid;
use crate::time::SimInstant;

/// One traced event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbeEvent {
    /// Virtual time of the event.
    pub time: SimInstant,
    /// Process the event belongs to.
    pub pid: Pid,
    /// What happened.
    pub kind: ProbeKind,
}

/// Event discriminator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProbeKind {
    /// Entry into a syscall (the `bpftrace` `tracepoint:syscalls:sys_enter_*` analogue).
    SyscallEnter(&'static str),
    /// Exit from a syscall.
    SyscallExit(&'static str),
    /// A named user-level marker (runtime log line), e.g. `rts-start`,
    /// `main-entry`, `ready`.
    Marker(String),
}

impl ProbeKind {
    /// Marker constructor.
    pub fn marker(name: impl Into<String>) -> ProbeKind {
        ProbeKind::Marker(name.into())
    }

    /// Returns the marker name if this is a marker event.
    pub fn as_marker(&self) -> Option<&str> {
        match self {
            ProbeKind::Marker(name) => Some(name),
            _ => None,
        }
    }

    /// Returns the syscall name if this is a syscall-enter event.
    pub fn as_enter(&self) -> Option<&'static str> {
        match self {
            ProbeKind::SyscallEnter(name) => Some(name),
            _ => None,
        }
    }

    /// Returns the syscall name if this is a syscall-exit event.
    pub fn as_exit(&self) -> Option<&'static str> {
        match self {
            ProbeKind::SyscallExit(name) => Some(name),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_accessors() {
        let m = ProbeKind::marker("ready");
        assert_eq!(m.as_marker(), Some("ready"));
        assert_eq!(m.as_enter(), None);

        let e = ProbeKind::SyscallEnter("clone");
        assert_eq!(e.as_enter(), Some("clone"));
        assert_eq!(e.as_exit(), None);
        assert_eq!(e.as_marker(), None);

        let x = ProbeKind::SyscallExit("execve");
        assert_eq!(x.as_exit(), Some("execve"));
    }
}
