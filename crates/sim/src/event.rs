//! A generic discrete-event queue.
//!
//! The platform layer coordinates request arrivals, replica readiness and
//! autoscaler ticks with this queue. Entries at equal times pop in
//! insertion order (a sequence number breaks ties), which keeps
//! simulations deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimInstant;

struct Entry<T> {
    time: SimInstant,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered queue of scheduled events.
///
/// # Examples
///
/// ```
/// use prebake_sim::event::EventQueue;
/// use prebake_sim::time::SimInstant;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimInstant::from_nanos(20), "late");
/// q.schedule(SimInstant::from_nanos(10), "early");
/// assert_eq!(q.pop().unwrap().1, "early");
/// assert_eq!(q.pop().unwrap().1, "late");
/// assert!(q.pop().is_none());
/// ```
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
}

impl<T> EventQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` at `time`.
    pub fn schedule(&mut self, time: SimInstant, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, payload });
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimInstant, T)> {
        self.heap.pop().map(|e| (e.time, e.payload))
    }

    /// Time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimInstant> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<T> std::fmt::Debug for EventQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.heap.len())
            .field("next_time", &self.peek_time())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for &t in &[30u64, 10, 20, 5, 25] {
            q.schedule(SimInstant::from_nanos(t), t);
        }
        let mut out = Vec::new();
        while let Some((_, v)) = q.pop() {
            out.push(v);
        }
        assert_eq!(out, vec![5, 10, 20, 25, 30]);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimInstant::from_nanos(100);
        for i in 0..10 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, v)| v)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(SimInstant::EPOCH + SimDuration::from_millis(1), ());
        assert_eq!(q.peek_time().unwrap().as_millis_f64(), 1.0);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop().unwrap();
        assert!(q.is_empty());
        assert!(q.peek_time().is_none());
    }

    #[test]
    fn debug_is_nonempty() {
        let q: EventQueue<()> = EventQueue::new();
        assert!(format!("{q:?}").contains("EventQueue"));
    }
}
