//! Structured span tracing over the virtual clock.
//!
//! The probe stream ([`crate::probe`]) reproduces the paper's `bpftrace`
//! instrumentation: a flat sequence of syscall/marker/fault events that
//! the `PhaseTracker` folds into Fig. 4's four phases. Spans add the
//! *tree* the flat stream lacks: every stage of the start path — clone,
//! exec, image parse, eager copy vs CoW map vs prefetch, fault service —
//! records a `[start, end]` interval nested under its caller, so one cold
//! start yields one tree from the root command down to individual fault
//! batches.
//!
//! The [`Tracer`] lives inside the kernel and is a zero-cost no-op while
//! disabled: [`Tracer::begin`] returns [`SpanId::NONE`] without
//! allocating, and every other operation on a `NONE` id returns
//! immediately. Probe events recorded while a span is open are attached
//! to the innermost open span as *annotations*, preserving the exact
//! event stream inside the tree (see [`probe_events`]).
//!
//! Two exporters consume a recorded tree:
//!
//! - [`chrome_trace_json`] — the Chrome trace-event format, loadable in
//!   Perfetto / `chrome://tracing`;
//! - [`TraceSummary`] — a critical-path table attributing total wall
//!   time to named stages by *self time* (span duration minus direct
//!   children).

use crate::probe::{ProbeEvent, ProbeKind};
use crate::proc::Pid;
use crate::time::{SimDuration, SimInstant};

/// Identifier of a recorded span.
///
/// `SpanId::NONE` (zero) is what [`Tracer::begin`] hands out while
/// tracing is disabled; every operation on it is a no-op, so callers can
/// bracket code unconditionally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(u64);

impl SpanId {
    /// The disabled-tracing sentinel.
    pub const NONE: SpanId = SpanId(0);

    /// Whether this is the disabled sentinel.
    pub fn is_none(self) -> bool {
        self.0 == 0
    }

    /// Raw id (0 for [`SpanId::NONE`]).
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// A span id from its raw value — for renumbering spans when merging
    /// independently-traced batches (e.g. fleet shards) into one stream.
    pub fn from_raw(raw: u64) -> SpanId {
        SpanId(raw)
    }
}

/// One recorded interval of the start path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSpan {
    /// Unique id within one tracer session.
    pub id: SpanId,
    /// Enclosing span, if any (`None` for roots).
    pub parent: Option<SpanId>,
    /// Stage name (`"sys_clone"`, `"criu_restore"`, …).
    pub name: &'static str,
    /// Process the stage ran on behalf of.
    pub pid: Pid,
    /// When the stage began.
    pub start: SimInstant,
    /// When the stage ended. Spans still open when the tracer drains are
    /// closed at drain time, so `end >= start` always holds.
    pub end: SimInstant,
    /// Key/value attributes (`("pages", "512")`).
    pub attrs: Vec<(&'static str, String)>,
    /// Probe events observed while this span was innermost-open.
    pub events: Vec<ProbeEvent>,
}

impl TraceSpan {
    /// The span's duration.
    pub fn duration(&self) -> SimDuration {
        self.end.saturating_duration_since(self.start)
    }
}

/// Records nested spans against externally supplied clock readings.
///
/// The kernel owns one tracer and threads its virtual clock through
/// `begin`/`end`/`take`; the tracer itself is clock-agnostic so tests can
/// drive it with hand-picked instants.
#[derive(Debug, Default)]
pub struct Tracer {
    enabled: bool,
    spans: Vec<TraceSpan>,
    /// Indices into `spans` of currently open spans, outermost first.
    stack: Vec<usize>,
    next_id: u64,
}

impl Tracer {
    /// A disabled tracer (the kernel's initial state).
    pub fn new() -> Tracer {
        Tracer::default()
    }

    /// Whether spans are being recorded.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Turns recording on or off. Turning it off leaves already-recorded
    /// spans in place for a later [`Tracer::take`].
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Opens a span at `now`, nested under the innermost open span.
    /// Returns [`SpanId::NONE`] while disabled.
    pub fn begin(&mut self, name: &'static str, pid: Pid, now: SimInstant) -> SpanId {
        if !self.enabled {
            return SpanId::NONE;
        }
        self.next_id += 1;
        let id = SpanId(self.next_id);
        let parent = self.stack.last().map(|&i| self.spans[i].id);
        self.stack.push(self.spans.len());
        self.spans.push(TraceSpan {
            id,
            parent,
            name,
            pid,
            start: now,
            end: now,
            attrs: Vec::new(),
            events: Vec::new(),
        });
        id
    }

    /// Closes `id` at `now`. Any spans opened inside it that are still
    /// open are closed at the same instant, so the tree stays well-formed
    /// even when an error path skipped their own `end`. Unknown or
    /// already-closed ids (and [`SpanId::NONE`]) are ignored.
    pub fn end(&mut self, id: SpanId, now: SimInstant) {
        if id.is_none() {
            return;
        }
        let Some(pos) = self.stack.iter().rposition(|&i| self.spans[i].id == id) else {
            return;
        };
        for &idx in &self.stack[pos..] {
            self.spans[idx].end = now;
        }
        self.stack.truncate(pos);
    }

    /// Attaches an attribute to `id` (no-op for [`SpanId::NONE`] or an
    /// unknown id).
    pub fn attr(&mut self, id: SpanId, key: &'static str, value: impl Into<String>) {
        if id.is_none() {
            return;
        }
        if let Some(span) = self.spans.iter_mut().rev().find(|s| s.id == id) {
            span.attrs.push((key, value.into()));
        }
    }

    /// Attaches a probe event to the innermost open span. Events arriving
    /// while no span is open are dropped — the start path always runs
    /// under a root span, so this only loses out-of-window noise.
    pub fn annotate(&mut self, event: ProbeEvent) {
        if !self.enabled {
            return;
        }
        if let Some(&idx) = self.stack.last() {
            self.spans[idx].events.push(event);
        }
    }

    /// Number of spans currently open.
    pub fn open_spans(&self) -> usize {
        self.stack.len()
    }

    /// The spans recorded so far (open spans show `end == start` until
    /// closed).
    pub fn spans(&self) -> &[TraceSpan] {
        &self.spans
    }

    /// Drains the recorded spans, closing any still open at `now`. Ids
    /// keep incrementing across drains, so spans from successive windows
    /// never collide.
    pub fn take(&mut self, now: SimInstant) -> Vec<TraceSpan> {
        for &idx in &self.stack {
            self.spans[idx].end = now;
        }
        self.stack.clear();
        std::mem::take(&mut self.spans)
    }
}

/// Reconstructs the flat, time-ordered probe stream from a span tree's
/// annotations — the inverse of the kernel attaching each probe to the
/// innermost open span. Feeding the result to `PhaseTracker` reproduces
/// the phase decomposition the raw trace would give.
pub fn probe_events(spans: &[TraceSpan]) -> Vec<ProbeEvent> {
    let mut events: Vec<ProbeEvent> = spans.iter().flat_map(|s| s.events.clone()).collect();
    events.sort_by_key(|e| e.time);
    events
}

/// Human/Perfetto-readable label for an annotation event.
pub fn probe_label(kind: &ProbeKind) -> String {
    match kind {
        ProbeKind::SyscallEnter(name) => format!("enter:{name}"),
        ProbeKind::SyscallExit(name) => format!("exit:{name}"),
        ProbeKind::Marker(name) => format!("marker:{name}"),
        ProbeKind::PageFault { major: true } => "fault:major".to_owned(),
        ProbeKind::PageFault { major: false } => "fault:minor".to_owned(),
        ProbeKind::CowBreak => "cow-break".to_owned(),
        ProbeKind::ExtentCopy { pages } => format!("extent:{pages}"),
        ProbeKind::FaultAround { pages } => format!("fault-around:{pages}"),
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Microseconds with fixed 3-decimal precision (the trace-event `ts`
/// unit), stable across platforms.
fn ts_micros(t: SimInstant) -> String {
    let nanos = t.saturating_duration_since(SimInstant::EPOCH).as_nanos();
    format!("{}.{:03}", nanos / 1_000, nanos % 1_000)
}

fn dur_micros(d: SimDuration) -> String {
    format!("{}.{:03}", d.as_nanos() / 1_000, d.as_nanos() % 1_000)
}

/// Serialises a span tree in the Chrome trace-event JSON format
/// (loadable in Perfetto and `chrome://tracing`).
///
/// Spans become complete (`"ph":"X"`) events; their probe annotations
/// become instant (`"ph":"i"`) events. Events are emitted in
/// non-decreasing `ts` order with a fixed field order, so the output is
/// byte-stable for a given tree.
pub fn chrome_trace_json(spans: &[TraceSpan]) -> String {
    // (ts_nanos, emission order) keys a stable sort so simultaneous
    // events keep tree order.
    let mut events: Vec<(u64, usize, String)> = Vec::new();
    for span in spans {
        let ts = span
            .start
            .saturating_duration_since(SimInstant::EPOCH)
            .as_nanos();
        let mut args = format!(
            "\"span\":{},\"parent\":{}",
            span.id.as_u64(),
            span.parent.map_or(0, SpanId::as_u64)
        );
        for (key, value) in &span.attrs {
            args.push_str(&format!(
                ",\"{}\":\"{}\"",
                json_escape(key),
                json_escape(value)
            ));
        }
        let order = events.len();
        events.push((
            ts,
            order,
            format!(
                "{{\"name\":\"{}\",\"cat\":\"prebake\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{},\"args\":{{{}}}}}",
                json_escape(span.name),
                ts_micros(span.start),
                dur_micros(span.duration()),
                span.pid.0,
                span.pid.0,
                args
            ),
        ));
        for event in &span.events {
            let ets = event
                .time
                .saturating_duration_since(SimInstant::EPOCH)
                .as_nanos();
            let order = events.len();
            events.push((
                ets,
                order,
                format!(
                    "{{\"name\":\"{}\",\"cat\":\"probe\",\"ph\":\"i\",\"ts\":{},\"pid\":{},\"tid\":{},\"s\":\"t\"}}",
                    json_escape(&probe_label(&event.kind)),
                    ts_micros(event.time),
                    event.pid.0,
                    event.pid.0
                ),
            ));
        }
    }
    events.sort_by_key(|&(ts, order, _)| (ts, order));
    let body: Vec<String> = events.into_iter().map(|(_, _, json)| json).collect();
    format!(
        "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[{}]}}",
        body.join(",")
    )
}

/// Wall-time attribution of one stage name across a span tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageTotal {
    /// Stage (span) name.
    pub name: &'static str,
    /// Spans with this name.
    pub count: u64,
    /// Summed span durations (includes time spent in children).
    pub total: SimDuration,
    /// Summed *self* time: duration minus direct children — the stage's
    /// own contribution to the critical path.
    pub self_time: SimDuration,
}

/// A critical-path summary over a recorded span tree: total wall time of
/// the root spans, attributed to stage names by self time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSummary {
    /// Summed durations of the tree's root spans.
    pub wall: SimDuration,
    /// Per-stage attribution, largest self time first (name-ordered on
    /// ties, so the table is deterministic).
    pub stages: Vec<StageTotal>,
}

impl TraceSummary {
    /// Folds a span tree into a summary.
    pub fn from_spans(spans: &[TraceSpan]) -> TraceSummary {
        use std::collections::BTreeMap;
        // Sum of direct children durations per parent id.
        let mut child_time: BTreeMap<u64, SimDuration> = BTreeMap::new();
        for span in spans {
            if let Some(parent) = span.parent {
                let slot = child_time.entry(parent.as_u64()).or_default();
                *slot = slot.saturating_add(span.duration());
            }
        }
        let mut stages: BTreeMap<&'static str, StageTotal> = BTreeMap::new();
        let mut wall = SimDuration::ZERO;
        for span in spans {
            if span.parent.is_none() {
                wall = wall.saturating_add(span.duration());
            }
            let children = child_time
                .get(&span.id.as_u64())
                .copied()
                .unwrap_or(SimDuration::ZERO);
            let entry = stages.entry(span.name).or_insert(StageTotal {
                name: span.name,
                count: 0,
                total: SimDuration::ZERO,
                self_time: SimDuration::ZERO,
            });
            entry.count += 1;
            entry.total = entry.total.saturating_add(span.duration());
            entry.self_time = entry
                .self_time
                .saturating_add(span.duration().saturating_sub(children));
        }
        let mut stages: Vec<StageTotal> = stages.into_values().collect();
        stages.sort_by(|a, b| b.self_time.cmp(&a.self_time).then(a.name.cmp(b.name)));
        TraceSummary { wall, stages }
    }

    /// The attribution row for `name`, if any span carried it.
    pub fn stage(&self, name: &str) -> Option<&StageTotal> {
        self.stages.iter().find(|s| s.name == name)
    }

    /// Summed self time across all stages. Equals [`TraceSummary::wall`]
    /// for a well-formed tree whose children never outlive their parents.
    pub fn self_total(&self) -> SimDuration {
        self.stages
            .iter()
            .fold(SimDuration::ZERO, |acc, s| acc.saturating_add(s.self_time))
    }

    /// Renders the attribution as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<24} {:>6} {:>12} {:>12}\n",
            "stage", "count", "total ms", "self ms"
        ));
        for s in &self.stages {
            out.push_str(&format!(
                "{:<24} {:>6} {:>12.3} {:>12.3}\n",
                s.name,
                s.count,
                s.total.as_millis_f64(),
                s.self_time.as_millis_f64()
            ));
        }
        out.push_str(&format!(
            "{:<24} {:>6} {:>12.3} {:>12.3}\n",
            "(wall)",
            "",
            self.wall.as_millis_f64(),
            self.self_total().as_millis_f64()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(us: u64) -> SimInstant {
        SimInstant::from_nanos(us * 1_000)
    }

    #[test]
    fn disabled_tracer_is_a_no_op() {
        let mut t = Tracer::new();
        assert!(!t.enabled());
        let id = t.begin("x", Pid(1), at(0));
        assert!(id.is_none());
        t.attr(id, "k", "v");
        t.annotate(ProbeEvent {
            time: at(1),
            pid: Pid(1),
            kind: ProbeKind::CowBreak,
        });
        t.end(id, at(2));
        assert!(t.take(at(3)).is_empty());
    }

    #[test]
    fn nesting_and_ids() {
        let mut t = Tracer::new();
        t.set_enabled(true);
        let root = t.begin("root", Pid(1), at(0));
        let child = t.begin("child", Pid(2), at(1));
        assert_ne!(root, child);
        t.end(child, at(3));
        t.end(root, at(5));
        let spans = t.take(at(5));
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "root");
        assert_eq!(spans[0].parent, None);
        assert_eq!(spans[1].parent, Some(root));
        assert_eq!(spans[1].duration(), SimDuration::from_micros(2));
    }

    #[test]
    fn ending_a_parent_closes_open_children() {
        let mut t = Tracer::new();
        t.set_enabled(true);
        let root = t.begin("root", Pid(1), at(0));
        let child = t.begin("child", Pid(1), at(1));
        t.end(root, at(4)); // child never explicitly ended
        let spans = t.take(at(9));
        assert_eq!(spans[1].id, child);
        assert_eq!(spans[1].end, at(4), "auto-closed with the parent");
        // Double-end of the child is ignored.
    }

    #[test]
    fn take_closes_open_spans() {
        let mut t = Tracer::new();
        t.set_enabled(true);
        t.begin("open", Pid(1), at(2));
        let spans = t.take(at(7));
        assert_eq!(spans[0].end, at(7));
        assert_eq!(t.open_spans(), 0);
    }

    #[test]
    fn annotations_attach_to_innermost_open_span() {
        let mut t = Tracer::new();
        t.set_enabled(true);
        let root = t.begin("root", Pid(1), at(0));
        let ev = |us| ProbeEvent {
            time: at(us),
            pid: Pid(2),
            kind: ProbeKind::marker("m"),
        };
        t.annotate(ev(1));
        let child = t.begin("child", Pid(1), at(2));
        t.annotate(ev(3));
        t.end(child, at(4));
        t.annotate(ev(5));
        t.end(root, at(6));
        let spans = t.take(at(6));
        assert_eq!(spans[0].events.len(), 2);
        assert_eq!(spans[1].events.len(), 1);
        let flat = probe_events(&spans);
        assert_eq!(flat.len(), 3);
        assert!(flat.windows(2).all(|w| w[0].time <= w[1].time));
    }

    #[test]
    fn summary_attributes_self_time() {
        let mut t = Tracer::new();
        t.set_enabled(true);
        let root = t.begin("root", Pid(1), at(0));
        let a = t.begin("stage-a", Pid(1), at(1));
        t.end(a, at(4));
        let b = t.begin("stage-b", Pid(1), at(4));
        t.end(b, at(9));
        t.end(root, at(10));
        let summary = TraceSummary::from_spans(&t.take(at(10)));
        assert_eq!(summary.wall, SimDuration::from_micros(10));
        assert_eq!(
            summary.stage("root").unwrap().self_time,
            SimDuration::from_micros(2),
            "10 total minus 3+5 in children"
        );
        assert_eq!(
            summary.stage("stage-b").unwrap().total,
            SimDuration::from_micros(5)
        );
        assert_eq!(summary.self_total(), summary.wall);
        assert_eq!(summary.stages[0].name, "stage-b", "largest self first");
        let table = summary.render();
        assert!(table.contains("stage-a"), "{table}");
    }

    #[test]
    fn probe_labels() {
        assert_eq!(
            probe_label(&ProbeKind::SyscallEnter("clone")),
            "enter:clone"
        );
        assert_eq!(probe_label(&ProbeKind::SyscallExit("clone")), "exit:clone");
        assert_eq!(probe_label(&ProbeKind::marker("ready")), "marker:ready");
        assert_eq!(
            probe_label(&ProbeKind::PageFault { major: true }),
            "fault:major"
        );
        assert_eq!(
            probe_label(&ProbeKind::PageFault { major: false }),
            "fault:minor"
        );
        assert_eq!(probe_label(&ProbeKind::CowBreak), "cow-break");
        assert_eq!(
            probe_label(&ProbeKind::ExtentCopy { pages: 64 }),
            "extent:64"
        );
        assert_eq!(
            probe_label(&ProbeKind::FaultAround { pages: 3 }),
            "fault-around:3"
        );
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
