//! Virtual time primitives.
//!
//! All durations and instants in the simulation are expressed in integer
//! nanoseconds of *virtual* time. Virtual time only advances when the
//! [`Kernel`](crate::kernel::Kernel) charges work to its clock, which makes
//! every experiment deterministic and independent of host speed.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A span of virtual time with nanosecond resolution.
///
/// `SimDuration` is a thin newtype over `u64` nanoseconds. It deliberately
/// mirrors the subset of `std::time::Duration` the simulator needs, plus
/// float accessors used by the statistics pipeline.
///
/// # Examples
///
/// ```
/// use prebake_sim::time::SimDuration;
///
/// let d = SimDuration::from_millis(70);
/// assert_eq!(d.as_nanos(), 70_000_000);
/// assert_eq!(d + SimDuration::from_millis(30), SimDuration::from_millis(100));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from whole nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration from whole microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a duration from whole milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a duration from fractional milliseconds.
    ///
    /// Negative or non-finite inputs saturate to zero.
    pub fn from_millis_f64(millis: f64) -> Self {
        if !millis.is_finite() || millis <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((millis * 1_000_000.0).round() as u64)
    }

    /// Creates a duration from fractional nanoseconds.
    ///
    /// Negative or non-finite inputs saturate to zero.
    pub fn from_nanos_f64(nanos: f64) -> Self {
        if !nanos.is_finite() || nanos <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration(nanos.round() as u64)
    }

    /// Returns the duration as whole nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the duration as whole microseconds (truncated).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the duration as whole milliseconds (truncated).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Returns the duration as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Returns the duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Returns `true` if this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction: returns zero instead of underflowing.
    pub const fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Saturating addition.
    pub const fn saturating_add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }

    /// Multiplies the duration by a non-negative float factor, rounding to
    /// the nearest nanosecond. Non-finite or negative factors yield zero.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration::from_nanos_f64(self.0 as f64 * factor)
    }

    /// Returns the larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1_000.0)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

/// A point in virtual time, measured from simulation start.
///
/// # Examples
///
/// ```
/// use prebake_sim::time::{SimDuration, SimInstant};
///
/// let t0 = SimInstant::EPOCH;
/// let t1 = t0 + SimDuration::from_millis(5);
/// assert_eq!(t1.duration_since(t0), SimDuration::from_millis(5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimInstant(u64);

impl SimInstant {
    /// The origin of virtual time (simulation start).
    pub const EPOCH: SimInstant = SimInstant(0);

    /// Creates an instant at `nanos` nanoseconds after the epoch.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimInstant(nanos)
    }

    /// Nanoseconds elapsed since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional milliseconds since the epoch.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Elapsed time since an earlier instant.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is later than `self`.
    pub fn duration_since(self, earlier: SimInstant) -> SimDuration {
        debug_assert!(earlier.0 <= self.0, "duration_since: earlier is later");
        SimDuration(self.0 - earlier.0)
    }

    /// Elapsed time since an earlier instant, or zero if `earlier` is later.
    pub fn saturating_duration_since(self, earlier: SimInstant) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Returns the later of two instants.
    pub fn max(self, other: SimInstant) -> SimInstant {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Add<SimDuration> for SimInstant {
    type Output = SimInstant;
    fn add(self, rhs: SimDuration) -> SimInstant {
        SimInstant(self.0 + rhs.as_nanos())
    }
}

impl AddAssign<SimDuration> for SimInstant {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.as_nanos();
    }
}

impl Sub<SimDuration> for SimInstant {
    type Output = SimInstant;
    fn sub(self, rhs: SimDuration) -> SimInstant {
        SimInstant(self.0 - rhs.as_nanos())
    }
}

impl Sub<SimInstant> for SimInstant {
    type Output = SimDuration;
    fn sub(self, rhs: SimInstant) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl fmt::Display for SimInstant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.3}ms", self.as_millis_f64())
    }
}

/// A monotonically advancing virtual clock.
///
/// The clock is owned by a [`Kernel`](crate::kernel::Kernel); one clock
/// models one machine.
#[derive(Debug, Clone, Default)]
pub struct Clock {
    now: SimInstant,
}

impl Clock {
    /// Creates a clock at the epoch.
    pub fn new() -> Self {
        Clock {
            now: SimInstant::EPOCH,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimInstant {
        self.now
    }

    /// Advances the clock by `d`.
    pub fn advance(&mut self, d: SimDuration) {
        self.now += d;
    }

    /// Moves the clock forward to `t` if `t` is in the future; otherwise
    /// leaves it unchanged. Returns the (possibly unchanged) current time.
    pub fn advance_to(&mut self, t: SimInstant) -> SimInstant {
        if t > self.now {
            self.now = t;
        }
        self.now
    }

    /// Forces the clock to `t`, even backwards. Reserved for the kernel's
    /// uncharged-section support; not part of the public simulation
    /// surface.
    pub(crate) fn set(&mut self, t: SimInstant) {
        self.now = t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1000));
        assert_eq!(SimDuration::from_micros(1), SimDuration::from_nanos(1000));
    }

    #[test]
    fn duration_float_roundtrip() {
        let d = SimDuration::from_millis_f64(12.345);
        assert!((d.as_millis_f64() - 12.345).abs() < 1e-6);
    }

    #[test]
    fn duration_from_f64_saturates_bad_inputs() {
        assert_eq!(SimDuration::from_millis_f64(-3.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_millis_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_nanos_f64(f64::NEG_INFINITY),
            SimDuration::ZERO
        );
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_millis(10);
        let b = SimDuration::from_millis(4);
        assert_eq!(a + b, SimDuration::from_millis(14));
        assert_eq!(a - b, SimDuration::from_millis(6));
        assert_eq!(a * 3, SimDuration::from_millis(30));
        assert_eq!(a / 2, SimDuration::from_millis(5));
        assert_eq!(b.saturating_sub(a), SimDuration::ZERO);
    }

    #[test]
    fn duration_mul_f64_rounds() {
        let d = SimDuration::from_nanos(100);
        assert_eq!(d.mul_f64(1.5), SimDuration::from_nanos(150));
        assert_eq!(d.mul_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn duration_sum() {
        let total: SimDuration = (1..=4).map(SimDuration::from_millis).sum();
        assert_eq!(total, SimDuration::from_millis(10));
    }

    #[test]
    fn duration_display_picks_unit() {
        assert_eq!(SimDuration::from_nanos(5).to_string(), "5ns");
        assert_eq!(SimDuration::from_micros(5).to_string(), "5.000us");
        assert_eq!(SimDuration::from_millis(5).to_string(), "5.000ms");
        assert_eq!(SimDuration::from_secs(5).to_string(), "5.000s");
    }

    #[test]
    fn instant_arithmetic() {
        let t = SimInstant::EPOCH + SimDuration::from_millis(100);
        assert_eq!(t.as_nanos(), 100_000_000);
        assert_eq!(t - SimInstant::EPOCH, SimDuration::from_millis(100));
        assert_eq!((t - SimDuration::from_millis(40)).as_nanos(), 60_000_000);
    }

    #[test]
    fn instant_saturating_duration_since() {
        let early = SimInstant::from_nanos(10);
        let late = SimInstant::from_nanos(50);
        assert_eq!(early.saturating_duration_since(late), SimDuration::ZERO);
        assert_eq!(
            late.saturating_duration_since(early),
            SimDuration::from_nanos(40)
        );
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut c = Clock::new();
        c.advance(SimDuration::from_millis(3));
        assert_eq!(c.now().as_millis_f64(), 3.0);
        // advance_to into the past is a no-op
        let now = c.advance_to(SimInstant::EPOCH);
        assert_eq!(now, c.now());
        assert_eq!(c.now().as_millis_f64(), 3.0);
        c.advance_to(SimInstant::from_nanos(9_000_000));
        assert_eq!(c.now().as_millis_f64(), 9.0);
    }
}
