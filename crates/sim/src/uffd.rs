//! Demand-paging fault backends — the `userfaultfd(2)` analogue.
//!
//! Lazy restore (the paper's §7 future work, realised by REAP at
//! ASPLOS '21) maps a checkpointed address space *without* its page
//! contents and registers the region with `userfaultfd`. Every first
//! touch traps to a handler that copies the page in from the snapshot
//! image (`UFFDIO_COPY`). This module models that mechanism: a
//! [`UffdBackend`] holds the withheld pages for one process, counts
//! major/minor faults and — when recording — logs the *order* in which
//! pages were demanded, which is exactly the working set a later
//! prefetch-mode restore loads up front.
//!
//! The kernel owns the registration table (see
//! [`Kernel::uffd_register`](crate::kernel::Kernel::uffd_register)) and
//! resolves faults transparently inside `mem_read`/`mem_write`/ptrace
//! accesses, charging [`CostModel::fault_trap`](crate::cost::CostModel)
//! plus the data movement per major fault.

use std::collections::{BTreeMap, BTreeSet};

use crate::mem::Page;

/// Per-process demand-paging backend: withheld page contents plus fault
/// accounting, registered with the kernel via `uffd_register`.
#[derive(Debug, Clone, Default)]
pub struct UffdBackend {
    pages: BTreeMap<u64, Page>,
    /// Pages served from the compaction *fallback layer* (the full cold
    /// image behind a hot working-set image). Faulting one of these
    /// charges the kernel's `fault_fallback` penalty on top of the
    /// normal service cost.
    fallback: BTreeSet<u64>,
    recording: bool,
    log: Vec<u64>,
    major_faults: u64,
    minor_faults: u64,
    fallback_faults: u64,
    fault_around: usize,
}

impl UffdBackend {
    /// An empty backend.
    pub fn new() -> Self {
        UffdBackend::default()
    }

    /// Adds the content for one withheld page.
    pub fn insert_page(&mut self, page_index: u64, page: Page) {
        self.pages.insert(page_index, page);
    }

    /// Adds the content for one withheld page that lives in the
    /// compaction fallback layer rather than the hot image. Faulting it
    /// costs extra ([`CostModel::fault_fallback`](crate::cost::CostModel)).
    pub fn insert_fallback_page(&mut self, page_index: u64, page: Page) {
        self.pages.insert(page_index, page);
        self.fallback.insert(page_index);
    }

    /// Whether `page_index` is served from the fallback layer.
    pub fn is_fallback(&self, page_index: u64) -> bool {
        self.fallback.contains(&page_index)
    }

    /// Number of withheld pages that live in the fallback layer.
    pub fn fallback_len(&self) -> usize {
        self.fallback.len()
    }

    /// Notes `n` faults served from the fallback layer.
    pub fn note_fallback(&mut self, n: u64) {
        self.fallback_faults += n;
    }

    /// Faults served from the fallback layer so far.
    pub fn fallback_faults(&self) -> u64 {
        self.fallback_faults
    }

    /// Looks up a withheld page.
    pub fn page(&self, page_index: u64) -> Option<&Page> {
        self.pages.get(&page_index)
    }

    /// Number of withheld pages.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// Whether the backend holds no pages.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Page indices the backend holds, ascending.
    pub fn page_indices(&self) -> Vec<u64> {
        self.pages.keys().copied().collect()
    }

    /// Sets the fault-around window: one trapping fault services up to
    /// `window` pages (the trap page plus forward-consecutive withheld
    /// neighbours) under a single service charge, like the handler
    /// answering one `userfaultfd` message with a multi-page
    /// `UFFDIO_COPY`. `0` and `1` both mean fault-around off.
    pub fn set_fault_around(&mut self, window: usize) {
        self.fault_around = window;
    }

    /// The effective fault-around window (always ≥ 1).
    pub fn fault_around(&self) -> usize {
        self.fault_around.max(1)
    }

    /// Turns working-set recording on or off. While on, every major
    /// fault appends its page index to the ordered log.
    pub fn set_recording(&mut self, on: bool) {
        self.recording = on;
    }

    /// Whether working-set recording is active.
    pub fn is_recording(&self) -> bool {
        self.recording
    }

    /// Takes the recorded fault log (ordered, first fault first) and
    /// stops recording.
    pub fn take_log(&mut self) -> Vec<u64> {
        self.recording = false;
        std::mem::take(&mut self.log)
    }

    /// Notes a resolved major fault on `page_index`.
    pub fn note_major(&mut self, page_index: u64) {
        self.major_faults += 1;
        if self.recording {
            self.log.push(page_index);
        }
    }

    /// Notes `n` minor faults.
    pub fn note_minor(&mut self, n: u64) {
        self.minor_faults += n;
    }

    /// Major faults resolved so far.
    pub fn major_faults(&self) -> u64 {
        self.major_faults
    }

    /// Minor faults observed so far.
    pub fn minor_faults(&self) -> u64 {
        self.minor_faults
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::page::PAGE_SIZE;

    #[test]
    fn backend_holds_pages() {
        let mut b = UffdBackend::new();
        assert!(b.is_empty());
        b.insert_page(7, Page::from_bytes(&[1u8; PAGE_SIZE]));
        b.insert_page(3, Page::zeroed());
        assert_eq!(b.len(), 2);
        assert_eq!(b.page_indices(), vec![3, 7]);
        assert_eq!(b.page(7).unwrap().bytes()[0], 1);
        assert!(b.page(8).is_none());
    }

    #[test]
    fn fallback_pages_are_marked_and_counted() {
        let mut b = UffdBackend::new();
        b.insert_page(1, Page::zeroed());
        b.insert_fallback_page(2, Page::from_bytes(&[7u8; PAGE_SIZE]));
        assert!(!b.is_fallback(1));
        assert!(b.is_fallback(2));
        assert_eq!(b.fallback_len(), 1);
        assert_eq!(b.len(), 2, "fallback pages are still withheld pages");
        assert_eq!(b.page(2).unwrap().bytes()[0], 7);
        b.note_fallback(3);
        assert_eq!(b.fallback_faults(), 3);
    }

    #[test]
    fn fault_around_window_normalises_to_at_least_one() {
        let mut b = UffdBackend::new();
        assert_eq!(b.fault_around(), 1, "default is off");
        b.set_fault_around(0);
        assert_eq!(b.fault_around(), 1);
        b.set_fault_around(16);
        assert_eq!(b.fault_around(), 16);
    }

    #[test]
    fn recording_logs_major_fault_order() {
        let mut b = UffdBackend::new();
        b.note_major(5); // not recording yet: counted, not logged
        b.set_recording(true);
        assert!(b.is_recording());
        b.note_major(9);
        b.note_major(2);
        b.note_major(9); // refaults may repeat in the log
        b.note_minor(3);
        assert_eq!(b.major_faults(), 4);
        assert_eq!(b.minor_faults(), 3);
        assert_eq!(b.take_log(), vec![9, 2, 9]);
        assert!(!b.is_recording());
        assert!(b.take_log().is_empty(), "log is consumed");
    }
}
