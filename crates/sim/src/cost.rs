//! OS-level cost model.
//!
//! Every kernel operation charges virtual time according to this table.
//! The constants are calibrated against the paper's measurements (see
//! `DESIGN.md` §2): `clone`+`exec` are a "tiny fraction" of start-up
//! (Fig. 4), cold file reads cost ≈6.7 ms/MB (the I/O share of the
//! 36.7 ms/MB vanilla class-load slope regressed from Table 1), and page
//! operations are priced so that snapshot restore lands at ≈0.26 ms/MB
//! (Table 1, PB-Warmup slope).
//!
//! Domain layers (the managed runtime and the CRIU engine) keep their own
//! cost tables; this module only prices primitives every layer shares.

use crate::time::SimDuration;

/// Converts a cost expressed in milliseconds-per-MiB into ns-per-byte.
pub fn ms_per_mib_to_ns_per_byte(ms_per_mib: f64) -> f64 {
    ms_per_mib * 1_000_000.0 / (1024.0 * 1024.0)
}

/// Per-byte cost helper: `bytes` at `ns_per_byte` nanoseconds each.
pub fn per_byte(bytes: u64, ns_per_byte: f64) -> SimDuration {
    SimDuration::from_nanos_f64(bytes as f64 * ns_per_byte)
}

/// OS-level virtual-time cost table.
///
/// Construct with [`CostModel::paper_calibrated`] (the default) for
/// experiment runs, or [`CostModel::free`] for pure-logic tests that should
/// not advance the clock.
///
/// # Examples
///
/// ```
/// use prebake_sim::cost::CostModel;
///
/// let costs = CostModel::paper_calibrated();
/// assert_eq!(costs.clone_call.as_micros(), 400);
/// ```
#[derive(Debug, Clone)]
pub struct CostModel {
    // -- process lifecycle ---------------------------------------------
    /// One `clone(2)` call (paper Fig. 4: CLONE phase, ≈0.4 ms).
    pub clone_call: SimDuration,
    /// Fixed part of `execve(2)` (paper Fig. 4: EXEC phase, ≈1.2 ms);
    /// reading the binary is charged separately as a file read.
    pub exec_base: SimDuration,
    /// Scheduling latency to resume a stopped/frozen task.
    pub sched_resume: SimDuration,
    /// Process teardown (`exit` + reaping).
    pub exit_call: SimDuration,

    // -- memory ---------------------------------------------------------
    /// Establishing a mapping (`mmap` bookkeeping, excludes faults).
    pub mmap_base: SimDuration,
    /// Removing a mapping.
    pub munmap_base: SimDuration,
    /// First-touch fault + zero-fill of one page.
    pub page_touch: SimDuration,
    /// Copying one page of memory (used by reads/writes of resident pages).
    pub page_copy: SimDuration,
    /// Trap + handler round-trip for one *major* demand-paging fault: the
    /// `userfaultfd(2)` wakeup, handler dispatch and `UFFDIO_COPY` ioctl,
    /// excluding the data movement (charged per byte at the warm read
    /// rate) and the page copy itself. REAP (ASPLOS '21) reports ~5-8 µs
    /// per userfaultfd round-trip.
    pub fault_trap: SimDuration,
    /// Bookkeeping overhead for a *minor* fault (first touch of a
    /// demand-zero page) while the address space is fault-registered.
    /// Charged on top of [`CostModel::page_touch`].
    pub fault_minor: SimDuration,
    /// Write-protect fault on a shared (copy-on-write) page: trap,
    /// private-copy allocation and the page copy itself. Priced like a
    /// hardware CoW break (trap ≪ `userfaultfd` round-trip) — the moment
    /// a restored replica first writes a shared frame.
    pub cow_break: SimDuration,
    /// Extra service charge when a major fault misses the compacted *hot*
    /// image and falls through to the fallback layer (the full snapshot
    /// kept cold): re-opening the cold image region, an extra seek and
    /// the handler's second lookup. Dearer than `fault_trap` — the whole
    /// point of compaction is that these are rare.
    pub fault_fallback: SimDuration,
    /// Fixed setup charge for one scatter-gather memory operation over a
    /// run of contiguous pages (`copy_extent`, `cow_map_extent`,
    /// vectored prefetch): the single syscall-equivalent entry
    /// (`preadv`/iovec dispatch, VMA lookup, TLB bookkeeping) that a
    /// vectored op pays *once* where the per-page path pays it per page.
    /// The per-page streaming share stays with the caller (criu's
    /// per-page install charge and the warm read rate) — bytes move at
    /// the same rate on both gears.
    pub extent_setup: SimDuration,

    // -- filesystem -----------------------------------------------------
    /// Metadata operation (open/stat/close/mkdir/unlink).
    pub fs_meta: SimDuration,
    /// Starting a *discontiguous* read of an image file: the extra seek —
    /// an `lseek`+`pread` dispatch that breaks the kernel's readahead
    /// window — paid once per non-sequential jump. A fault-order-packed
    /// image streams with (nearly) no seeks, which is exactly the win
    /// REAP's working-set-ordered snapshot layout measures. Sits between
    /// `extent_setup` (a seek is a heavier dispatch than an iovec entry)
    /// and `fault_trap` (still far below a userfaultfd round-trip).
    pub fs_seek: SimDuration,
    /// Cold (uncached) read, ns per byte. Calibrated to ≈6.7 ms/MiB — the
    /// I/O share of the paper's vanilla class-load slope.
    pub fs_read_cold_ns_per_byte: f64,
    /// Warm (page-cache) read, ns per byte (≈0.3 ms/MiB).
    pub fs_read_warm_ns_per_byte: f64,
    /// Write, ns per byte (≈1.0 ms/MiB; build-time path only).
    pub fs_write_ns_per_byte: f64,

    // -- pipes ------------------------------------------------------------
    /// Creating a pipe pair.
    pub pipe_create: SimDuration,
    /// Streaming data through a pipe, ns per byte.
    pub pipe_ns_per_byte: f64,

    // -- ptrace -----------------------------------------------------------
    /// `PTRACE_SEIZE` of one task.
    pub ptrace_attach: SimDuration,
    /// `PTRACE_INTERRUPT` + wait until one thread is frozen.
    pub ptrace_freeze_per_thread: SimDuration,
    /// Reading or writing one page of a tracee's memory.
    pub ptrace_xfer_per_page: SimDuration,
    /// `PTRACE_DETACH`.
    pub ptrace_detach: SimDuration,

    // -- sockets ----------------------------------------------------------
    /// Creating + binding + listening on a socket.
    pub socket_listen: SimDuration,
    /// Accept/connect handshake.
    pub socket_accept: SimDuration,

    // -- /proc --------------------------------------------------------------
    /// Rendering a `/proc/<pid>/maps`-style view.
    pub procfs_read: SimDuration,
    /// Scanning one page's worth of `/proc/<pid>/pagemap`.
    pub pagemap_per_page: SimDuration,
}

impl CostModel {
    /// The calibration used by every experiment in `EXPERIMENTS.md`.
    pub fn paper_calibrated() -> Self {
        CostModel {
            clone_call: SimDuration::from_micros(400),
            exec_base: SimDuration::from_micros(1200),
            sched_resume: SimDuration::from_micros(50),
            exit_call: SimDuration::from_micros(80),

            mmap_base: SimDuration::from_micros(8),
            munmap_base: SimDuration::from_micros(5),
            page_touch: SimDuration::from_nanos(180),
            page_copy: SimDuration::from_nanos(220),
            fault_trap: SimDuration::from_micros(6),
            fault_minor: SimDuration::from_nanos(250),
            cow_break: SimDuration::from_micros(4),
            fault_fallback: SimDuration::from_micros(25),
            extent_setup: SimDuration::from_micros(2),

            fs_meta: SimDuration::from_micros(15),
            fs_seek: SimDuration::from_micros(5),
            fs_read_cold_ns_per_byte: ms_per_mib_to_ns_per_byte(6.7),
            fs_read_warm_ns_per_byte: ms_per_mib_to_ns_per_byte(0.3),
            fs_write_ns_per_byte: ms_per_mib_to_ns_per_byte(1.0),

            pipe_create: SimDuration::from_micros(10),
            pipe_ns_per_byte: 0.12,

            ptrace_attach: SimDuration::from_micros(60),
            ptrace_freeze_per_thread: SimDuration::from_micros(35),
            ptrace_xfer_per_page: SimDuration::from_nanos(1400),
            ptrace_detach: SimDuration::from_micros(40),

            socket_listen: SimDuration::from_micros(120),
            socket_accept: SimDuration::from_micros(25),

            procfs_read: SimDuration::from_micros(30),
            pagemap_per_page: SimDuration::from_nanos(90),
        }
    }

    /// A zero-cost table: no operation advances the clock. Useful for unit
    /// tests that assert on state rather than timing.
    pub fn free() -> Self {
        CostModel {
            clone_call: SimDuration::ZERO,
            exec_base: SimDuration::ZERO,
            sched_resume: SimDuration::ZERO,
            exit_call: SimDuration::ZERO,
            mmap_base: SimDuration::ZERO,
            munmap_base: SimDuration::ZERO,
            page_touch: SimDuration::ZERO,
            page_copy: SimDuration::ZERO,
            fault_trap: SimDuration::ZERO,
            fault_minor: SimDuration::ZERO,
            cow_break: SimDuration::ZERO,
            fault_fallback: SimDuration::ZERO,
            extent_setup: SimDuration::ZERO,
            fs_meta: SimDuration::ZERO,
            fs_seek: SimDuration::ZERO,
            fs_read_cold_ns_per_byte: 0.0,
            fs_read_warm_ns_per_byte: 0.0,
            fs_write_ns_per_byte: 0.0,
            pipe_create: SimDuration::ZERO,
            pipe_ns_per_byte: 0.0,
            ptrace_attach: SimDuration::ZERO,
            ptrace_freeze_per_thread: SimDuration::ZERO,
            ptrace_xfer_per_page: SimDuration::ZERO,
            ptrace_detach: SimDuration::ZERO,
            socket_listen: SimDuration::ZERO,
            socket_accept: SimDuration::ZERO,
            procfs_read: SimDuration::ZERO,
            pagemap_per_page: SimDuration::ZERO,
        }
    }

    /// Cost of reading `bytes` from a file, given its cache state.
    pub fn fs_read(&self, bytes: u64, cached: bool) -> SimDuration {
        let ns_per_byte = if cached {
            self.fs_read_warm_ns_per_byte
        } else {
            self.fs_read_cold_ns_per_byte
        };
        self.fs_meta + per_byte(bytes, ns_per_byte)
    }

    /// Cost of writing `bytes` to a file.
    pub fn fs_write(&self, bytes: u64) -> SimDuration {
        self.fs_meta + per_byte(bytes, self.fs_write_ns_per_byte)
    }

    /// Cost of streaming `bytes` through a pipe.
    pub fn pipe_xfer(&self, bytes: u64) -> SimDuration {
        per_byte(bytes, self.pipe_ns_per_byte)
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::paper_calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversion_helper() {
        // 1 ms/MiB == ~0.9537 ns/B
        let ns = ms_per_mib_to_ns_per_byte(1.0);
        assert!((ns - 0.95367).abs() < 1e-4);
    }

    #[test]
    fn per_byte_scales_linearly() {
        let one = per_byte(1024, 1.0);
        let two = per_byte(2048, 1.0);
        assert_eq!(two.as_nanos(), 2 * one.as_nanos());
    }

    #[test]
    fn cold_read_costs_about_6_7ms_per_mib() {
        let costs = CostModel::paper_calibrated();
        let mib = 1024 * 1024;
        let d = costs.fs_read(mib, false);
        assert!(
            (d.as_millis_f64() - 6.7).abs() < 0.1,
            "cold read of 1MiB was {d}"
        );
    }

    #[test]
    fn warm_read_much_cheaper_than_cold() {
        let costs = CostModel::paper_calibrated();
        let cold = costs.fs_read(1 << 20, false);
        let warm = costs.fs_read(1 << 20, true);
        assert!(cold.as_nanos() > 10 * warm.as_nanos());
    }

    #[test]
    fn free_model_never_charges() {
        let costs = CostModel::free();
        assert_eq!(costs.fs_read(1 << 30, false), SimDuration::ZERO);
        assert_eq!(costs.fs_write(1 << 30), SimDuration::ZERO);
        assert_eq!(costs.pipe_xfer(1 << 30), SimDuration::ZERO);
        assert_eq!(costs.clone_call, SimDuration::ZERO);
    }

    #[test]
    fn default_is_paper_calibrated() {
        let d = CostModel::default();
        let p = CostModel::paper_calibrated();
        assert_eq!(d.clone_call, p.clone_call);
        assert_eq!(d.exec_base, p.exec_base);
    }

    #[test]
    fn major_fault_dominated_by_trap_not_copy() {
        // A userfaultfd round-trip costs microseconds while the in-kernel
        // page copy costs hundreds of nanoseconds — the trap must dominate,
        // otherwise lazy restore would never lose to prefetch on hot pages.
        let costs = CostModel::paper_calibrated();
        assert!(costs.fault_trap.as_nanos() > 10 * costs.page_copy.as_nanos());
        assert!(costs.fault_minor.as_nanos() < costs.fault_trap.as_nanos());
    }

    #[test]
    fn cow_break_between_copy_and_uffd_trap() {
        // A hardware write-protect fault is far cheaper than a
        // userfaultfd round-trip but dearer than the bare page copy it
        // defers — otherwise CoW restore could never win over eager.
        let costs = CostModel::paper_calibrated();
        assert!(costs.cow_break < costs.fault_trap);
        assert!(costs.cow_break.as_nanos() > costs.page_copy.as_nanos());
    }

    #[test]
    fn extent_setup_amortises_over_a_run() {
        // A vectored op only wins if its one-time setup is far below the
        // per-page costs it replaces across a typical run: setup must sit
        // between a single page copy (else never worth batching) and the
        // cost of a uffd trap (else batched fault servicing is pointless).
        let costs = CostModel::paper_calibrated();
        assert!(costs.extent_setup.as_nanos() > costs.page_copy.as_nanos());
        assert!(costs.extent_setup < costs.fault_trap);
        assert!(CostModel::free().extent_setup.is_zero());
    }

    #[test]
    fn seek_between_extent_setup_and_fault_trap() {
        // A seek breaks readahead, so it must out-price the vectored
        // dispatch it interrupts — else fault-order packing buys nothing —
        // while staying well under a userfaultfd round-trip, or scattered
        // prefetch would price like lazy faulting and the prefetch-beats-
        // lazy calibration would collapse.
        let costs = CostModel::paper_calibrated();
        assert!(costs.fs_seek > costs.extent_setup);
        assert!(costs.fs_seek < costs.fault_trap);
        assert!(CostModel::free().fs_seek.is_zero());
    }

    #[test]
    fn fallback_fault_dearer_than_hot_fault() {
        // Falling through the compacted hot image to the cold full
        // snapshot costs strictly more than a hot-path major fault —
        // compaction is only sound as a bet that such faults are rare.
        let costs = CostModel::paper_calibrated();
        assert!(costs.fault_fallback > costs.fault_trap);
        assert!(CostModel::free().fault_fallback.is_zero());
    }

    #[test]
    fn clone_exec_are_tiny_fraction_of_70ms_rts() {
        // Paper Fig. 4: CLONE and EXEC contribute a tiny fraction of the
        // ~100ms+ start-up, dominated by the ~70ms RTS phase.
        let costs = CostModel::paper_calibrated();
        let clone_exec = costs.clone_call + costs.exec_base;
        assert!(clone_exec.as_millis_f64() < 2.0);
    }
}
