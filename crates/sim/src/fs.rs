//! In-memory guest filesystem with a page-cache model.
//!
//! The filesystem is a plain tree of directories and byte files. Each file
//! tracks whether its contents are resident in the (machine-wide) page
//! cache: the first read of a file is *cold* and priced at disk rates by
//! the kernel, subsequent reads are *warm*. [`SimFs::drop_caches`] models a
//! fresh container image with nothing cached — the state every cold start
//! in the paper begins from.

use std::collections::BTreeMap;
use std::fmt;

use bytes::Bytes;

use crate::error::{Errno, SysResult};

/// Splits a normalised absolute path into components.
///
/// # Errors
///
/// Returns [`Errno::Einval`] unless the path starts with `/` and has no
/// empty or `.`/`..` components.
pub fn split_path(path: &str) -> SysResult<Vec<&str>> {
    let rest = path.strip_prefix('/').ok_or(Errno::Einval)?;
    if rest.is_empty() {
        return Ok(Vec::new());
    }
    let parts: Vec<&str> = rest.split('/').collect();
    if parts
        .iter()
        .any(|p| p.is_empty() || *p == "." || *p == "..")
    {
        return Err(Errno::Einval);
    }
    Ok(parts)
}

/// Joins path segments onto a base path.
///
/// ```
/// assert_eq!(prebake_sim::fs::join_path("/a/b", "c.img"), "/a/b/c.img");
/// assert_eq!(prebake_sim::fs::join_path("/", "c.img"), "/c.img");
/// ```
pub fn join_path(base: &str, name: &str) -> String {
    if base == "/" {
        format!("/{name}")
    } else {
        format!("{base}/{name}")
    }
}

#[derive(Debug, Clone)]
struct FileNode {
    data: Bytes,
    cached: bool,
}

#[derive(Debug, Clone)]
enum Node {
    Dir(BTreeMap<String, Node>),
    File(FileNode),
}

/// Metadata returned by [`SimFs::stat`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stat {
    /// File size in bytes (0 for directories).
    pub size: u64,
    /// `true` for directories.
    pub is_dir: bool,
    /// `true` if the file's contents are resident in the page cache.
    pub cached: bool,
}

/// An in-memory filesystem tree.
///
/// `SimFs` is pure state: it never charges virtual time itself. The
/// [`Kernel`](crate::kernel::Kernel) wraps each operation and charges the
/// [`CostModel`](crate::cost::CostModel) price, using the cache flags
/// reported here.
///
/// # Examples
///
/// ```
/// use prebake_sim::fs::SimFs;
///
/// let mut fs = SimFs::new();
/// fs.create_dir_all("/app").unwrap();
/// fs.write_file("/app/fn.jar", b"bytes".to_vec()).unwrap();
/// fs.drop_caches(); // fresh container: nothing resident
/// let (data, cached) = fs.read_file("/app/fn.jar").unwrap();
/// assert_eq!(&data[..], b"bytes");
/// assert!(!cached, "first read is cold");
/// let (_, cached) = fs.read_file("/app/fn.jar").unwrap();
/// assert!(cached, "second read hits the page cache");
/// ```
#[derive(Debug, Clone)]
pub struct SimFs {
    root: Node,
}

impl SimFs {
    /// An empty filesystem containing only `/`.
    pub fn new() -> Self {
        SimFs {
            root: Node::Dir(BTreeMap::new()),
        }
    }

    fn lookup(&self, path: &str) -> SysResult<&Node> {
        let parts = split_path(path)?;
        let mut cur = &self.root;
        for part in parts {
            match cur {
                Node::Dir(entries) => {
                    cur = entries.get(part).ok_or(Errno::Enoent)?;
                }
                Node::File(_) => return Err(Errno::Enotdir),
            }
        }
        Ok(cur)
    }

    fn lookup_mut(&mut self, path: &str) -> SysResult<&mut Node> {
        let parts = split_path(path)?;
        let mut cur = &mut self.root;
        for part in parts {
            match cur {
                Node::Dir(entries) => {
                    cur = entries.get_mut(part).ok_or(Errno::Enoent)?;
                }
                Node::File(_) => return Err(Errno::Enotdir),
            }
        }
        Ok(cur)
    }

    fn parent_dir_mut(&mut self, path: &str) -> SysResult<(&mut BTreeMap<String, Node>, String)> {
        let parts = split_path(path)?;
        let (name, dirs) = parts.split_last().ok_or(Errno::Einval)?;
        let mut cur = &mut self.root;
        for part in dirs {
            match cur {
                Node::Dir(entries) => {
                    cur = entries.get_mut(*part).ok_or(Errno::Enoent)?;
                }
                Node::File(_) => return Err(Errno::Enotdir),
            }
        }
        match cur {
            Node::Dir(entries) => Ok((entries, (*name).to_owned())),
            Node::File(_) => Err(Errno::Enotdir),
        }
    }

    /// Creates a directory and all missing ancestors.
    ///
    /// # Errors
    ///
    /// [`Errno::Eexist`] if a *file* occupies any component.
    pub fn create_dir_all(&mut self, path: &str) -> SysResult<()> {
        let parts = split_path(path)?;
        let mut cur = &mut self.root;
        for part in parts {
            match cur {
                Node::Dir(entries) => {
                    cur = entries
                        .entry(part.to_owned())
                        .or_insert_with(|| Node::Dir(BTreeMap::new()));
                    if matches!(cur, Node::File(_)) {
                        return Err(Errno::Eexist);
                    }
                }
                Node::File(_) => return Err(Errno::Eexist),
            }
        }
        Ok(())
    }

    /// Writes (creates or truncates) a file. The parent directory must
    /// exist. A freshly written file counts as cached (it was just in
    /// memory).
    ///
    /// # Errors
    ///
    /// [`Errno::Enoent`] if the parent is missing, [`Errno::Eisdir`] if the
    /// path names a directory.
    pub fn write_file(&mut self, path: &str, data: impl Into<Bytes>) -> SysResult<()> {
        let (entries, name) = self.parent_dir_mut(path)?;
        match entries.get(&name) {
            Some(Node::Dir(_)) => return Err(Errno::Eisdir),
            _ => {
                entries.insert(
                    name,
                    Node::File(FileNode {
                        data: data.into(),
                        cached: true,
                    }),
                );
            }
        }
        Ok(())
    }

    /// Reads a file's contents, returning the bytes and whether the read
    /// was served from the page cache. Marks the file cached afterwards.
    ///
    /// # Errors
    ///
    /// [`Errno::Enoent`] / [`Errno::Eisdir`] on bad paths.
    pub fn read_file(&mut self, path: &str) -> SysResult<(Bytes, bool)> {
        match self.lookup_mut(path)? {
            Node::File(f) => {
                let was_cached = f.cached;
                f.cached = true;
                Ok((f.data.clone(), was_cached))
            }
            Node::Dir(_) => Err(Errno::Eisdir),
        }
    }

    /// File/directory metadata.
    ///
    /// # Errors
    ///
    /// [`Errno::Enoent`] if the path does not exist.
    pub fn stat(&self, path: &str) -> SysResult<Stat> {
        match self.lookup(path)? {
            Node::File(f) => Ok(Stat {
                size: f.data.len() as u64,
                is_dir: false,
                cached: f.cached,
            }),
            Node::Dir(_) => Ok(Stat {
                size: 0,
                is_dir: true,
                cached: true,
            }),
        }
    }

    /// Returns `true` if the path exists.
    pub fn exists(&self, path: &str) -> bool {
        self.lookup(path).is_ok()
    }

    /// Lists the names in a directory, sorted.
    ///
    /// # Errors
    ///
    /// [`Errno::Enoent`] / [`Errno::Enotdir`] on bad paths.
    pub fn list_dir(&self, path: &str) -> SysResult<Vec<String>> {
        match self.lookup(path)? {
            Node::Dir(entries) => Ok(entries.keys().cloned().collect()),
            Node::File(_) => Err(Errno::Enotdir),
        }
    }

    /// Removes a file.
    ///
    /// # Errors
    ///
    /// [`Errno::Enoent`] if missing, [`Errno::Eisdir`] if it is a directory.
    pub fn remove_file(&mut self, path: &str) -> SysResult<()> {
        let (entries, name) = self.parent_dir_mut(path)?;
        match entries.get(&name) {
            Some(Node::File(_)) => {
                entries.remove(&name);
                Ok(())
            }
            Some(Node::Dir(_)) => Err(Errno::Eisdir),
            None => Err(Errno::Enoent),
        }
    }

    /// Removes a directory tree recursively.
    ///
    /// # Errors
    ///
    /// [`Errno::Enoent`] if missing, [`Errno::Enotdir`] if it is a file.
    pub fn remove_dir_all(&mut self, path: &str) -> SysResult<()> {
        let (entries, name) = self.parent_dir_mut(path)?;
        match entries.get(&name) {
            Some(Node::Dir(_)) => {
                entries.remove(&name);
                Ok(())
            }
            Some(Node::File(_)) => Err(Errno::Enotdir),
            None => Err(Errno::Enoent),
        }
    }

    /// Marks every file uncached, modelling a freshly provisioned
    /// container whose image has never been read.
    pub fn drop_caches(&mut self) {
        fn walk(node: &mut Node) {
            match node {
                Node::File(f) => f.cached = false,
                Node::Dir(entries) => entries.values_mut().for_each(walk),
            }
        }
        walk(&mut self.root);
    }

    /// Total bytes stored across all files.
    pub fn total_bytes(&self) -> u64 {
        fn walk(node: &Node) -> u64 {
            match node {
                Node::File(f) => f.data.len() as u64,
                Node::Dir(entries) => entries.values().map(walk).sum(),
            }
        }
        walk(&self.root)
    }
}

impl Default for SimFs {
    fn default() -> Self {
        SimFs::new()
    }
}

impl fmt::Display for SimFs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn walk(node: &Node, name: &str, depth: usize, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            let pad = "  ".repeat(depth);
            match node {
                Node::File(file) => {
                    writeln!(f, "{pad}{name} ({} bytes)", file.data.len())
                }
                Node::Dir(entries) => {
                    writeln!(f, "{pad}{name}/")?;
                    for (child_name, child) in entries {
                        walk(child, child_name, depth + 1, f)?;
                    }
                    Ok(())
                }
            }
        }
        walk(&self.root, "", 0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_path_validates() {
        assert_eq!(split_path("/a/b").unwrap(), vec!["a", "b"]);
        assert_eq!(split_path("/").unwrap(), Vec::<&str>::new());
        assert_eq!(split_path("relative").unwrap_err(), Errno::Einval);
        assert_eq!(split_path("/a//b").unwrap_err(), Errno::Einval);
        assert_eq!(split_path("/a/../b").unwrap_err(), Errno::Einval);
        assert_eq!(split_path("/a/./b").unwrap_err(), Errno::Einval);
    }

    #[test]
    fn write_requires_parent() {
        let mut fs = SimFs::new();
        assert_eq!(
            fs.write_file("/missing/f", Vec::new()).unwrap_err(),
            Errno::Enoent
        );
        fs.create_dir_all("/missing").unwrap();
        fs.write_file("/missing/f", vec![1, 2, 3]).unwrap();
        assert_eq!(fs.stat("/missing/f").unwrap().size, 3);
    }

    #[test]
    fn create_dir_all_is_idempotent() {
        let mut fs = SimFs::new();
        fs.create_dir_all("/a/b/c").unwrap();
        fs.create_dir_all("/a/b/c").unwrap();
        fs.create_dir_all("/a/b").unwrap();
        assert!(fs.stat("/a/b/c").unwrap().is_dir);
    }

    #[test]
    fn create_dir_over_file_fails() {
        let mut fs = SimFs::new();
        fs.write_file("/f", Vec::new()).unwrap();
        assert_eq!(fs.create_dir_all("/f/sub").unwrap_err(), Errno::Eexist);
        assert_eq!(fs.create_dir_all("/f").unwrap_err(), Errno::Eexist);
    }

    #[test]
    fn cache_state_transitions() {
        let mut fs = SimFs::new();
        fs.write_file("/f", vec![0u8; 128]).unwrap();
        assert!(fs.stat("/f").unwrap().cached, "freshly written is cached");
        fs.drop_caches();
        assert!(!fs.stat("/f").unwrap().cached);
        let (_, cached) = fs.read_file("/f").unwrap();
        assert!(!cached, "first read after drop_caches is cold");
        let (_, cached) = fs.read_file("/f").unwrap();
        assert!(cached);
    }

    #[test]
    fn overwrite_truncates() {
        let mut fs = SimFs::new();
        fs.write_file("/f", vec![1u8; 100]).unwrap();
        fs.write_file("/f", vec![2u8; 10]).unwrap();
        let (data, _) = fs.read_file("/f").unwrap();
        assert_eq!(data.len(), 10);
        assert!(data.iter().all(|&b| b == 2));
    }

    #[test]
    fn list_dir_sorted() {
        let mut fs = SimFs::new();
        fs.create_dir_all("/d").unwrap();
        fs.write_file("/d/zz", Vec::new()).unwrap();
        fs.write_file("/d/aa", Vec::new()).unwrap();
        fs.create_dir_all("/d/mm").unwrap();
        assert_eq!(fs.list_dir("/d").unwrap(), vec!["aa", "mm", "zz"]);
        assert_eq!(fs.list_dir("/d/aa").unwrap_err(), Errno::Enotdir);
    }

    #[test]
    fn remove_file_and_dir() {
        let mut fs = SimFs::new();
        fs.create_dir_all("/d/sub").unwrap();
        fs.write_file("/d/f", Vec::new()).unwrap();
        assert_eq!(fs.remove_file("/d/sub").unwrap_err(), Errno::Eisdir);
        assert_eq!(fs.remove_dir_all("/d/f").unwrap_err(), Errno::Enotdir);
        fs.remove_file("/d/f").unwrap();
        assert!(!fs.exists("/d/f"));
        fs.remove_dir_all("/d").unwrap();
        assert!(!fs.exists("/d"));
        assert_eq!(fs.remove_file("/d").unwrap_err(), Errno::Enoent);
    }

    #[test]
    fn total_bytes_sums_tree() {
        let mut fs = SimFs::new();
        fs.create_dir_all("/a/b").unwrap();
        fs.write_file("/a/x", vec![0u8; 10]).unwrap();
        fs.write_file("/a/b/y", vec![0u8; 32]).unwrap();
        assert_eq!(fs.total_bytes(), 42);
    }

    #[test]
    fn read_dir_as_file_fails() {
        let mut fs = SimFs::new();
        fs.create_dir_all("/d").unwrap();
        assert_eq!(fs.read_file("/d").unwrap_err(), Errno::Eisdir);
    }

    #[test]
    fn path_through_file_is_enotdir() {
        let mut fs = SimFs::new();
        fs.write_file("/f", Vec::new()).unwrap();
        assert_eq!(fs.stat("/f/x").unwrap_err(), Errno::Enotdir);
    }

    #[test]
    fn display_renders_tree() {
        let mut fs = SimFs::new();
        fs.create_dir_all("/app").unwrap();
        fs.write_file("/app/jar", vec![0u8; 5]).unwrap();
        let s = fs.to_string();
        assert!(s.contains("app/"), "{s}");
        assert!(s.contains("jar (5 bytes)"), "{s}");
    }

    #[test]
    fn join_path_handles_root() {
        assert_eq!(join_path("/", "x"), "/x");
        assert_eq!(join_path("/a", "x"), "/a/x");
    }
}
