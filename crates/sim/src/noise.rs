//! Deterministic measurement noise.
//!
//! The paper's experiments repeat every treatment 200 times and run
//! bootstrap/Wilcoxon statistics over the resulting distributions. A
//! noiseless simulator would produce degenerate (constant) samples, so the
//! kernel perturbs every charged cost with a small multiplicative
//! log-normal factor drawn from a seeded RNG. Seeding makes whole
//! experiments reproducible bit-for-bit.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::time::SimDuration;

/// Multiplicative log-normal noise source.
///
/// Every call to [`factor`](Noise::factor) returns `exp(sigma * z)` for a
/// standard-normal `z`, i.e. a factor centred slightly above 1.0 with
/// relative spread `sigma`. Typical configuration is `sigma = 0.02` (±2 %).
///
/// # Examples
///
/// ```
/// use prebake_sim::noise::Noise;
/// use prebake_sim::time::SimDuration;
///
/// let mut n = Noise::new(42, 0.02);
/// let jittered = n.jitter(SimDuration::from_millis(100));
/// // within a few percent of the base cost
/// assert!(jittered.as_millis_f64() > 90.0 && jittered.as_millis_f64() < 110.0);
/// ```
#[derive(Debug, Clone)]
pub struct Noise {
    rng: SmallRng,
    sigma: f64,
    /// Cached second Box-Muller variate.
    spare: Option<f64>,
}

impl Noise {
    /// Creates a noise source with the given seed and relative spread.
    ///
    /// `sigma` is clamped to `[0, 0.5]`; values above that would no longer
    /// model measurement jitter.
    pub fn new(seed: u64, sigma: f64) -> Self {
        Noise {
            rng: SmallRng::seed_from_u64(seed),
            sigma: sigma.clamp(0.0, 0.5),
            spare: None,
        }
    }

    /// Creates a disabled noise source (factor is always exactly 1.0).
    pub fn disabled() -> Self {
        Noise::new(0, 0.0)
    }

    /// The configured relative spread.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Returns `true` if this source never perturbs values.
    pub fn is_disabled(&self) -> bool {
        self.sigma == 0.0
    }

    /// Draws a standard-normal variate via Box-Muller.
    fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        // Box-Muller transform: two uniforms -> two independent normals.
        let u1: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.rng.gen();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Draws one multiplicative noise factor.
    pub fn factor(&mut self) -> f64 {
        if self.sigma == 0.0 {
            return 1.0;
        }
        (self.sigma * self.standard_normal()).exp()
    }

    /// Applies one noise factor to a duration.
    pub fn jitter(&mut self, base: SimDuration) -> SimDuration {
        if self.sigma == 0.0 || base.is_zero() {
            return base;
        }
        base.mul_f64(self.factor())
    }

    /// Draws a uniform value in `[0, 1)`. Exposed for workload generators
    /// that want to share the kernel's deterministic stream.
    pub fn uniform(&mut self) -> f64 {
        self.rng.gen()
    }

    /// Draws an exponentially distributed value with the given mean.
    ///
    /// Used by Poisson arrival processes in the platform layer.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        -mean * u.ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_noise_is_identity() {
        let mut n = Noise::disabled();
        assert!(n.is_disabled());
        assert_eq!(n.factor(), 1.0);
        let d = SimDuration::from_millis(7);
        assert_eq!(n.jitter(d), d);
    }

    #[test]
    fn seeded_noise_is_deterministic() {
        let mut a = Noise::new(123, 0.05);
        let mut b = Noise::new(123, 0.05);
        for _ in 0..32 {
            assert_eq!(a.factor(), b.factor());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Noise::new(1, 0.05);
        let mut b = Noise::new(2, 0.05);
        let same = (0..16).filter(|_| a.factor() == b.factor()).count();
        assert!(same < 16);
    }

    #[test]
    fn factor_mean_is_near_one() {
        let mut n = Noise::new(7, 0.02);
        let k = 10_000;
        let mean: f64 = (0..k).map(|_| n.factor()).sum::<f64>() / k as f64;
        // E[lognormal(0, s)] = exp(s^2/2) ~= 1.0002 for s=0.02
        assert!((mean - 1.0).abs() < 0.01, "mean factor was {mean}");
    }

    #[test]
    fn factor_spread_matches_sigma() {
        let mut n = Noise::new(9, 0.1);
        let k = 10_000;
        let logs: Vec<f64> = (0..k).map(|_| n.factor().ln()).collect();
        let mean = logs.iter().sum::<f64>() / k as f64;
        let var = logs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / k as f64;
        assert!((var.sqrt() - 0.1).abs() < 0.01, "sd was {}", var.sqrt());
    }

    #[test]
    fn sigma_is_clamped() {
        let n = Noise::new(0, 3.0);
        assert_eq!(n.sigma(), 0.5);
        let n = Noise::new(0, -1.0);
        assert_eq!(n.sigma(), 0.0);
    }

    #[test]
    fn jitter_zero_duration_stays_zero() {
        let mut n = Noise::new(5, 0.2);
        assert_eq!(n.jitter(SimDuration::ZERO), SimDuration::ZERO);
    }

    #[test]
    fn exponential_has_requested_mean() {
        let mut n = Noise::new(11, 0.0);
        let k = 20_000;
        let mean: f64 = (0..k).map(|_| n.exponential(5.0)).sum::<f64>() / k as f64;
        assert!((mean - 5.0).abs() < 0.2, "mean was {mean}");
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut n = Noise::new(3, 0.0);
        for _ in 0..1000 {
            let u = n.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
