//! Machine-level shared page store — the content-addressed pool of
//! physical frames behind copy-on-write restore.
//!
//! Real CRIU restores into anonymous private memory, paying a byte copy
//! per page per replica. The dedup optimisation (Ustiugov et al.,
//! "Benchmarking, Analysis, and Optimization of Serverless Function
//! Snapshots") instead backs identical pages with *one* physical frame —
//! a memfd/KSM-style pool — and maps it into each replica
//! copy-on-write. This module is that pool: frames are keyed by a
//! content hash, handed out as [`Arc<Page>`] clones, and released
//! automatically when every mapping referencing them is torn down
//! (munmap, exec, exit). `Arc::strong_count - 1` *is* the frame's
//! mapcount, so leak tests reduce to reference counting.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::mem::{Page, PAGE_SIZE};

/// A content-addressed pool of shared page frames.
#[derive(Debug, Clone, Default)]
pub struct SharedPageStore {
    frames: BTreeMap<u64, Arc<Page>>,
}

impl SharedPageStore {
    /// An empty store.
    pub fn new() -> Self {
        SharedPageStore::default()
    }

    /// Returns the frame for `hash`, inserting it from `make` on first
    /// use. Identical content dedups to one frame machine-wide.
    pub fn get_or_insert(&mut self, hash: u64, make: impl FnOnce() -> Page) -> Arc<Page> {
        Arc::clone(self.frames.entry(hash).or_insert_with(|| Arc::new(make())))
    }

    /// Looks up a frame without inserting.
    pub fn get(&self, hash: u64) -> Option<Arc<Page>> {
        self.frames.get(&hash).map(Arc::clone)
    }

    /// Number of distinct frames resident in the pool.
    pub fn frame_count(&self) -> usize {
        self.frames.len()
    }

    /// Returns `true` if no frames are resident.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Bytes of unique page content resident in the pool.
    pub fn resident_bytes(&self) -> u64 {
        (self.frames.len() * PAGE_SIZE) as u64
    }

    /// Total mappings of pool frames across all address spaces: the sum
    /// of per-frame mapcounts (`strong_count - 1` excludes the pool's
    /// own reference).
    pub fn external_refs(&self) -> u64 {
        self.frames
            .values()
            .map(|f| (Arc::strong_count(f) - 1) as u64)
            .sum()
    }

    /// Drops frames no mapping references any more, returning how many
    /// were reclaimed. The kernel runs this after process teardown so
    /// an idle machine holds no snapshot memory.
    pub fn reclaim(&mut self) -> usize {
        let before = self.frames.len();
        self.frames.retain(|_, f| Arc::strong_count(f) > 1);
        before - self.frames.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(fill: u8) -> Page {
        Page::from_bytes(&[fill; PAGE_SIZE])
    }

    #[test]
    fn identical_hashes_share_one_frame() {
        let mut store = SharedPageStore::new();
        let a = store.get_or_insert(42, || page(1));
        let b = store.get_or_insert(42, || panic!("must not rebuild"));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(store.frame_count(), 1);
        assert_eq!(store.resident_bytes(), PAGE_SIZE as u64);
        assert_eq!(store.external_refs(), 2);
    }

    #[test]
    fn reclaim_drops_only_unreferenced_frames() {
        let mut store = SharedPageStore::new();
        let held = store.get_or_insert(1, || page(1));
        let dropped = store.get_or_insert(2, || page(2));
        drop(dropped);
        assert_eq!(store.frame_count(), 2);
        assert_eq!(store.reclaim(), 1);
        assert_eq!(store.frame_count(), 1);
        assert!(store.get(1).is_some());
        assert!(store.get(2).is_none());
        drop(held);
        assert_eq!(store.reclaim(), 1);
        assert!(store.is_empty());
        assert_eq!(store.external_refs(), 0);
    }
}
