//! Virtual memory areas.

use std::fmt;

use crate::mem::page::PAGE_SIZE;

/// A guest virtual address.
///
/// Newtype over `u64`; arithmetic helpers keep page math in one place.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtAddr(pub u64);

impl VirtAddr {
    /// The page index containing this address.
    pub const fn page_index(self) -> u64 {
        self.0 / PAGE_SIZE as u64
    }

    /// Offset of this address within its page.
    pub const fn page_offset(self) -> usize {
        (self.0 % PAGE_SIZE as u64) as usize
    }

    /// Rounds down to the containing page boundary.
    pub const fn page_align_down(self) -> VirtAddr {
        VirtAddr(self.0 & !(PAGE_SIZE as u64 - 1))
    }

    /// Returns `true` if the address is page-aligned.
    pub const fn is_page_aligned(self) -> bool {
        self.0.is_multiple_of(PAGE_SIZE as u64)
    }

    /// Byte offset addition.
    pub const fn add(self, offset: u64) -> VirtAddr {
        VirtAddr(self.0 + offset)
    }
}

impl fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#014x}", self.0)
    }
}

/// Memory protection bits for a mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Prot {
    /// Readable.
    pub read: bool,
    /// Writable.
    pub write: bool,
    /// Executable.
    pub exec: bool,
}

impl Prot {
    /// `r--`
    pub const R: Prot = Prot {
        read: true,
        write: false,
        exec: false,
    };
    /// `rw-`
    pub const RW: Prot = Prot {
        read: true,
        write: true,
        exec: false,
    };
    /// `r-x`
    pub const RX: Prot = Prot {
        read: true,
        write: false,
        exec: true,
    };
    /// `rwx`
    pub const RWX: Prot = Prot {
        read: true,
        write: true,
        exec: true,
    };

    /// `/proc/<pid>/maps`-style rendering (`rw-p`).
    pub fn render(&self) -> String {
        format!(
            "{}{}{}p",
            if self.read { 'r' } else { '-' },
            if self.write { 'w' } else { '-' },
            if self.exec { 'x' } else { '-' },
        )
    }
}

impl fmt::Display for Prot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// What backs a mapping. The checkpoint engine treats kinds differently:
/// file-backed clean pages can be re-faulted from the file, while
/// anonymous and dirtied pages must travel in the image.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum VmaKind {
    /// Anonymous memory (heap arenas, malloc'd buffers).
    Anon,
    /// The process stack.
    Stack,
    /// Program text/data mapped from a binary.
    Binary {
        /// Guest path of the executable.
        path: String,
    },
    /// A file mapping (e.g. an application archive mapped by the runtime).
    File {
        /// Guest path of the mapped file.
        path: String,
        /// Byte offset of the mapping within the file.
        offset: u64,
    },
    /// Managed-runtime heap.
    RuntimeHeap,
    /// Managed-runtime metaspace (loaded class representations).
    Metaspace,
    /// JIT code cache.
    CodeCache,
    /// Scratch region injected by the checkpointer (parasite code).
    Parasite,
}

impl VmaKind {
    /// Label rendered in `/proc/<pid>/maps`.
    pub fn label(&self) -> String {
        match self {
            VmaKind::Anon => String::new(),
            VmaKind::Stack => "[stack]".to_owned(),
            VmaKind::Binary { path } => path.clone(),
            VmaKind::File { path, .. } => path.clone(),
            VmaKind::RuntimeHeap => "[runtime:heap]".to_owned(),
            VmaKind::Metaspace => "[runtime:metaspace]".to_owned(),
            VmaKind::CodeCache => "[runtime:codecache]".to_owned(),
            VmaKind::Parasite => "[criu:parasite]".to_owned(),
        }
    }
}

/// A contiguous mapping in a process address space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Vma {
    /// First address of the mapping (page-aligned).
    pub start: VirtAddr,
    /// Length in bytes (page-aligned).
    pub len: u64,
    /// Protection bits.
    pub prot: Prot,
    /// Backing kind.
    pub kind: VmaKind,
}

impl Vma {
    /// One-past-the-end address.
    pub fn end(&self) -> VirtAddr {
        VirtAddr(self.start.0 + self.len)
    }

    /// Number of pages spanned.
    pub fn page_count(&self) -> u64 {
        self.len / PAGE_SIZE as u64
    }

    /// First page index.
    pub fn first_page(&self) -> u64 {
        self.start.page_index()
    }

    /// Returns `true` if `addr` falls inside this mapping.
    pub fn contains(&self, addr: VirtAddr) -> bool {
        addr >= self.start && addr < self.end()
    }

    /// Returns `true` if the byte range `[addr, addr+len)` is fully inside.
    pub fn contains_range(&self, addr: VirtAddr, len: u64) -> bool {
        addr >= self.start && addr.0 + len <= self.end().0
    }

    /// Returns `true` if two mappings overlap.
    pub fn overlaps(&self, other: &Vma) -> bool {
        self.start < other.end() && other.start < self.end()
    }
}

impl fmt::Display for Vma {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:012x}-{:012x} {} {}",
            self.start.0,
            self.end().0,
            self.prot,
            self.kind.label()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vma(start: u64, len: u64) -> Vma {
        Vma {
            start: VirtAddr(start),
            len,
            prot: Prot::RW,
            kind: VmaKind::Anon,
        }
    }

    #[test]
    fn virt_addr_page_math() {
        let a = VirtAddr(0x5003);
        assert_eq!(a.page_index(), 5);
        assert_eq!(a.page_offset(), 3);
        assert_eq!(a.page_align_down(), VirtAddr(0x5000));
        assert!(!a.is_page_aligned());
        assert!(VirtAddr(0x5000).is_page_aligned());
    }

    #[test]
    fn vma_contains() {
        let v = vma(0x1000, 0x2000);
        assert!(v.contains(VirtAddr(0x1000)));
        assert!(v.contains(VirtAddr(0x2FFF)));
        assert!(!v.contains(VirtAddr(0x3000)));
        assert!(!v.contains(VirtAddr(0xFFF)));
    }

    #[test]
    fn vma_contains_range() {
        let v = vma(0x1000, 0x2000);
        assert!(v.contains_range(VirtAddr(0x1000), 0x2000));
        assert!(!v.contains_range(VirtAddr(0x1000), 0x2001));
        assert!(v.contains_range(VirtAddr(0x2FFF), 1));
    }

    #[test]
    fn vma_overlap() {
        let a = vma(0x1000, 0x2000);
        assert!(a.overlaps(&vma(0x2000, 0x2000)));
        assert!(!a.overlaps(&vma(0x3000, 0x1000)));
        assert!(a.overlaps(&vma(0x0, 0x1001)));
        assert!(!a.overlaps(&vma(0x0, 0x1000)));
    }

    #[test]
    fn prot_renders_like_proc_maps() {
        assert_eq!(Prot::RW.render(), "rw-p");
        assert_eq!(Prot::RX.render(), "r-xp");
        assert_eq!(Prot::R.render(), "r--p");
        assert_eq!(Prot::RWX.render(), "rwxp");
    }

    #[test]
    fn kind_labels() {
        assert_eq!(VmaKind::Stack.label(), "[stack]");
        assert_eq!(
            VmaKind::Binary {
                path: "/bin/jlvm".into()
            }
            .label(),
            "/bin/jlvm"
        );
        assert_eq!(VmaKind::Anon.label(), "");
    }

    #[test]
    fn vma_display_mentions_range() {
        let v = vma(0x1000, 0x1000);
        let s = v.to_string();
        assert!(s.contains("000000001000-000000002000"), "{s}");
        assert!(s.contains("rw-p"));
    }
}
