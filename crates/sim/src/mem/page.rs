//! Guest physical pages.

use std::fmt;

/// Size of a guest page in bytes (matches Linux on x86-64).
pub const PAGE_SIZE: usize = 4096;

/// Bit shift from byte address to page index.
pub const PAGE_SHIFT: u32 = 12;

/// Rounds `len` up to a whole number of pages.
pub const fn pages_for(len: u64) -> u64 {
    len.div_ceil(PAGE_SIZE as u64)
}

/// A 4 KiB guest page with real backing bytes.
///
/// Pages materialise on first write (anonymous memory reads as zeros until
/// then), exactly like demand-zero faulting. The checkpoint engine walks
/// materialised pages only — the same visibility `/proc/<pid>/pagemap`
/// gives the real CRIU.
#[derive(Clone, PartialEq, Eq)]
pub struct Page {
    data: Box<[u8; PAGE_SIZE]>,
}

impl Page {
    /// A fresh zero-filled page.
    pub fn zeroed() -> Self {
        Page {
            data: Box::new([0u8; PAGE_SIZE]),
        }
    }

    /// Builds a page from a full page of bytes.
    pub fn from_bytes(bytes: &[u8; PAGE_SIZE]) -> Self {
        Page {
            data: Box::new(*bytes),
        }
    }

    /// Read-only view of the page contents.
    pub fn bytes(&self) -> &[u8; PAGE_SIZE] {
        &self.data
    }

    /// Mutable view of the page contents.
    pub fn bytes_mut(&mut self) -> &mut [u8; PAGE_SIZE] {
        &mut self.data
    }

    /// Returns `true` if every byte is zero. The dump path uses this for
    /// zero-page deduplication (CRIU's `zero page` optimisation).
    pub fn is_zero(&self) -> bool {
        // Compare 8 bytes at a time; pages are always 8-aligned in length.
        self.data
            .chunks_exact(8)
            .all(|c| u64::from_ne_bytes(c.try_into().unwrap()) == 0)
    }
}

impl Default for Page {
    fn default() -> Self {
        Page::zeroed()
    }
}

impl fmt::Debug for Page {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let nonzero = self.data.iter().filter(|&&b| b != 0).count();
        write!(f, "Page {{ nonzero_bytes: {nonzero} }}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_page_is_zero() {
        assert!(Page::zeroed().is_zero());
    }

    #[test]
    fn written_page_is_not_zero() {
        let mut p = Page::zeroed();
        p.bytes_mut()[100] = 1;
        assert!(!p.is_zero());
        p.bytes_mut()[100] = 0;
        assert!(p.is_zero());
    }

    #[test]
    fn last_byte_detected() {
        let mut p = Page::zeroed();
        p.bytes_mut()[PAGE_SIZE - 1] = 0xFF;
        assert!(!p.is_zero());
    }

    #[test]
    fn from_bytes_roundtrip() {
        let mut raw = [0u8; PAGE_SIZE];
        for (i, b) in raw.iter_mut().enumerate() {
            *b = (i % 251) as u8;
        }
        let p = Page::from_bytes(&raw);
        assert_eq!(p.bytes(), &raw);
    }

    #[test]
    fn pages_for_rounds_up() {
        assert_eq!(pages_for(0), 0);
        assert_eq!(pages_for(1), 1);
        assert_eq!(pages_for(PAGE_SIZE as u64), 1);
        assert_eq!(pages_for(PAGE_SIZE as u64 + 1), 2);
        assert_eq!(pages_for(10 * PAGE_SIZE as u64), 10);
    }

    #[test]
    fn debug_is_nonempty() {
        let s = format!("{:?}", Page::zeroed());
        assert!(s.contains("Page"));
    }
}
