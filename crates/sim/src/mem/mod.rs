//! Guest memory: pages, virtual memory areas and address spaces.

pub mod page;
pub mod space;
pub mod vma;

pub use page::{pages_for, Page, PAGE_SHIFT, PAGE_SIZE};
pub use space::{AddressSpace, TouchStats, MMAP_BASE};
pub use vma::{Prot, VirtAddr, Vma, VmaKind};
