//! Per-process address spaces.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::error::{Errno, SysResult};
use crate::mem::page::{pages_for, Page, PAGE_SIZE};
use crate::mem::vma::{Prot, VirtAddr, Vma, VmaKind};

/// Lowest address handed out by the allocating `mmap`.
pub const MMAP_BASE: u64 = 0x0000_1000_0000;

/// Page-touch statistics returned by memory accessors so the kernel can
/// charge fault and copy costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TouchStats {
    /// Pages the access spanned.
    pub pages_touched: u64,
    /// Pages that had to be materialised (first write — a minor fault).
    pub pages_materialized: u64,
    /// Shared frames that were broken (first write to a copy-on-write
    /// page — the deferred private copy was paid here).
    pub cow_broken: u64,
}

impl TouchStats {
    /// Accumulates another access's statistics.
    pub fn merge(&mut self, other: TouchStats) {
        self.pages_touched += other.pages_touched;
        self.pages_materialized += other.pages_materialized;
        self.cow_broken += other.cow_broken;
    }
}

/// A process's virtual address space: a set of non-overlapping [`Vma`]s and
/// the materialised [`Page`]s behind them.
///
/// Reads of mapped-but-untouched pages observe zeros (demand-zero
/// semantics); writes materialise pages. The checkpoint engine only sees
/// materialised pages, which is exactly the `/proc/<pid>/pagemap` view the
/// real CRIU uses.
#[derive(Debug, Clone, Default)]
pub struct AddressSpace {
    vmas: BTreeMap<u64, Vma>,
    pages: BTreeMap<u64, Page>,
    /// Shared, write-protected frames mapped copy-on-write from a page
    /// store (the memfd/KSM analogue). Reads go through the shared
    /// frame; the first write breaks the mapping into a private page in
    /// `pages`. Frames are reference-counted via [`Arc`]: dropping the
    /// mapping (munmap/exit) releases this space's reference.
    cow: BTreeMap<u64, Arc<Page>>,
    /// Soft-dirty set: pages written since the last
    /// [`clear_soft_dirty`](AddressSpace::clear_soft_dirty) — the
    /// `/proc/<pid>/clear_refs` + pagemap soft-dirty mechanism CRIU's
    /// incremental pre-dump relies on.
    dirty: std::collections::BTreeSet<u64>,
    /// Pages mapped `MAP_MISSING`: inside a VMA but with their content
    /// held back by a demand-paging backend (the `userfaultfd` analogue).
    /// Touching one without resolving it first is a fault; the kernel
    /// resolves them through its registered fault handler.
    missing: std::collections::BTreeSet<u64>,
    next_map: u64,
}

impl AddressSpace {
    /// An empty address space.
    pub fn new() -> Self {
        AddressSpace {
            vmas: BTreeMap::new(),
            pages: BTreeMap::new(),
            cow: BTreeMap::new(),
            dirty: std::collections::BTreeSet::new(),
            missing: std::collections::BTreeSet::new(),
            next_map: MMAP_BASE,
        }
    }

    /// Number of mappings.
    pub fn vma_count(&self) -> usize {
        self.vmas.len()
    }

    /// Iterates over mappings in address order.
    pub fn vmas(&self) -> impl Iterator<Item = &Vma> {
        self.vmas.values()
    }

    /// Looks up the mapping containing `addr`.
    pub fn find_vma(&self, addr: VirtAddr) -> Option<&Vma> {
        self.vmas
            .range(..=addr.0)
            .next_back()
            .map(|(_, v)| v)
            .filter(|v| v.contains(addr))
    }

    /// Maps `len` bytes (rounded up to pages) at an allocator-chosen
    /// address.
    ///
    /// # Errors
    ///
    /// Returns [`Errno::Einval`] if `len` is zero.
    pub fn mmap(&mut self, len: u64, prot: Prot, kind: VmaKind) -> SysResult<VirtAddr> {
        if len == 0 {
            return Err(Errno::Einval);
        }
        let len = pages_for(len) * PAGE_SIZE as u64;
        let start = VirtAddr(self.next_map);
        self.next_map += len + PAGE_SIZE as u64; // guard page gap
        let vma = Vma {
            start,
            len,
            prot,
            kind,
        };
        debug_assert!(self.vmas.values().all(|v| !v.overlaps(&vma)));
        self.vmas.insert(start.0, vma);
        Ok(start)
    }

    /// Maps `len` bytes at a fixed address (the restore path re-creates
    /// mappings at their checkpointed addresses).
    ///
    /// # Errors
    ///
    /// Returns [`Errno::Einval`] for zero length or unaligned `start`, and
    /// [`Errno::Eexist`] if the range overlaps an existing mapping.
    pub fn mmap_fixed(
        &mut self,
        start: VirtAddr,
        len: u64,
        prot: Prot,
        kind: VmaKind,
    ) -> SysResult<VirtAddr> {
        if len == 0 || !start.is_page_aligned() {
            return Err(Errno::Einval);
        }
        let len = pages_for(len) * PAGE_SIZE as u64;
        let vma = Vma {
            start,
            len,
            prot,
            kind,
        };
        if self.vmas.values().any(|v| v.overlaps(&vma)) {
            return Err(Errno::Eexist);
        }
        // Keep the allocator clear of fixed mappings.
        self.next_map = self.next_map.max(start.0 + len + PAGE_SIZE as u64);
        self.vmas.insert(start.0, vma);
        Ok(start)
    }

    /// Unmaps the mapping starting exactly at `start`, dropping its pages.
    ///
    /// # Errors
    ///
    /// Returns [`Errno::Einval`] if no mapping starts at `start`.
    pub fn munmap(&mut self, start: VirtAddr) -> SysResult<Vma> {
        let vma = self.vmas.remove(&start.0).ok_or(Errno::Einval)?;
        let first = vma.first_page();
        let last = first + vma.page_count();
        let stale: Vec<u64> = self.pages.range(first..last).map(|(k, _)| *k).collect();
        for k in stale {
            self.pages.remove(&k);
            self.dirty.remove(&k);
        }
        let shared: Vec<u64> = self.cow.range(first..last).map(|(k, _)| *k).collect();
        for k in shared {
            self.cow.remove(&k);
            self.dirty.remove(&k);
        }
        let gone: Vec<u64> = self.missing.range(first..last).copied().collect();
        for k in gone {
            self.missing.remove(&k);
        }
        Ok(vma)
    }

    /// Writes `bytes` at `addr`, materialising pages as needed.
    ///
    /// # Errors
    ///
    /// [`Errno::Efault`] if the range is not fully mapped, [`Errno::Eperm`]
    /// if the mapping is not writable.
    pub fn write(&mut self, addr: VirtAddr, bytes: &[u8]) -> SysResult<TouchStats> {
        self.check_range(addr, bytes.len() as u64, true)?;
        self.check_resolved(addr, bytes.len() as u64)?;
        let mut stats = TouchStats::default();
        let mut off = 0usize;
        let mut cur = addr;
        while off < bytes.len() {
            let page_idx = cur.page_index();
            let in_page = cur.page_offset();
            let chunk = (PAGE_SIZE - in_page).min(bytes.len() - off);
            if let Some(frame) = self.cow.remove(&page_idx) {
                // Write-protect fault on a shared frame: break the
                // mapping into a private copy before the write lands.
                self.pages.insert(page_idx, frame.as_ref().clone());
                stats.cow_broken += 1;
            }
            let page = self.pages.entry(page_idx).or_insert_with(|| {
                stats.pages_materialized += 1;
                Page::zeroed()
            });
            page.bytes_mut()[in_page..in_page + chunk].copy_from_slice(&bytes[off..off + chunk]);
            self.dirty.insert(page_idx);
            stats.pages_touched += 1;
            off += chunk;
            cur = cur.add(chunk as u64);
        }
        Ok(stats)
    }

    /// Reads `len` bytes at `addr`. Unmaterialised pages read as zeros.
    ///
    /// # Errors
    ///
    /// [`Errno::Efault`] if the range is not fully mapped.
    pub fn read(&self, addr: VirtAddr, len: u64) -> SysResult<(Vec<u8>, TouchStats)> {
        self.check_range(addr, len, false)?;
        self.check_resolved(addr, len)?;
        let mut out = vec![0u8; len as usize];
        let mut stats = TouchStats::default();
        let mut off = 0usize;
        let mut cur = addr;
        while off < len as usize {
            let page_idx = cur.page_index();
            let in_page = cur.page_offset();
            let chunk = (PAGE_SIZE - in_page).min(len as usize - off);
            if let Some(page) = self.page(page_idx) {
                out[off..off + chunk].copy_from_slice(&page.bytes()[in_page..in_page + chunk]);
            }
            stats.pages_touched += 1;
            off += chunk;
            cur = cur.add(chunk as u64);
        }
        Ok((out, stats))
    }

    /// Direct view of one resident page — private or shared — if present.
    pub fn page(&self, page_index: u64) -> Option<&Page> {
        self.pages
            .get(&page_index)
            .or_else(|| self.cow.get(&page_index).map(Arc::as_ref))
    }

    /// Installs a full page of bytes (restore fast path). Clears any
    /// `missing` mark on the page — this is how a demand-paging fault is
    /// resolved (`UFFDIO_COPY`).
    ///
    /// # Errors
    ///
    /// [`Errno::Efault`] if the page is not inside any mapping.
    pub fn install_page(&mut self, page_index: u64, page: Page) -> SysResult<()> {
        let addr = VirtAddr(page_index * PAGE_SIZE as u64);
        if self.find_vma(addr).is_none() {
            return Err(Errno::Efault);
        }
        self.missing.remove(&page_index);
        self.cow.remove(&page_index);
        self.pages.insert(page_index, page);
        self.dirty.insert(page_index);
        Ok(())
    }

    /// Maps a shared frame at `page_index` copy-on-write: reads observe
    /// the frame's content, the first write breaks it into a private
    /// copy. Clears any `missing` mark — a shared mapping *is* resident.
    /// This is the restore-time `mmap(MAP_PRIVATE)`-over-memfd analogue.
    ///
    /// # Errors
    ///
    /// [`Errno::Efault`] if the page is not inside any mapping,
    /// [`Errno::Eexist`] if a private page is already materialised there.
    pub fn map_shared(&mut self, page_index: u64, frame: Arc<Page>) -> SysResult<()> {
        let addr = VirtAddr(page_index * PAGE_SIZE as u64);
        if self.find_vma(addr).is_none() {
            return Err(Errno::Efault);
        }
        if self.pages.contains_key(&page_index) {
            return Err(Errno::Eexist);
        }
        self.missing.remove(&page_index);
        self.cow.insert(page_index, frame);
        self.dirty.insert(page_index);
        Ok(())
    }

    /// Returns `true` if the page is a shared (unbroken) CoW mapping.
    pub fn is_cow(&self, page_index: u64) -> bool {
        self.cow.contains_key(&page_index)
    }

    /// Shared frames still mapped copy-on-write (not yet broken).
    pub fn cow_pages(&self) -> u64 {
        self.cow.len() as u64
    }

    /// Marks a mapped page as `missing`: its content is held by a
    /// demand-paging backend and any touch must first resolve it via
    /// [`install_page`](AddressSpace::install_page). This is the
    /// `UFFDIO_REGISTER` analogue, applied per page.
    ///
    /// # Errors
    ///
    /// [`Errno::Efault`] if the page is not inside any mapping,
    /// [`Errno::Eexist`] if the page is already materialised.
    pub fn mark_missing(&mut self, page_index: u64) -> SysResult<()> {
        let addr = VirtAddr(page_index * PAGE_SIZE as u64);
        if self.find_vma(addr).is_none() {
            return Err(Errno::Efault);
        }
        if self.pages.contains_key(&page_index) || self.cow.contains_key(&page_index) {
            return Err(Errno::Eexist);
        }
        self.missing.insert(page_index);
        Ok(())
    }

    /// Returns `true` if the page is marked missing.
    pub fn is_missing(&self, page_index: u64) -> bool {
        self.missing.contains(&page_index)
    }

    /// Missing page indices intersecting `[addr, addr + len)`, ascending.
    pub fn missing_in_range(&self, addr: VirtAddr, len: u64) -> Vec<u64> {
        if len == 0 || self.missing.is_empty() {
            return Vec::new();
        }
        let first = addr.page_index();
        let last = VirtAddr(addr.0 + len - 1).page_index() + 1;
        self.missing.range(first..last).copied().collect()
    }

    /// Total pages currently marked missing.
    pub fn missing_pages(&self) -> u64 {
        self.missing.len() as u64
    }

    fn check_resolved(&self, addr: VirtAddr, len: u64) -> SysResult<()> {
        if self.missing_in_range(addr, len).is_empty() {
            Ok(())
        } else {
            // A touch of an unresolved missing page. The kernel resolves
            // faults before calling in here; hitting this means the caller
            // bypassed fault delivery.
            Err(Errno::Efault)
        }
    }

    /// Clears the soft-dirty bits (`echo 4 > /proc/<pid>/clear_refs`).
    /// Subsequent writes re-mark pages dirty.
    pub fn clear_soft_dirty(&mut self) {
        self.dirty.clear();
    }

    /// Page indices materialised within `vma` that were written since the
    /// last [`clear_soft_dirty`](AddressSpace::clear_soft_dirty) —
    /// the pagemap soft-dirty view CRIU's incremental dump consumes.
    pub fn soft_dirty_pages(&self, vma: &Vma) -> Vec<u64> {
        let first = vma.first_page();
        let last = first + vma.page_count();
        self.dirty.range(first..last).copied().collect()
    }

    /// Returns `true` if the page was written since the last soft-dirty
    /// clear.
    pub fn is_soft_dirty(&self, page_index: u64) -> bool {
        self.dirty.contains(&page_index)
    }

    /// Page indices resident within `vma` — private or shared —
    /// ascending: the `/proc/<pid>/pagemap` "present" view.
    pub fn present_pages(&self, vma: &Vma) -> Vec<u64> {
        let first = vma.first_page();
        let last = first + vma.page_count();
        let mut present: Vec<u64> = self
            .pages
            .range(first..last)
            .map(|(k, _)| *k)
            .chain(self.cow.range(first..last).map(|(k, _)| *k))
            .collect();
        present.sort_unstable();
        present
    }

    /// Total resident pages across the space (shared frames included:
    /// they are mapped and readable, like RSS counts shared memory).
    pub fn resident_pages(&self) -> u64 {
        (self.pages.len() + self.cow.len()) as u64
    }

    /// Total materialised bytes (RSS analogue).
    pub fn resident_bytes(&self) -> u64 {
        self.resident_pages() * PAGE_SIZE as u64
    }

    /// Total mapped bytes (VSZ analogue).
    pub fn mapped_bytes(&self) -> u64 {
        self.vmas.values().map(|v| v.len).sum()
    }

    fn check_range(&self, addr: VirtAddr, len: u64, need_write: bool) -> SysResult<()> {
        if len == 0 {
            return Ok(());
        }
        // The range may span several contiguous VMAs.
        let mut cur = addr;
        let end = addr.0 + len;
        while cur.0 < end {
            let vma = self.find_vma(cur).ok_or(Errno::Efault)?;
            if need_write && !vma.prot.write {
                return Err(Errno::Eperm);
            }
            cur = vma.end();
        }
        Ok(())
    }

    /// Structural equality of *observable* memory: same mappings and same
    /// byte content (materialised zero pages compare equal to absent
    /// pages). Used by tests to prove dump→restore fidelity.
    pub fn observably_equal(&self, other: &AddressSpace) -> bool {
        if self.vmas != other.vmas {
            return false;
        }
        let all_indices: std::collections::BTreeSet<u64> = self
            .pages
            .keys()
            .chain(other.pages.keys())
            .chain(self.cow.keys())
            .chain(other.cow.keys())
            .copied()
            .collect();
        let zero = Page::zeroed();
        for idx in all_indices {
            let a = self.page(idx).unwrap_or(&zero);
            let b = other.page(idx).unwrap_or(&zero);
            if a != b {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space_with_map(len: u64) -> (AddressSpace, VirtAddr) {
        let mut s = AddressSpace::new();
        let a = s.mmap(len, Prot::RW, VmaKind::Anon).unwrap();
        (s, a)
    }

    #[test]
    fn mmap_rounds_to_pages() {
        let (s, a) = space_with_map(100);
        let vma = s.find_vma(a).unwrap();
        assert_eq!(vma.len, PAGE_SIZE as u64);
    }

    #[test]
    fn mmap_zero_len_is_einval() {
        let mut s = AddressSpace::new();
        assert_eq!(s.mmap(0, Prot::RW, VmaKind::Anon), Err(Errno::Einval));
    }

    #[test]
    fn mappings_never_overlap() {
        let mut s = AddressSpace::new();
        let mut vmas = Vec::new();
        for i in 1..=16 {
            let a = s.mmap(i * 1000, Prot::RW, VmaKind::Anon).unwrap();
            vmas.push(s.find_vma(a).unwrap().clone());
        }
        for (i, a) in vmas.iter().enumerate() {
            for b in &vmas[i + 1..] {
                assert!(!a.overlaps(b));
            }
        }
    }

    #[test]
    fn write_then_read_roundtrip() {
        let (mut s, a) = space_with_map(3 * PAGE_SIZE as u64);
        let data: Vec<u8> = (0..9000).map(|i| (i % 255) as u8).collect();
        let stats = s.write(a.add(123), &data).unwrap();
        assert_eq!(stats.pages_materialized, 3);
        let (back, _) = s.read(a.add(123), 9000).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn unwritten_memory_reads_zero() {
        let (s, a) = space_with_map(PAGE_SIZE as u64);
        let (data, stats) = s.read(a, 64).unwrap();
        assert!(data.iter().all(|&b| b == 0));
        assert_eq!(stats.pages_touched, 1);
        assert_eq!(s.resident_pages(), 0, "read must not materialise");
    }

    #[test]
    fn unmapped_access_faults() {
        let (mut s, a) = space_with_map(PAGE_SIZE as u64);
        assert_eq!(s.read(VirtAddr(0x10), 1).unwrap_err(), Errno::Efault);
        assert_eq!(
            s.write(a, &vec![0u8; PAGE_SIZE + 1]).unwrap_err(),
            Errno::Efault,
            "write past end of mapping"
        );
    }

    #[test]
    fn write_to_readonly_is_eperm() {
        let mut s = AddressSpace::new();
        let a = s.mmap(PAGE_SIZE as u64, Prot::R, VmaKind::Anon).unwrap();
        assert_eq!(s.write(a, b"x").unwrap_err(), Errno::Eperm);
    }

    #[test]
    fn write_spanning_contiguous_vmas() {
        let mut s = AddressSpace::new();
        let a = s
            .mmap_fixed(VirtAddr(0x10000), PAGE_SIZE as u64, Prot::RW, VmaKind::Anon)
            .unwrap();
        s.mmap_fixed(
            VirtAddr(0x10000 + PAGE_SIZE as u64),
            PAGE_SIZE as u64,
            Prot::RW,
            VmaKind::Anon,
        )
        .unwrap();
        let data = vec![7u8; PAGE_SIZE + 100];
        s.write(a, &data).unwrap();
        let (back, _) = s.read(a, data.len() as u64).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn munmap_drops_pages() {
        let (mut s, a) = space_with_map(2 * PAGE_SIZE as u64);
        s.write(a, &[1u8; 100]).unwrap();
        assert_eq!(s.resident_pages(), 1);
        s.munmap(a).unwrap();
        assert_eq!(s.resident_pages(), 0);
        assert!(s.find_vma(a).is_none());
        assert_eq!(s.munmap(a).unwrap_err(), Errno::Einval);
    }

    #[test]
    fn mmap_fixed_rejects_overlap() {
        let mut s = AddressSpace::new();
        s.mmap_fixed(VirtAddr(0x20000), 0x2000, Prot::RW, VmaKind::Anon)
            .unwrap();
        assert_eq!(
            s.mmap_fixed(VirtAddr(0x21000), 0x1000, Prot::RW, VmaKind::Anon)
                .unwrap_err(),
            Errno::Eexist
        );
        assert_eq!(
            s.mmap_fixed(VirtAddr(0x21001), 0x1000, Prot::RW, VmaKind::Anon)
                .unwrap_err(),
            Errno::Einval,
            "unaligned fixed mapping"
        );
    }

    #[test]
    fn allocator_avoids_fixed_mappings() {
        let mut s = AddressSpace::new();
        s.mmap_fixed(
            VirtAddr(MMAP_BASE + 0x100000),
            0x1000,
            Prot::RW,
            VmaKind::Anon,
        )
        .unwrap();
        // Subsequent dynamic mappings must not collide.
        for _ in 0..64 {
            s.mmap(0x10000, Prot::RW, VmaKind::Anon).unwrap();
        }
        let vmas: Vec<Vma> = s.vmas().cloned().collect();
        for (i, a) in vmas.iter().enumerate() {
            for b in &vmas[i + 1..] {
                assert!(!a.overlaps(b), "{a} overlaps {b}");
            }
        }
    }

    #[test]
    fn present_pages_reports_only_materialised() {
        let (mut s, a) = space_with_map(4 * PAGE_SIZE as u64);
        s.write(a.add(PAGE_SIZE as u64), &[9u8; 10]).unwrap();
        s.write(a.add(3 * PAGE_SIZE as u64), &[9u8; 10]).unwrap();
        let vma = s.find_vma(a).unwrap().clone();
        let present = s.present_pages(&vma);
        assert_eq!(present.len(), 2);
        assert_eq!(present[0], a.page_index() + 1);
        assert_eq!(present[1], a.page_index() + 3);
    }

    #[test]
    fn observably_equal_ignores_zero_materialisation() {
        let (mut s1, a1) = space_with_map(PAGE_SIZE as u64);
        let (mut s2, _a2) = space_with_map(PAGE_SIZE as u64);
        // s1 materialises a page with zeros; s2 leaves it demand-zero.
        s1.write(a1, &[0u8; 8]).unwrap();
        assert!(s1.observably_equal(&s2));
        s2.write(a1, &[1u8; 8]).unwrap();
        assert!(!s1.observably_equal(&s2));
    }

    #[test]
    fn resident_and_mapped_bytes() {
        let (mut s, a) = space_with_map(8 * PAGE_SIZE as u64);
        assert_eq!(s.mapped_bytes(), 8 * PAGE_SIZE as u64);
        assert_eq!(s.resident_bytes(), 0);
        s.write(a, &vec![1u8; 2 * PAGE_SIZE]).unwrap();
        assert_eq!(s.resident_bytes(), 2 * PAGE_SIZE as u64);
    }

    #[test]
    fn soft_dirty_tracks_writes_since_clear() {
        let (mut s, a) = space_with_map(4 * PAGE_SIZE as u64);
        s.write(a, &[1u8; 10]).unwrap();
        s.write(a.add(2 * PAGE_SIZE as u64), &[2u8; 10]).unwrap();
        let vma = s.find_vma(a).unwrap().clone();
        assert_eq!(s.soft_dirty_pages(&vma).len(), 2);
        assert!(s.is_soft_dirty(a.page_index()));

        s.clear_soft_dirty();
        assert!(s.soft_dirty_pages(&vma).is_empty());
        assert!(!s.is_soft_dirty(a.page_index()));

        // Re-writing one page re-marks only that page.
        s.write(a.add(2 * PAGE_SIZE as u64), &[3u8; 10]).unwrap();
        assert_eq!(s.soft_dirty_pages(&vma), vec![a.page_index() + 2]);
        // present set is unchanged
        assert_eq!(s.present_pages(&vma).len(), 2);
    }

    #[test]
    fn munmap_clears_dirty_bits() {
        let (mut s, a) = space_with_map(PAGE_SIZE as u64);
        s.write(a, &[1u8]).unwrap();
        s.munmap(a).unwrap();
        let b = s.mmap(PAGE_SIZE as u64, Prot::RW, VmaKind::Anon).unwrap();
        let vma = s.find_vma(b).unwrap().clone();
        assert!(s.soft_dirty_pages(&vma).is_empty());
    }

    #[test]
    fn install_page_marks_dirty() {
        let (mut s, a) = space_with_map(PAGE_SIZE as u64);
        s.install_page(a.page_index(), Page::zeroed()).unwrap();
        assert!(s.is_soft_dirty(a.page_index()));
    }

    #[test]
    fn missing_pages_fault_until_installed() {
        let (mut s, a) = space_with_map(4 * PAGE_SIZE as u64);
        let idx = a.page_index() + 1;
        s.mark_missing(idx).unwrap();
        assert!(s.is_missing(idx));
        assert_eq!(s.missing_pages(), 1);

        // Touching the missing page faults; untouched pages still work.
        assert_eq!(
            s.read(a.add(PAGE_SIZE as u64), 8).unwrap_err(),
            Errno::Efault
        );
        assert_eq!(
            s.write(a.add(PAGE_SIZE as u64), &[1]).unwrap_err(),
            Errno::Efault
        );
        s.read(a, 8).unwrap();

        // A spanning access reports the missing page.
        assert_eq!(
            s.missing_in_range(a, 2 * PAGE_SIZE as u64),
            vec![idx],
            "range walk finds the hole"
        );
        assert!(s.missing_in_range(a, PAGE_SIZE as u64).is_empty());

        // Resolving via install_page clears the mark.
        s.install_page(idx, Page::from_bytes(&[3u8; PAGE_SIZE]))
            .unwrap();
        assert!(!s.is_missing(idx));
        let (back, _) = s.read(a.add(PAGE_SIZE as u64), 4).unwrap();
        assert_eq!(back, vec![3u8; 4]);
    }

    #[test]
    fn mark_missing_rejects_unmapped_and_materialised() {
        let (mut s, a) = space_with_map(PAGE_SIZE as u64);
        assert_eq!(s.mark_missing(9999999).unwrap_err(), Errno::Efault);
        s.write(a, &[1]).unwrap();
        assert_eq!(s.mark_missing(a.page_index()).unwrap_err(), Errno::Eexist);
    }

    #[test]
    fn munmap_clears_missing_marks() {
        let (mut s, a) = space_with_map(2 * PAGE_SIZE as u64);
        s.mark_missing(a.page_index()).unwrap();
        s.munmap(a).unwrap();
        assert_eq!(s.missing_pages(), 0);
    }

    #[test]
    fn install_page_requires_mapping() {
        let (mut s, a) = space_with_map(PAGE_SIZE as u64);
        assert!(s.install_page(a.page_index(), Page::zeroed()).is_ok());
        assert_eq!(
            s.install_page(9999999, Page::zeroed()).unwrap_err(),
            Errno::Efault
        );
    }

    fn frame(fill: u8) -> Arc<Page> {
        Arc::new(Page::from_bytes(&[fill; PAGE_SIZE]))
    }

    #[test]
    fn shared_frame_reads_through_until_broken() {
        let (mut s, a) = space_with_map(2 * PAGE_SIZE as u64);
        let f = frame(7);
        s.map_shared(a.page_index(), Arc::clone(&f)).unwrap();
        assert!(s.is_cow(a.page_index()));
        assert_eq!(s.cow_pages(), 1);
        assert_eq!(s.resident_pages(), 1);
        assert_eq!(Arc::strong_count(&f), 2, "space holds one reference");

        // Reads observe the shared content without breaking it.
        let (back, stats) = s.read(a, 8).unwrap();
        assert_eq!(back, vec![7u8; 8]);
        assert_eq!(stats.cow_broken, 0);
        assert!(s.is_cow(a.page_index()));

        // The first write breaks into a private copy preserving the
        // untouched bytes; the frame itself stays pristine.
        let stats = s.write(a.add(4), &[9u8; 4]).unwrap();
        assert_eq!(stats.cow_broken, 1);
        assert_eq!(stats.pages_materialized, 0);
        assert!(!s.is_cow(a.page_index()));
        assert_eq!(Arc::strong_count(&f), 1, "reference released on break");
        let (back, _) = s.read(a, 12).unwrap();
        assert_eq!(back, [vec![7u8; 4], vec![9u8; 4], vec![7u8; 4]].concat());
        assert!(f.bytes().iter().all(|&b| b == 7), "frame unmodified");

        // A second write to the now-private page breaks nothing.
        let stats = s.write(a, &[1u8]).unwrap();
        assert_eq!(stats.cow_broken, 0);
    }

    #[test]
    fn map_shared_rejects_unmapped_and_materialised() {
        let (mut s, a) = space_with_map(PAGE_SIZE as u64);
        assert_eq!(s.map_shared(9999999, frame(1)).unwrap_err(), Errno::Efault);
        s.write(a, &[1]).unwrap();
        assert_eq!(
            s.map_shared(a.page_index(), frame(1)).unwrap_err(),
            Errno::Eexist
        );
    }

    #[test]
    fn map_shared_resolves_missing_and_blocks_remarking() {
        let (mut s, a) = space_with_map(PAGE_SIZE as u64);
        s.mark_missing(a.page_index()).unwrap();
        s.map_shared(a.page_index(), frame(5)).unwrap();
        assert!(!s.is_missing(a.page_index()));
        assert_eq!(s.mark_missing(a.page_index()).unwrap_err(), Errno::Eexist);
    }

    #[test]
    fn munmap_releases_shared_frames() {
        let (mut s, a) = space_with_map(2 * PAGE_SIZE as u64);
        let f = frame(3);
        s.map_shared(a.page_index(), Arc::clone(&f)).unwrap();
        s.map_shared(a.page_index() + 1, Arc::clone(&f)).unwrap();
        assert_eq!(Arc::strong_count(&f), 3);
        s.munmap(a).unwrap();
        assert_eq!(Arc::strong_count(&f), 1, "munmap drops both references");
        assert_eq!(s.cow_pages(), 0);
    }

    #[test]
    fn present_and_observable_views_cover_shared_frames() {
        let (mut s1, a) = space_with_map(3 * PAGE_SIZE as u64);
        let (mut s2, _) = space_with_map(3 * PAGE_SIZE as u64);
        s1.map_shared(a.page_index() + 1, frame(4)).unwrap();
        s2.write(a.add(PAGE_SIZE as u64), &[4u8; PAGE_SIZE])
            .unwrap();

        let vma = s1.find_vma(a).unwrap().clone();
        assert_eq!(s1.present_pages(&vma), vec![a.page_index() + 1]);
        assert_eq!(s1.page(a.page_index() + 1).unwrap().bytes()[0], 4);
        assert!(
            s1.observably_equal(&s2),
            "shared frame equals the same bytes held privately"
        );
        s2.write(a.add(PAGE_SIZE as u64), &[9u8]).unwrap();
        assert!(!s1.observably_equal(&s2));
    }

    #[test]
    fn clone_shares_frames_not_copies() {
        let (mut s, a) = space_with_map(PAGE_SIZE as u64);
        let f = frame(8);
        s.map_shared(a.page_index(), Arc::clone(&f)).unwrap();
        let mut child = s.clone();
        assert_eq!(Arc::strong_count(&f), 3, "fork shares the frame");
        // The child's break leaves the parent's mapping shared.
        child.write(a, &[1u8]).unwrap();
        assert_eq!(Arc::strong_count(&f), 2);
        assert!(s.is_cow(a.page_index()));
        let (parent_view, _) = s.read(a, 1).unwrap();
        assert_eq!(parent_view, vec![8u8]);
    }
}
