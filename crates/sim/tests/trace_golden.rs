//! Golden test for the Chrome trace-event exporter: a hand-built span
//! tree must serialise to exactly these bytes, in this field order, with
//! non-decreasing `ts`. Perfetto and `chrome://tracing` both consume this
//! format, so the golden string doubles as the compatibility contract.

use prebake_sim::probe::{ProbeEvent, ProbeKind};
use prebake_sim::proc::Pid;
use prebake_sim::time::SimInstant;
use prebake_sim::trace::{chrome_trace_json, Tracer};

fn ns(n: u64) -> SimInstant {
    SimInstant::from_nanos(n)
}

/// The tree every assertion below runs against: a `startup` root with a
/// `sys_clone` child, bracketed by enter/exit probe annotations.
fn sample_tree() -> Vec<prebake_sim::TraceSpan> {
    let mut t = Tracer::new();
    t.set_enabled(true);
    let root = t.begin("startup", Pid(1), ns(1_500));
    t.annotate(ProbeEvent {
        time: ns(2_000),
        pid: Pid(2),
        kind: ProbeKind::SyscallEnter("clone"),
    });
    let child = t.begin("sys_clone", Pid(2), ns(2_000));
    t.attr(child, "pages", "3");
    t.end(child, ns(4_500));
    t.annotate(ProbeEvent {
        time: ns(4_500),
        pid: Pid(2),
        kind: ProbeKind::SyscallExit("clone"),
    });
    t.end(root, ns(10_250));
    t.take(ns(10_250))
}

#[test]
fn chrome_trace_json_matches_golden() {
    let json = chrome_trace_json(&sample_tree());
    let golden = concat!(
        "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[",
        "{\"name\":\"startup\",\"cat\":\"prebake\",\"ph\":\"X\",",
        "\"ts\":1.500,\"dur\":8.750,\"pid\":1,\"tid\":1,",
        "\"args\":{\"span\":1,\"parent\":0}},",
        "{\"name\":\"enter:clone\",\"cat\":\"probe\",\"ph\":\"i\",",
        "\"ts\":2.000,\"pid\":2,\"tid\":2,\"s\":\"t\"},",
        "{\"name\":\"sys_clone\",\"cat\":\"prebake\",\"ph\":\"X\",",
        "\"ts\":2.000,\"dur\":2.500,\"pid\":2,\"tid\":2,",
        "\"args\":{\"span\":2,\"parent\":1,\"pages\":\"3\"}},",
        "{\"name\":\"exit:clone\",\"cat\":\"probe\",\"ph\":\"i\",",
        "\"ts\":4.500,\"pid\":2,\"tid\":2,\"s\":\"t\"}",
        "]}"
    );
    assert_eq!(json, golden);
}

#[test]
fn chrome_trace_json_is_structurally_valid() {
    // A dependency-free JSON well-formedness check: every brace/bracket
    // balances outside strings, and strings close. Enough to catch any
    // escaping or interpolation regression in the hand-rolled writer.
    let json = chrome_trace_json(&sample_tree());
    let mut depth: i64 = 0;
    let mut in_string = false;
    let mut escaped = false;
    for c in json.chars() {
        if in_string {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' | '[' => depth += 1,
            '}' | ']' => {
                depth -= 1;
                assert!(depth >= 0, "unbalanced close in {json}");
            }
            _ => {}
        }
    }
    assert!(!in_string, "unterminated string");
    assert_eq!(depth, 0, "unbalanced braces");
}

#[test]
fn chrome_trace_json_ts_is_monotone() {
    let json = chrome_trace_json(&sample_tree());
    let mut last = f64::MIN;
    for part in json.split("\"ts\":").skip(1) {
        let end = part
            .find(|c: char| c != '.' && !c.is_ascii_digit())
            .unwrap_or(part.len());
        let ts: f64 = part[..end].parse().expect("ts parses as a number");
        assert!(ts >= last, "ts went backwards: {ts} after {last}");
        last = ts;
    }
    assert!(last > f64::MIN, "no ts fields found");
}

#[test]
fn chrome_trace_json_escapes_attribute_values() {
    let mut t = Tracer::new();
    t.set_enabled(true);
    let span = t.begin("startup", Pid(1), ns(0));
    t.attr(span, "note", "say \"hi\"\nback\\slash");
    t.end(span, ns(1_000));
    let json = chrome_trace_json(&t.take(ns(1_000)));
    assert!(json.contains("\"note\":\"say \\\"hi\\\"\\nback\\\\slash\""));
}

#[test]
fn empty_tree_exports_an_empty_event_list() {
    assert_eq!(
        chrome_trace_json(&[]),
        "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}"
    );
}
