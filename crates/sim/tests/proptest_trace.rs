//! Property tests for the tracer: any interleaving of begin/end/annotate
//! /take driven by a monotone clock yields well-formed span trees —
//! unique non-zero ids, children nested inside their parents, events
//! timestamped inside their span — and the critical-path summary
//! conserves wall time exactly.
//!
//! The vendored proptest stub has no combinators, so an op sequence is
//! sampled as `(opcode, operand)` pairs and decoded in [`replay`]:
//! opcodes 0-2 begin a span, 3-5 end one, 6-7 annotate, 8 drains.

use proptest::prelude::*;

use prebake_sim::probe::{ProbeEvent, ProbeKind};
use prebake_sim::proc::Pid;
use prebake_sim::time::{SimDuration, SimInstant};
use prebake_sim::trace::{chrome_trace_json, SpanId, TraceSpan, TraceSummary, Tracer};

const NAMES: [&str; 4] = ["alpha", "beta", "gamma", "delta"];

/// Replays an encoded op sequence against a tracer with a clock that
/// advances 1µs per step, returning every drained window.
fn replay(ops: &[(u8, usize)]) -> Vec<Vec<TraceSpan>> {
    let mut tracer = Tracer::new();
    tracer.set_enabled(true);
    let mut clock = 0u64;
    let mut now = move || {
        clock += 1_000;
        SimInstant::from_nanos(clock)
    };
    let mut ids: Vec<SpanId> = Vec::new();
    let mut windows = Vec::new();
    for &(opcode, operand) in ops {
        match opcode {
            0..=2 => {
                let t = now();
                ids.push(tracer.begin(NAMES[operand % NAMES.len()], Pid(1), t));
            }
            3..=5 => {
                // May pick an already-closed span: the tracer must treat
                // the second end as a no-op.
                if !ids.is_empty() {
                    let id = ids[operand % ids.len()];
                    let t = now();
                    tracer.end(id, t);
                }
            }
            6..=7 => {
                let t = now();
                tracer.annotate(ProbeEvent {
                    time: t,
                    pid: Pid(2),
                    kind: ProbeKind::marker("tick"),
                });
            }
            _ => {
                let t = now();
                windows.push(tracer.take(t));
            }
        }
    }
    let t = now();
    windows.push(tracer.take(t));
    windows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn recorded_trees_are_well_formed(
        ops in prop::collection::vec((0u8..9, 0..64usize), 0..120),
    ) {
        let windows = replay(&ops);

        // Ids are unique and non-zero across *all* windows.
        let mut seen = std::collections::BTreeSet::new();
        for span in windows.iter().flatten() {
            prop_assert!(!span.id.is_none(), "recorded span with NONE id");
            prop_assert!(seen.insert(span.id.as_u64()), "duplicate id {}", span.id.as_u64());
        }

        for window in &windows {
            let by_id: std::collections::BTreeMap<u64, &TraceSpan> =
                window.iter().map(|s| (s.id.as_u64(), s)).collect();
            for span in window {
                prop_assert!(span.end >= span.start, "negative duration on {}", span.name);
                if let Some(parent) = span.parent {
                    let parent = by_id
                        .get(&parent.as_u64())
                        .ok_or_else(|| TestCaseError::fail("dangling parent id"))?;
                    prop_assert!(parent.start <= span.start, "child starts before parent");
                    prop_assert!(parent.end >= span.end, "child outlives parent");
                }
                for event in &span.events {
                    prop_assert!(
                        event.time >= span.start && event.time <= span.end,
                        "annotation outside its span"
                    );
                }
            }
        }
    }

    #[test]
    fn summary_conserves_wall_time(
        ops in prop::collection::vec((0u8..9, 0..64usize), 0..120),
    ) {
        // Under stack discipline with a monotone clock, sibling spans
        // never overlap, so per-stage self times must sum back to the
        // root wall time exactly — any drift means the attribution
        // double-counts or loses time.
        for window in replay(&ops) {
            let summary = TraceSummary::from_spans(&window);
            prop_assert_eq!(summary.self_total(), summary.wall);
            let counted: u64 = summary.stages.iter().map(|s| s.count).sum();
            prop_assert_eq!(counted as usize, window.len());
            if window.is_empty() {
                prop_assert_eq!(summary.wall, SimDuration::ZERO);
            }
        }
    }

    #[test]
    fn exporter_stays_balanced_json(
        ops in prop::collection::vec((0u8..9, 0..64usize), 0..80),
    ) {
        for window in replay(&ops) {
            let json = chrome_trace_json(&window);
            let mut depth: i64 = 0;
            let mut in_string = false;
            let mut escaped = false;
            for c in json.chars() {
                if in_string {
                    if escaped {
                        escaped = false;
                    } else if c == '\\' {
                        escaped = true;
                    } else if c == '"' {
                        in_string = false;
                    }
                    continue;
                }
                match c {
                    '"' => in_string = true,
                    '{' | '[' => depth += 1,
                    '}' | ']' => {
                        depth -= 1;
                        prop_assert!(depth >= 0);
                    }
                    _ => {}
                }
            }
            prop_assert!(!in_string);
            prop_assert_eq!(depth, 0);
        }
    }
}
