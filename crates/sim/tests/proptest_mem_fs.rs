//! Property tests for the memory and filesystem substrates.

use proptest::prelude::*;

use prebake_sim::error::Errno;
use prebake_sim::fs::SimFs;
use prebake_sim::mem::{AddressSpace, Prot, VirtAddr, VmaKind, PAGE_SIZE};

proptest! {
    /// Any interleaving of mmap/munmap keeps the VMA set overlap-free.
    #[test]
    fn address_space_never_overlaps(ops in prop::collection::vec((0u8..3, 1u64..200_000), 1..60)) {
        let mut space = AddressSpace::new();
        let mut starts: Vec<VirtAddr> = Vec::new();
        for (op, len) in ops {
            match op {
                0 => {
                    let addr = space.mmap(len, Prot::RW, VmaKind::Anon).unwrap();
                    starts.push(addr);
                }
                1 if !starts.is_empty() => {
                    let victim = starts.remove((len as usize) % starts.len());
                    space.munmap(victim).unwrap();
                }
                _ => {
                    // fixed mapping in a private window derived from len
                    let base = 0x4000_0000_0000 + (len % 512) * 0x100_000;
                    if space.mmap_fixed(VirtAddr(base), len, Prot::RW, VmaKind::Anon).is_ok() {
                        starts.push(VirtAddr(base));
                    }
                }
            }
            let vmas: Vec<_> = space.vmas().cloned().collect();
            for (i, a) in vmas.iter().enumerate() {
                for b in &vmas[i + 1..] {
                    prop_assert!(!a.overlaps(b), "{a} overlaps {b}");
                }
            }
        }
    }

    /// Writes followed by reads always round-trip, at any offset/length.
    #[test]
    fn memory_write_read_roundtrip(
        offset in 0u64..10_000,
        data in prop::collection::vec(any::<u8>(), 1..20_000),
    ) {
        let mut space = AddressSpace::new();
        let base = space.mmap(64 << 10, Prot::RW, VmaKind::Anon).unwrap();
        space.write(base.add(offset), &data).unwrap();
        let (back, _) = space.read(base.add(offset), data.len() as u64).unwrap();
        prop_assert_eq!(back, data);
    }

    /// Resident page count equals the number of distinct pages written.
    #[test]
    fn resident_pages_counted_exactly(pages in prop::collection::btree_set(0u64..64, 1..32)) {
        let mut space = AddressSpace::new();
        let base = space.mmap(64 * PAGE_SIZE as u64, Prot::RW, VmaKind::Anon).unwrap();
        for &p in &pages {
            space.write(base.add(p * PAGE_SIZE as u64), &[1u8]).unwrap();
        }
        prop_assert_eq!(space.resident_pages(), pages.len() as u64);
    }

    /// The filesystem accepts any create/write/read/remove sequence
    /// without panicking, and reads always return the latest write.
    #[test]
    fn simfs_last_write_wins(
        names in prop::collection::vec("[a-z]{1,8}", 1..10),
        writes in prop::collection::vec((0usize..10, prop::collection::vec(any::<u8>(), 0..512)), 1..30),
    ) {
        let mut fs = SimFs::new();
        fs.create_dir_all("/d").unwrap();
        let mut expected: std::collections::BTreeMap<String, Vec<u8>> = Default::default();
        for (idx, data) in writes {
            let name = &names[idx % names.len()];
            let path = format!("/d/{name}");
            fs.write_file(&path, data.clone()).unwrap();
            expected.insert(path, data);
        }
        for (path, data) in &expected {
            let (got, _) = fs.read_file(path).unwrap();
            prop_assert_eq!(&got[..], &data[..]);
        }
        let total: u64 = expected.values().map(|d| d.len() as u64).sum();
        prop_assert_eq!(fs.total_bytes(), total);
    }

    /// drop_caches never changes contents, only cache state.
    #[test]
    fn drop_caches_preserves_contents(data in prop::collection::vec(any::<u8>(), 1..2048)) {
        let mut fs = SimFs::new();
        fs.write_file("/f", data.clone()).unwrap();
        fs.drop_caches();
        let stat = fs.stat("/f").unwrap();
        prop_assert!(!stat.cached);
        let (got, cached) = fs.read_file("/f").unwrap();
        prop_assert!(!cached);
        prop_assert_eq!(&got[..], &data[..]);
    }

    /// Reading unmapped addresses always faults, never panics.
    #[test]
    fn unmapped_reads_fault(addr in 0u64..1 << 40, len in 1u64..4096) {
        let space = AddressSpace::new();
        prop_assert_eq!(space.read(VirtAddr(addr), len).unwrap_err(), Errno::Efault);
    }
}
