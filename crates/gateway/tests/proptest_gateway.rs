//! Property tests for the gateway's two ledgers: admission conservation
//! under arbitrary offer/release/abort schedules, and result-cache
//! hit-within-TTL / miss-after-expiry behaviour against a reference
//! model.

use std::collections::BTreeMap;

use proptest::prelude::*;

use prebake_gateway::{
    AdmissionController, AdmissionOutcome, CacheConfig, CacheLookup, ResultCache,
};
use prebake_sim::time::{SimDuration, SimInstant};

/// One step of an arbitrary admission schedule, decoded from a sampled
/// byte with a 3:2:1 offer/release/abort weighting. Abort is only
/// meaningful with something in flight (the production callers abort
/// strictly after an admit); the test skips it otherwise.
#[derive(Debug, Clone, Copy)]
enum AdmissionOp {
    Offer,
    Release,
    Abort,
}

impl AdmissionOp {
    fn decode(raw: u8) -> AdmissionOp {
        match raw {
            0..=2 => AdmissionOp::Offer,
            3..=4 => AdmissionOp::Release,
            _ => AdmissionOp::Abort,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `offered == admitted + shed + queued` after every step of any
    /// interleaving, releases promote strictly FIFO, and the final
    /// ledger balances against an independent count of the outcomes.
    #[test]
    fn admission_conserves_every_arrival(
        max_inflight in 1usize..6,
        queue_cap in 0usize..6,
        raw_ops in prop::collection::vec(0u8..6, 1..200),
    ) {
        let mut ac: AdmissionController<u64> = AdmissionController::new(max_inflight, queue_cap);
        let mut seq = 0u64;
        let (mut admitted, mut shed) = (0u64, 0u64);
        let mut last_promoted: Option<u64> = None;
        for op in raw_ops.into_iter().map(AdmissionOp::decode) {
            match op {
                AdmissionOp::Offer => {
                    seq += 1;
                    match ac.offer(seq) {
                        AdmissionOutcome::Admitted(v) => {
                            prop_assert_eq!(v, seq, "offer hands the payload back");
                            admitted += 1;
                        }
                        AdmissionOutcome::Queued { depth } => {
                            prop_assert!(depth >= 1 && depth <= queue_cap);
                        }
                        AdmissionOutcome::Shed(v) => {
                            prop_assert_eq!(v, seq);
                            shed += 1;
                        }
                    }
                }
                AdmissionOp::Release => {
                    if let Some(v) = ac.release() {
                        admitted += 1;
                        if let Some(prev) = last_promoted {
                            prop_assert!(v > prev, "promotion must be FIFO");
                        }
                        last_promoted = Some(v);
                    }
                }
                AdmissionOp::Abort => {
                    if ac.inflight() > 0 {
                        ac.abort();
                        admitted -= 1;
                        shed += 1;
                    }
                }
            }
            prop_assert!(ac.conserved(), "conservation broke: {:?}", ac.stats());
            prop_assert!(ac.inflight() <= max_inflight);
            prop_assert!(ac.queue_depth() <= queue_cap);
        }
        let stats = ac.stats();
        prop_assert_eq!(stats.offered, seq);
        prop_assert_eq!(stats.admitted, admitted);
        prop_assert_eq!(stats.shed, shed);
        prop_assert_eq!(
            stats.offered,
            stats.admitted + stats.shed + ac.queue_depth() as u64
        );
    }

    /// The cache agrees with a reference expiry map on every lookup of
    /// any schedule: hit strictly within the TTL, stale exactly once at
    /// or past it, miss afterwards. Capacity is left at its (large)
    /// default so eviction never interferes with the model.
    #[test]
    fn cache_hits_within_ttl_and_misses_after(
        ttl_ms in 1u64..5_000,
        ops in prop::collection::vec((0u64..10_000, 0u8..6, any::<bool>()), 1..200),
    ) {
        let mut cache: ResultCache<u64> = ResultCache::new(CacheConfig {
            default_ttl: Some(SimDuration::from_millis(ttl_ms)),
            ..CacheConfig::default()
        });
        let mut model: BTreeMap<u8, SimInstant> = BTreeMap::new();
        let mut now = SimInstant::EPOCH;
        let mut value = 0u64;
        for (advance_ms, key_id, insert) in ops {
            now += SimDuration::from_millis(advance_ms);
            let key = format!("k{key_id}");
            if insert {
                value += 1;
                cache.insert(&key, "f", value, now);
                model.insert(key_id, now);
            } else {
                let ttl = SimDuration::from_millis(ttl_ms);
                let expected_live = model
                    .get(&key_id)
                    .is_some_and(|&inserted| now < inserted + ttl);
                match cache.lookup(&key, "f", now) {
                    CacheLookup::Hit { .. } => {
                        prop_assert!(expected_live, "hit past the TTL at {:?}", now);
                    }
                    CacheLookup::Stale { .. } => {
                        prop_assert!(model.contains_key(&key_id) && !expected_live);
                        model.remove(&key_id);
                    }
                    CacheLookup::Miss => {
                        // A live-in-model miss is impossible; an expired
                        // entry misses only after its stale removal.
                        prop_assert!(!model.contains_key(&key_id), "missed a live entry");
                    }
                    CacheLookup::Bypass => prop_assert!(false, "default TTL is set"),
                }
            }
        }
    }
}
