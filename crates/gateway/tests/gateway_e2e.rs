//! End-to-end tests: the standalone [`Gateway`] and typed
//! [`GatewayClient`] over a real [`Platform`], exercising streaming,
//! the result cache, admission backpressure, and open-loop determinism.

use prebake_functions::FunctionSpec;
use prebake_gateway::{
    ArrivalOutcome, CacheConfig, Gateway, GatewayClient, GatewayConfig, GatewayError, StreamConfig,
};
use prebake_platform::{
    FunctionBuilder, Platform, PlatformConfig, PoissonProcess, Registry, Template,
};
use prebake_runtime::http::Request;
use prebake_sim::time::{SimDuration, SimInstant};

/// Builds a gateway fronting a one-function platform.
fn gateway_with(spec: FunctionSpec, template: &Template, config: GatewayConfig) -> Gateway {
    let name = spec.name().to_owned();
    let registry = Registry::new();
    let image = FunctionBuilder.build(spec, template).unwrap();
    registry.push(image);
    let platform = Platform::new(PlatformConfig::default(), registry);
    let mut gw = Gateway::new(platform, config);
    gw.deploy(&name).unwrap();
    gw
}

/// A config with a 60s result-cache TTL and small chunks so the
/// markdown body streams in many pieces.
fn caching_config() -> GatewayConfig {
    GatewayConfig {
        stream: StreamConfig {
            chunks: 8,
            chunk_bytes: 1024,
        },
        cache: CacheConfig {
            default_ttl: Some(SimDuration::from_secs(60)),
            ..CacheConfig::default()
        },
        ..GatewayConfig::default()
    }
}

#[test]
fn invoke_streams_chunks_then_serves_from_cache() {
    let spec = FunctionSpec::markdown();
    let req = spec.sample_request();
    let gw = gateway_with(spec, &Template::java11_criu_prefetch(), caching_config());
    let mut client = GatewayClient::new(gw);

    let first = client.invoke("markdown-render", req.clone()).unwrap();
    assert!(first.cold, "first invocation pays the cold start");
    assert!(!first.cached);
    assert!(!first.body.is_empty(), "markdown render returns HTML");
    assert!(
        first.chunks.len() > 1,
        "a {}-byte body must stream in >1 chunks",
        first.body.len()
    );
    assert_eq!(
        first.chunks.last().unwrap().at,
        first.completed,
        "last chunk lands exactly at completion"
    );
    assert!(
        first.ttfc_ms() < first.latency_ms(),
        "TTFC ({:.3}ms) must beat completion ({:.3}ms)",
        first.ttfc_ms(),
        first.latency_ms()
    );

    let second = client.invoke("markdown-render", req).unwrap();
    assert!(second.cached, "identical request within TTL hits the cache");
    assert!(!second.cold);
    assert_eq!(second.body, first.body, "cache returns the stored body");
    assert!(
        second.latency_ms() < 10.0,
        "cached path must serve in <10ms, got {:.3}ms",
        second.latency_ms()
    );

    let m = client.metrics();
    assert_eq!(m.cache_hits.get(), 1);
    assert_eq!(m.cache_misses.get(), 1);
    assert_eq!(m.cache_insertions.get(), 1);
    assert!(m.cached_serve_max_ms < 10.0);
    assert!(client.gateway().conserved());
}

#[test]
fn backpressure_sheds_past_the_bounded_queue() {
    let config = GatewayConfig {
        inflight_per_worker: 1,
        queue_per_worker: 1,
        ..GatewayConfig::default()
    };
    let mut gw = gateway_with(FunctionSpec::noop(), &Template::java11(), config);

    let at = SimInstant::EPOCH;
    assert_eq!(
        gw.arrive(at, "noop", Request::empty()).unwrap(),
        ArrivalOutcome::Admitted
    );
    assert_eq!(
        gw.arrive(at, "noop", Request::empty()).unwrap(),
        ArrivalOutcome::Queued
    );
    assert_eq!(
        gw.arrive(at, "noop", Request::empty()).unwrap(),
        ArrivalOutcome::Shed
    );
    assert!(gw.conserved(), "conserved with an arrival still queued");

    let report = gw.finish().unwrap();
    assert_eq!(report.replies.len(), 2, "admitted + promoted both answer");
    assert_eq!(report.admission.offered, 3);
    assert_eq!(report.admission.admitted, 2);
    assert_eq!(report.admission.deferred, 1);
    assert_eq!(report.admission.shed, 1);
    assert!(
        report.replies[1].dispatched >= report.replies[0].completed,
        "the queued arrival dispatches only after the slot frees"
    );
    assert!(gw.conserved());
}

#[test]
fn shed_invocation_is_a_typed_client_error() {
    let config = GatewayConfig {
        inflight_per_worker: 1,
        queue_per_worker: 0,
        ..GatewayConfig::default()
    };
    let gw = gateway_with(FunctionSpec::noop(), &Template::java11(), config);
    let mut client = GatewayClient::new(gw);

    // Fill the only slot without draining, then the next invoke sheds.
    client
        .gateway_mut()
        .arrive(SimInstant::EPOCH, "noop", Request::empty())
        .unwrap();
    let err = client.invoke("noop", Request::empty()).unwrap_err();
    assert_eq!(
        err,
        GatewayError::Shed {
            function: "noop".to_owned()
        }
    );
}

#[test]
fn closed_loop_pays_cold_once_then_stays_warm() {
    let gw = gateway_with(
        FunctionSpec::noop(),
        &Template::java11_criu_prefetch(),
        GatewayConfig::default(),
    );
    let mut client = GatewayClient::new(gw);
    let replies = client
        .closed_loop("noop", &Request::empty(), 5, SimDuration::from_millis(10))
        .unwrap();
    assert_eq!(replies.len(), 5);
    assert!(replies[0].cold);
    assert!(replies[1..].iter().all(|r| !r.cold), "replica stays warm");
    let warm_max = replies[1..]
        .iter()
        .map(InvokeReplyExt::latency)
        .fold(0.0f64, f64::max);
    assert!(
        replies[0].latency_ms() > warm_max,
        "cold invocation is the slowest"
    );
}

/// Small helper so the fold above reads cleanly.
trait InvokeReplyExt {
    fn latency(&self) -> f64;
}

impl InvokeReplyExt for prebake_gateway::InvokeReply {
    fn latency(&self) -> f64 {
        self.latency_ms()
    }
}

#[test]
fn open_loop_poisson_is_deterministic() {
    let run = || {
        let gw = gateway_with(
            FunctionSpec::noop(),
            &Template::java11_criu_lazy(),
            GatewayConfig {
                inflight_per_worker: 2,
                queue_per_worker: 4,
                ..GatewayConfig::default()
            },
        );
        let mut client = GatewayClient::new(gw);
        let stream = PoissonProcess::new(
            "noop",
            200.0,
            SimInstant::EPOCH,
            SimDuration::from_secs(2),
            7,
        )
        .unwrap();
        let report = client.open_loop(stream, &Request::empty()).unwrap();
        let gw = client.into_gateway();
        assert!(gw.conserved());
        (report, gw.metrics().render())
    };

    let (a, render_a) = run();
    let (b, render_b) = run();
    assert_eq!(a.admission, b.admission, "identical admission ledger");
    assert_eq!(a.replies.len(), b.replies.len());
    for (x, y) in a.replies.iter().zip(&b.replies) {
        assert_eq!(x.arrived, y.arrived);
        assert_eq!(x.completed, y.completed);
        assert_eq!(x.cold, y.cold);
    }
    assert_eq!(render_a, render_b, "bit-identical metrics text");
    assert!(
        a.admission.offered >= 300,
        "200/s over 2s should offer ~400 arrivals, got {}",
        a.admission.offered
    );
}
