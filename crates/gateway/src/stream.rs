//! Chunked response streaming over virtual time.
//!
//! The platform's call-and-return API charges a response as one
//! completion instant; a streaming frontend delivers it as chunks
//! spread across the service window, which makes *time to first chunk*
//! (TTFC) a first-class latency distinct from completion. That is where
//! the lazy/prefetch gears' early-first-response advantage — visible in
//! the paper at the single-restore level — finally shows up at the
//! platform level: their first chunk leaves long before an eager
//! restore has even finished copying.
//!
//! The model is analytic, not evented: service is linearised across the
//! chunk count, so chunk `i` of `n` lands at
//! `dispatched + service * (i+1)/n`. Completion time is untouched and
//! no extra events are scheduled — a million-invocation run pays
//! arithmetic, not event-queue traffic, for its TTFC histograms.

use prebake_sim::time::{SimDuration, SimInstant};

/// Response-streaming configuration.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Chunks a response is streamed as when the body size is unknown
    /// (the fleet's synthetic profiles). Clamped to at least 1.
    pub chunks: usize,
    /// Chunk size for real bodies (the standalone gateway): a body of
    /// `b` bytes streams as `ceil(b / chunk_bytes)` chunks.
    pub chunk_bytes: usize,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            chunks: 8,
            chunk_bytes: 16 * 1024,
        }
    }
}

impl StreamConfig {
    /// Chunk count for a body of `bytes` (at least 1 — even an empty
    /// response sends one terminating chunk).
    pub fn chunks_for(&self, bytes: u64) -> usize {
        let per = self.chunk_bytes.max(1) as u64;
        (bytes.div_ceil(per)).max(1) as usize
    }
}

/// One streamed response chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chunk {
    /// Instant the chunk reaches the client.
    pub at: SimInstant,
    /// Payload bytes carried.
    pub bytes: u64,
}

/// Instant the first of `n` chunks lands when service spans
/// `[dispatched, completed]`.
pub fn first_chunk_at(dispatched: SimInstant, completed: SimInstant, n: usize) -> SimInstant {
    let n = n.max(1) as u128;
    let span = completed.saturating_duration_since(dispatched).as_nanos() as u128;
    dispatched + SimDuration::from_nanos((span / n) as u64)
}

/// Lays a body of `total_bytes` out as `n` chunks across the service
/// window, even-sized with the remainder on the last chunk. The final
/// chunk always lands exactly at `completed`.
pub fn plan(
    dispatched: SimInstant,
    completed: SimInstant,
    total_bytes: u64,
    n: usize,
) -> Vec<Chunk> {
    let n = n.max(1);
    let span = completed.saturating_duration_since(dispatched).as_nanos() as u128;
    let per = total_bytes / n as u64;
    (0..n)
        .map(|i| Chunk {
            at: dispatched + SimDuration::from_nanos((span * (i as u128 + 1) / n as u128) as u64),
            bytes: if i + 1 == n {
                total_bytes - per * (n as u64 - 1)
            } else {
                per
            },
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_split_service_and_bytes() {
        let d = SimInstant::EPOCH + SimDuration::from_millis(10);
        let c = d + SimDuration::from_millis(8);
        let chunks = plan(d, c, 100, 4);
        assert_eq!(chunks.len(), 4);
        assert_eq!(chunks[0].at, d + SimDuration::from_millis(2));
        assert_eq!(chunks[3].at, c, "last chunk lands at completion");
        assert_eq!(chunks.iter().map(|ch| ch.bytes).sum::<u64>(), 100);
        assert_eq!(chunks[3].bytes, 25);
        assert_eq!(first_chunk_at(d, c, 4), chunks[0].at);
    }

    #[test]
    fn zero_chunks_clamps_to_one() {
        let d = SimInstant::EPOCH;
        let c = d + SimDuration::from_millis(5);
        let chunks = plan(d, c, 7, 0);
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0].at, c);
        assert_eq!(chunks[0].bytes, 7);
        assert_eq!(first_chunk_at(d, c, 0), c);
    }

    #[test]
    fn chunks_for_rounds_up_and_floors_at_one() {
        let sc = StreamConfig {
            chunks: 8,
            chunk_bytes: 1024,
        };
        assert_eq!(sc.chunks_for(0), 1);
        assert_eq!(sc.chunks_for(1024), 1);
        assert_eq!(sc.chunks_for(1025), 2);
        assert_eq!(sc.chunks_for(10 * 1024), 10);
    }

    #[test]
    fn first_chunk_beats_completion_for_multi_chunk_responses() {
        let d = SimInstant::EPOCH;
        let c = d + SimDuration::from_millis(80);
        assert!(first_chunk_at(d, c, 8) < c);
        assert_eq!(
            first_chunk_at(d, c, 8),
            d + SimDuration::from_millis(10),
            "1/8th of the window"
        );
    }
}
