//! Bounded admission control for the gateway frontend.
//!
//! Production gateways hold a fixed number of invocations in flight and
//! park the overflow in a bounded queue; everything past the queue is
//! shed with backpressure. The controller here is the deterministic core
//! of that policy: a pure state machine over abstract payloads, so the
//! fleet scheduler and the standalone [`Gateway`] reuse the same
//! conservation-checked accounting.
//!
//! The invariant the proptests pin down: at every instant,
//! `offered == admitted + shed + queued` — no arrival is ever lost or
//! double-counted, whatever the interleaving of offers, releases and
//! downstream aborts.
//!
//! [`Gateway`]: crate::Gateway

use std::collections::VecDeque;

/// What the controller decided about one offered arrival.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionOutcome<T> {
    /// An in-flight slot was free: the arrival proceeds immediately.
    /// The payload is handed back so admission never has to clone it.
    Admitted(T),
    /// Every slot is busy; the arrival parked in the bounded queue and
    /// will be admitted by a future [`AdmissionController::release`].
    /// `depth` is the queue depth including this arrival.
    Queued {
        /// Queue depth after parking, including this arrival.
        depth: usize,
    },
    /// Queue full: rejected with backpressure. The payload is returned
    /// so the caller can record or answer the shed request.
    Shed(T),
}

/// Cumulative admission accounting. `admitted`/`shed` move together
/// under [`AdmissionController::abort`] (a downstream refusal
/// reclassifies the admit as a shed), so the conservation identity
/// holds at every step.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Arrivals offered to the controller.
    pub offered: u64,
    /// Arrivals admitted (immediately or after queueing), minus aborts.
    pub admitted: u64,
    /// Arrivals that waited in the queue before admission (cumulative).
    pub deferred: u64,
    /// Arrivals rejected: queue-full backpressure plus downstream aborts.
    pub shed: u64,
    /// Most invocations ever in flight at once.
    pub peak_inflight: usize,
    /// Deepest the queue ever got.
    pub peak_queue: usize,
}

impl AdmissionStats {
    /// Sums another stats block into this one (the shard-fold path).
    /// Peaks take the max — a per-cell high-water mark, not a sum.
    pub fn merge(&mut self, other: &AdmissionStats) {
        self.offered += other.offered;
        self.admitted += other.admitted;
        self.deferred += other.deferred;
        self.shed += other.shed;
        self.peak_inflight = self.peak_inflight.max(other.peak_inflight);
        self.peak_queue = self.peak_queue.max(other.peak_queue);
    }
}

/// The bounded-concurrency admission controller: at most `max_inflight`
/// payloads admitted-but-unreleased at once, at most `queue_cap` parked
/// behind them, everything else shed.
#[derive(Debug, Clone)]
pub struct AdmissionController<T> {
    max_inflight: usize,
    queue_cap: usize,
    inflight: usize,
    queue: VecDeque<T>,
    stats: AdmissionStats,
}

impl<T> AdmissionController<T> {
    /// Creates a controller. `max_inflight` is clamped to at least 1
    /// (a gateway that can never admit anything is a misconfiguration,
    /// not a model).
    pub fn new(max_inflight: usize, queue_cap: usize) -> AdmissionController<T> {
        AdmissionController {
            max_inflight: max_inflight.max(1),
            queue_cap,
            inflight: 0,
            queue: VecDeque::new(),
            stats: AdmissionStats::default(),
        }
    }

    /// Offers one arrival: admit if a slot is free, queue if the queue
    /// has room, shed otherwise.
    pub fn offer(&mut self, item: T) -> AdmissionOutcome<T> {
        self.stats.offered += 1;
        if self.inflight < self.max_inflight {
            self.inflight += 1;
            self.stats.admitted += 1;
            self.stats.peak_inflight = self.stats.peak_inflight.max(self.inflight);
            return AdmissionOutcome::Admitted(item);
        }
        if self.queue.len() < self.queue_cap {
            self.queue.push_back(item);
            self.stats.peak_queue = self.stats.peak_queue.max(self.queue.len());
            return AdmissionOutcome::Queued {
                depth: self.queue.len(),
            };
        }
        self.stats.shed += 1;
        AdmissionOutcome::Shed(item)
    }

    /// Releases one in-flight slot (an invocation completed). If the
    /// queue is non-empty its head is admitted into the freed slot and
    /// returned; the caller must start serving it.
    pub fn release(&mut self) -> Option<T> {
        self.inflight = self.inflight.saturating_sub(1);
        self.promote()
    }

    /// Admits the queue head into a free slot without releasing anything
    /// — the retry path after [`AdmissionController::abort`] frees the
    /// slot a refused promotion held. Returns `None` when every slot is
    /// busy or the queue is empty.
    pub fn promote(&mut self) -> Option<T> {
        if self.inflight >= self.max_inflight {
            return None;
        }
        let next = self.queue.pop_front()?;
        self.inflight += 1;
        self.stats.admitted += 1;
        self.stats.deferred += 1;
        self.stats.peak_inflight = self.stats.peak_inflight.max(self.inflight);
        Some(next)
    }

    /// Reclassifies the most recent admit as a shed: the backend refused
    /// the admitted arrival (e.g. a downstream queue cap), so its slot
    /// frees immediately and the conservation ledger moves the arrival
    /// from `admitted` to `shed`.
    pub fn abort(&mut self) {
        self.inflight = self.inflight.saturating_sub(1);
        self.stats.admitted = self.stats.admitted.saturating_sub(1);
        self.stats.shed += 1;
    }

    /// Invocations currently in flight.
    pub fn inflight(&self) -> usize {
        self.inflight
    }

    /// Arrivals currently parked in the queue.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Cumulative accounting.
    pub fn stats(&self) -> &AdmissionStats {
        &self.stats
    }

    /// The conservation identity: every offered arrival is admitted,
    /// shed, or still queued. Holds at every step by construction; the
    /// proptests drive arbitrary schedules through it to prove that.
    pub fn conserved(&self) -> bool {
        self.stats.offered == self.stats.admitted + self.stats.shed + self.queue.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_up_to_capacity_then_queues_then_sheds() {
        let mut ac: AdmissionController<u32> = AdmissionController::new(2, 1);
        assert!(matches!(ac.offer(1), AdmissionOutcome::Admitted(1)));
        assert!(matches!(ac.offer(2), AdmissionOutcome::Admitted(2)));
        assert!(matches!(ac.offer(3), AdmissionOutcome::Queued { depth: 1 }));
        assert!(matches!(ac.offer(4), AdmissionOutcome::Shed(4)));
        assert_eq!(ac.inflight(), 2);
        assert_eq!(ac.queue_depth(), 1);
        assert!(ac.conserved());
    }

    #[test]
    fn release_promotes_the_queue_head() {
        let mut ac: AdmissionController<u32> = AdmissionController::new(1, 4);
        ac.offer(1);
        ac.offer(2);
        ac.offer(3);
        assert_eq!(ac.release(), Some(2), "FIFO promotion");
        assert_eq!(ac.inflight(), 1);
        assert_eq!(ac.release(), Some(3));
        assert_eq!(ac.release(), None, "queue drained");
        assert_eq!(ac.inflight(), 0);
        let s = ac.stats();
        assert_eq!((s.offered, s.admitted, s.deferred, s.shed), (3, 3, 2, 0));
        assert!(ac.conserved());
    }

    #[test]
    fn abort_reclassifies_an_admit_as_shed() {
        let mut ac: AdmissionController<u32> = AdmissionController::new(1, 0);
        assert!(matches!(ac.offer(1), AdmissionOutcome::Admitted(1)));
        ac.abort();
        assert_eq!(ac.inflight(), 0);
        assert_eq!(ac.stats().admitted, 0);
        assert_eq!(ac.stats().shed, 1);
        assert!(ac.conserved());
        // The freed slot admits the next offer.
        assert!(matches!(ac.offer(2), AdmissionOutcome::Admitted(2)));
    }

    #[test]
    fn zero_inflight_clamps_to_one() {
        let mut ac: AdmissionController<u32> = AdmissionController::new(0, 0);
        assert!(matches!(ac.offer(1), AdmissionOutcome::Admitted(1)));
    }

    #[test]
    fn stats_merge_sums_counters_and_maxes_peaks() {
        let mut a = AdmissionStats {
            offered: 5,
            admitted: 3,
            deferred: 1,
            shed: 1,
            peak_inflight: 2,
            peak_queue: 4,
        };
        let b = AdmissionStats {
            offered: 2,
            admitted: 2,
            deferred: 0,
            shed: 0,
            peak_inflight: 3,
            peak_queue: 1,
        };
        a.merge(&b);
        assert_eq!(a.offered, 7);
        assert_eq!(a.admitted, 5);
        assert_eq!(a.peak_inflight, 3);
        assert_eq!(a.peak_queue, 4);
    }
}
