//! Deterministic result cache with per-function TTLs.
//!
//! Idempotent invocations can be answered at the gateway edge without
//! touching a replica — the `<10ms cached path` of ROADMAP item 4. The
//! cache is a plain expiry map over the virtual clock: no wall time, no
//! random eviction, so a cached run replays bit-identically. Lookups
//! classify as *hit* (entry alive), *stale* (entry present but past its
//! TTL — removed and re-fetched), *miss* (no entry), or *bypass* (the
//! function has no TTL configured, i.e. is not declared idempotent).

use std::collections::BTreeMap;

use prebake_sim::time::{SimDuration, SimInstant};

/// Result-cache configuration.
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// TTL applied to every function without a `per_function` override.
    /// `None` means only explicitly listed functions are cacheable —
    /// idempotency is an opt-in property of a function, not of traffic.
    pub default_ttl: Option<SimDuration>,
    /// Per-function TTL overrides.
    pub per_function: BTreeMap<String, SimDuration>,
    /// Entry ceiling. At capacity, inserting a new key evicts the entry
    /// closest to expiry (smallest key on ties) — deterministic, and the
    /// entry least worth keeping.
    pub capacity: usize,
    /// Virtual milliseconds a cache hit takes to serve at the edge. The
    /// whole point of the cache: this must sit well under the 10ms bar.
    pub serve_ms: f64,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            default_ttl: None,
            per_function: BTreeMap::new(),
            capacity: 1024,
            serve_ms: 0.5,
        }
    }
}

/// What a lookup found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheLookup<V> {
    /// A live entry: the cached value and its age.
    Hit {
        /// Cached value (cloned out; cheap for `Bytes`/`()` values).
        value: V,
        /// Time since the entry was inserted.
        age: SimDuration,
    },
    /// An entry existed but its TTL elapsed; it was removed.
    Stale {
        /// Time since the expired entry was inserted.
        age: SimDuration,
    },
    /// No entry under this key.
    Miss,
    /// The function has no TTL configured — not a cache participant.
    Bypass,
}

/// What an insert did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheInsert {
    /// The value was stored; `evicted` reports whether capacity forced
    /// another entry out.
    Stored {
        /// An existing entry was evicted to make room.
        evicted: bool,
    },
    /// The function has no TTL configured; nothing was stored.
    Bypass,
}

#[derive(Debug, Clone)]
struct Entry<V> {
    value: V,
    inserted: SimInstant,
    expires: SimInstant,
}

/// The expiry map. Keys are caller-defined (the fleet keys by function
/// name; the standalone gateway by function + request-body hash).
#[derive(Debug, Clone)]
pub struct ResultCache<V> {
    config: CacheConfig,
    entries: BTreeMap<String, Entry<V>>,
}

impl<V: Clone> ResultCache<V> {
    /// Creates an empty cache.
    pub fn new(config: CacheConfig) -> ResultCache<V> {
        ResultCache {
            config,
            entries: BTreeMap::new(),
        }
    }

    /// The configuration the cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// TTL for `function`: the per-function override, else the default.
    /// `None` means the function is not cacheable.
    pub fn ttl_for(&self, function: &str) -> Option<SimDuration> {
        self.config
            .per_function
            .get(function)
            .copied()
            .or(self.config.default_ttl)
    }

    /// Looks `key` up at virtual time `now`. A stale entry is removed so
    /// the following insert refreshes it.
    pub fn lookup(&mut self, key: &str, function: &str, now: SimInstant) -> CacheLookup<V> {
        if self.ttl_for(function).is_none() {
            return CacheLookup::Bypass;
        }
        let Some(entry) = self.entries.get(key) else {
            return CacheLookup::Miss;
        };
        let age = now.saturating_duration_since(entry.inserted);
        if now < entry.expires {
            CacheLookup::Hit {
                value: entry.value.clone(),
                age,
            }
        } else {
            self.entries.remove(key);
            CacheLookup::Stale { age }
        }
    }

    /// Stores `value` under `key` with the function's TTL, evicting the
    /// closest-to-expiry entry if at capacity. Replacing an existing key
    /// never evicts.
    pub fn insert(&mut self, key: &str, function: &str, value: V, now: SimInstant) -> CacheInsert {
        let Some(ttl) = self.ttl_for(function) else {
            return CacheInsert::Bypass;
        };
        let capacity = self.config.capacity.max(1);
        let mut evicted = false;
        if !self.entries.contains_key(key) && self.entries.len() >= capacity {
            let victim = self
                .entries
                .iter()
                .min_by_key(|(k, e)| (e.expires, (*k).clone()))
                .map(|(k, _)| k.clone())
                .expect("non-empty at capacity");
            self.entries.remove(&victim);
            evicted = true;
        }
        self.entries.insert(
            key.to_owned(),
            Entry {
                value,
                inserted: now,
                expires: now + ttl,
            },
        );
        CacheInsert::Stored { evicted }
    }

    /// Live entries (stale ones linger until looked up or evicted).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(ttl_ms: u64) -> CacheConfig {
        CacheConfig {
            default_ttl: Some(SimDuration::from_millis(ttl_ms)),
            ..CacheConfig::default()
        }
    }

    #[test]
    fn hit_within_ttl_stale_after() {
        let mut c: ResultCache<u32> = ResultCache::new(cfg(100));
        let t0 = SimInstant::EPOCH;
        assert_eq!(c.lookup("k", "f", t0), CacheLookup::Miss);
        c.insert("k", "f", 7, t0);
        let hit = c.lookup("k", "f", t0 + SimDuration::from_millis(99));
        assert!(matches!(hit, CacheLookup::Hit { value: 7, .. }));
        // Exactly at the TTL boundary the entry is already stale.
        let stale = c.lookup("k", "f", t0 + SimDuration::from_millis(100));
        assert!(matches!(stale, CacheLookup::Stale { .. }));
        // The stale lookup removed it: next probe is a plain miss.
        assert_eq!(
            c.lookup("k", "f", t0 + SimDuration::from_millis(100)),
            CacheLookup::Miss
        );
    }

    #[test]
    fn unlisted_function_bypasses_without_default() {
        let mut per = BTreeMap::new();
        per.insert("idem".to_owned(), SimDuration::from_millis(50));
        let mut c: ResultCache<u32> = ResultCache::new(CacheConfig {
            default_ttl: None,
            per_function: per,
            ..CacheConfig::default()
        });
        assert_eq!(
            c.lookup("x", "other", SimInstant::EPOCH),
            CacheLookup::Bypass
        );
        assert_eq!(
            c.insert("x", "other", 1, SimInstant::EPOCH),
            CacheInsert::Bypass
        );
        assert!(matches!(
            c.insert("x", "idem", 1, SimInstant::EPOCH),
            CacheInsert::Stored { evicted: false }
        ));
        assert_eq!(c.ttl_for("idem"), Some(SimDuration::from_millis(50)));
        assert_eq!(c.ttl_for("other"), None);
    }

    #[test]
    fn capacity_evicts_closest_to_expiry() {
        let mut c: ResultCache<u32> = ResultCache::new(CacheConfig {
            capacity: 2,
            ..cfg(1000)
        });
        let t0 = SimInstant::EPOCH;
        c.insert("a", "f", 1, t0); // expires at 1000ms
        c.insert("b", "f", 2, t0 + SimDuration::from_millis(10)); // 1010ms
        let out = c.insert("c", "f", 3, t0 + SimDuration::from_millis(20));
        assert_eq!(out, CacheInsert::Stored { evicted: true });
        assert_eq!(c.len(), 2);
        // "a" (earliest expiry) was the victim.
        assert_eq!(
            c.lookup("a", "f", t0 + SimDuration::from_millis(30)),
            CacheLookup::Miss
        );
        assert!(matches!(
            c.lookup("b", "f", t0 + SimDuration::from_millis(30)),
            CacheLookup::Hit { value: 2, .. }
        ));
    }

    #[test]
    fn replacing_a_key_never_evicts() {
        let mut c: ResultCache<u32> = ResultCache::new(CacheConfig {
            capacity: 1,
            ..cfg(1000)
        });
        c.insert("a", "f", 1, SimInstant::EPOCH);
        let out = c.insert("a", "f", 2, SimInstant::EPOCH + SimDuration::from_millis(5));
        assert_eq!(out, CacheInsert::Stored { evicted: false });
        assert!(matches!(
            c.lookup("a", "f", SimInstant::EPOCH + SimDuration::from_millis(6)),
            CacheLookup::Hit { value: 2, .. }
        ));
    }
}
