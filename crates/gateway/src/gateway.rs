//! The standalone gateway: an asynchronous streaming frontend over one
//! [`Platform`].
//!
//! Arrivals flow through three stages, all on virtual time:
//!
//! 1. **Result cache** — idempotent invocations whose cached entry is
//!    still live are answered at the edge in [`CacheConfig::serve_ms`]
//!    without touching a replica.
//! 2. **Admission** — at most `max_inflight` invocations proceed
//!    concurrently; the overflow parks in a bounded queue and is
//!    promoted FIFO as completions free slots; past the queue, arrivals
//!    are shed with backpressure.
//! 3. **Streaming** — a backend response is delivered as chunks spread
//!    across its service window, so *time to first chunk* (TTFC) is
//!    recorded separately from completion latency.
//!
//! The gateway drives the platform with [`Platform::run_until`] between
//! arrivals, harvesting completions as they land so deferred arrivals
//! are submitted at the instant their slot frees — the event
//! interleaving is deterministic and independent of host scheduling.

use std::collections::BTreeMap;

use bytes::Bytes;
use prebake_platform::loadgen::LoadError;
use prebake_platform::{CompletedRequest, Platform};
use prebake_runtime::http::Request;
use prebake_sim::error::Errno;
use prebake_sim::time::{SimDuration, SimInstant};

use crate::admission::{AdmissionController, AdmissionOutcome, AdmissionStats};
use crate::cache::{CacheConfig, CacheInsert, CacheLookup, ResultCache};
use crate::metrics::GatewayMetrics;
use crate::stream::{plan, Chunk, StreamConfig};

/// Gear label the standalone gateway files TTFC observations under (it
/// sits above one platform and does not see per-replica restore gears;
/// the fleet frontier records real gear labels).
const PLATFORM_GEAR: &str = "platform";

/// Gateway configuration. The per-worker caps are multiplied by the
/// worker count the frontend fronts (the standalone gateway counts as
/// one worker; a fleet shard scales by its cell size).
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Concurrent invocations each fronted worker may hold in flight.
    pub inflight_per_worker: usize,
    /// Admission-queue slots per fronted worker.
    pub queue_per_worker: usize,
    /// Response-streaming shape.
    pub stream: StreamConfig,
    /// Result-cache policy.
    pub cache: CacheConfig,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            inflight_per_worker: 8,
            queue_per_worker: 32,
            stream: StreamConfig::default(),
            cache: CacheConfig::default(),
        }
    }
}

/// Gateway errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GatewayError {
    /// The platform refused an operation (e.g. unknown function).
    Platform(Errno),
    /// The arrival stream produced an error in-band.
    Load(LoadError),
    /// The invocation was shed with backpressure.
    Shed {
        /// Function the shed invocation targeted.
        function: String,
    },
}

impl std::fmt::Display for GatewayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GatewayError::Platform(errno) => write!(f, "platform error: {errno:?}"),
            GatewayError::Load(err) => write!(f, "load generator error: {err}"),
            GatewayError::Shed { function } => {
                write!(f, "invocation of {function} shed with backpressure")
            }
        }
    }
}

impl std::error::Error for GatewayError {}

impl From<Errno> for GatewayError {
    fn from(errno: Errno) -> Self {
        GatewayError::Platform(errno)
    }
}

impl From<LoadError> for GatewayError {
    fn from(err: LoadError) -> Self {
        GatewayError::Load(err)
    }
}

/// What the gateway decided about one arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalOutcome {
    /// Answered from the result cache; its [`InvokeReply`] is already
    /// recorded.
    Cached,
    /// Admitted to the backend immediately.
    Admitted,
    /// Parked in the admission queue; admitted by a later completion.
    Queued,
    /// Shed with backpressure; no reply will be produced.
    Shed,
}

/// One answered invocation, as the client observes it.
#[derive(Debug, Clone)]
pub struct InvokeReply {
    /// Function invoked.
    pub function: String,
    /// Arrival instant at the gateway.
    pub arrived: SimInstant,
    /// Instant service began (a cached reply serves at arrival).
    pub dispatched: SimInstant,
    /// Instant the last chunk landed.
    pub completed: SimInstant,
    /// Whether the backend paid a cold start (always `false` for cached
    /// replies).
    pub cold: bool,
    /// Whether the reply came from the result cache.
    pub cached: bool,
    /// Response body.
    pub body: Bytes,
    /// The streamed chunk timeline (last chunk at `completed`).
    pub chunks: Vec<Chunk>,
}

impl InvokeReply {
    /// Arrival → first chunk, in milliseconds.
    pub fn ttfc_ms(&self) -> f64 {
        let first = self.chunks.first().map_or(self.completed, |c| c.at);
        (first - self.arrived).as_millis_f64()
    }

    /// Arrival → last chunk, in milliseconds.
    pub fn latency_ms(&self) -> f64 {
        (self.completed - self.arrived).as_millis_f64()
    }
}

/// Everything an open-loop drive produced.
#[derive(Debug, Clone)]
pub struct DriveReport {
    /// Replies in completion order (cached replies at their edge-serve
    /// instant).
    pub replies: Vec<InvokeReply>,
    /// Final admission accounting.
    pub admission: AdmissionStats,
}

/// An arrival parked in the admission queue.
#[derive(Debug, Clone)]
struct Parked {
    arrived: SimInstant,
    function: String,
    req: Request,
}

/// Bookkeeping for an invocation submitted to the platform.
#[derive(Debug, Clone)]
struct Inflight {
    arrived: SimInstant,
    cache_key: Option<String>,
}

/// The streaming frontend over one [`Platform`].
pub struct Gateway {
    platform: Platform,
    config: GatewayConfig,
    admission: AdmissionController<Parked>,
    cache: ResultCache<Bytes>,
    metrics: GatewayMetrics,
    inflight: BTreeMap<u64, Inflight>,
    replies: Vec<InvokeReply>,
    seen: usize,
}

impl Gateway {
    /// Fronts `platform` with a gateway. The standalone gateway counts
    /// as one worker for the per-worker admission caps.
    pub fn new(platform: Platform, config: GatewayConfig) -> Gateway {
        let admission =
            AdmissionController::new(config.inflight_per_worker, config.queue_per_worker);
        let cache = ResultCache::new(config.cache.clone());
        Gateway {
            platform,
            config,
            admission,
            cache,
            metrics: GatewayMetrics::default(),
            inflight: BTreeMap::new(),
            replies: Vec::new(),
            seen: 0,
        }
    }

    /// Current virtual time (the fronted platform's clock).
    pub fn now(&self) -> SimInstant {
        self.platform.now()
    }

    /// The fronted platform (e.g. for registry inspection).
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Gateway metrics accumulated so far.
    pub fn metrics(&self) -> &GatewayMetrics {
        &self.metrics
    }

    /// Admission accounting (live; includes currently queued arrivals).
    pub fn admission_stats(&self) -> AdmissionStats {
        *self.admission.stats()
    }

    /// The conservation identity over everything offered so far:
    /// `arrivals == cached + admitted + shed + queued`.
    pub fn conserved(&self) -> bool {
        let m = &self.metrics;
        self.admission.conserved()
            && m.arrivals.get()
                == m.cache_hits.get()
                    + m.admitted.get()
                    + m.shed()
                    + self.admission.queue_depth() as u64
    }

    /// Deploys `function` on the fronted platform.
    ///
    /// # Errors
    ///
    /// [`GatewayError::Platform`] if the function image is unknown.
    pub fn deploy(&mut self, function: &str) -> Result<(), GatewayError> {
        self.platform.deploy_function(function).map_err(Into::into)
    }

    /// Offers one arrival at `at` (≥ now). Pumps the platform up to the
    /// arrival instant first, so completions that free admission slots
    /// before `at` have already been harvested.
    ///
    /// # Errors
    ///
    /// [`GatewayError::Platform`] if the function is not deployed. A
    /// shed arrival is an [`ArrivalOutcome::Shed`], not an error.
    pub fn arrive(
        &mut self,
        at: SimInstant,
        function: &str,
        req: Request,
    ) -> Result<ArrivalOutcome, GatewayError> {
        self.pump_until(at)?;
        let at = at.max(self.platform.now());
        self.metrics.arrivals.inc();
        self.metrics
            .queue_depth
            .observe(self.admission.queue_depth() as f64);

        let cache_key = self
            .cache
            .ttl_for(function)
            .map(|_| cache_key(function, &req));
        if let Some(key) = &cache_key {
            match self.cache.lookup(key, function, at) {
                CacheLookup::Hit { value, .. } => {
                    self.metrics.cache_hits.inc();
                    self.serve_cached(at, function, value);
                    return Ok(ArrivalOutcome::Cached);
                }
                CacheLookup::Stale { .. } => self.metrics.cache_stale.inc(),
                CacheLookup::Miss => self.metrics.cache_misses.inc(),
                CacheLookup::Bypass => {}
            }
        }

        let parked = Parked {
            arrived: at,
            function: function.to_owned(),
            req,
        };
        match self.admission.offer(parked) {
            AdmissionOutcome::Admitted(p) => {
                self.metrics.admitted.inc();
                self.submit(at, p, cache_key)?;
                Ok(ArrivalOutcome::Admitted)
            }
            AdmissionOutcome::Queued { .. } => Ok(ArrivalOutcome::Queued),
            AdmissionOutcome::Shed(_) => {
                self.metrics.shed_backpressure.inc();
                Ok(ArrivalOutcome::Shed)
            }
        }
    }

    /// Runs the platform until every submitted invocation has completed
    /// and the admission queue has drained, harvesting replies. Pending
    /// housekeeping events (idle GC sweeps) are left in the queue — the
    /// clock stops just past the last gateway completion, so caches stay
    /// live and replicas stay warm for the next arrival.
    ///
    /// # Errors
    ///
    /// Propagates platform errors.
    pub fn drain(&mut self) -> Result<(), GatewayError> {
        let tick = SimDuration::from_nanos(1);
        while !self.inflight.is_empty() || self.admission.queue_depth() > 0 {
            let Some(t) = self.platform.next_event_time() else {
                break;
            };
            self.platform
                .run_until(t + tick)
                .map_err(GatewayError::Platform)?;
            self.harvest()?;
        }
        Ok(())
    }

    /// Replies recorded so far, in completion order.
    pub fn replies(&self) -> &[InvokeReply] {
        &self.replies
    }

    /// Takes the recorded replies, leaving the log empty.
    pub fn take_replies(&mut self) -> Vec<InvokeReply> {
        std::mem::take(&mut self.replies)
    }

    /// Drains everything and packages the run.
    ///
    /// # Errors
    ///
    /// Propagates platform errors.
    pub fn finish(&mut self) -> Result<DriveReport, GatewayError> {
        self.drain()?;
        Ok(DriveReport {
            replies: self.take_replies(),
            admission: *self.admission.stats(),
        })
    }

    /// Processes platform events strictly before `bound`, batch by
    /// batch, harvesting completions after each batch so queue
    /// promotions are submitted at (one tick after) the completion that
    /// freed the slot.
    fn pump_until(&mut self, bound: SimInstant) -> Result<(), GatewayError> {
        let tick = SimDuration::from_nanos(1);
        while let Some(t) = self.platform.next_event_time() {
            if t >= bound {
                break;
            }
            self.platform
                .run_until(t + tick)
                .map_err(GatewayError::Platform)?;
            self.harvest()?;
        }
        self.platform
            .run_until(bound)
            .map_err(GatewayError::Platform)?;
        self.harvest()?;
        Ok(())
    }

    /// Turns newly completed platform requests into replies; returns how
    /// many were harvested.
    fn harvest(&mut self) -> Result<usize, GatewayError> {
        // Snapshot: finishing a completion can submit a promoted arrival,
        // which appends to `platform.completed()` only via later events.
        let fresh: Vec<CompletedRequest> = self.platform.completed()[self.seen..].to_vec();
        self.seen += fresh.len();
        for rec in &fresh {
            self.finish_one(rec)?;
        }
        Ok(fresh.len())
    }

    fn finish_one(&mut self, rec: &CompletedRequest) -> Result<(), GatewayError> {
        let Some(meta) = self.inflight.remove(&rec.id) else {
            // Not gateway-submitted (e.g. direct platform traffic).
            return Ok(());
        };
        let n = self.config.stream.chunks_for(rec.body.len() as u64);
        let chunks = plan(rec.dispatched, rec.completed, rec.body.len() as u64, n);
        self.metrics.chunks.add(n as u64);
        let reply = InvokeReply {
            function: rec.function.clone(),
            arrived: meta.arrived,
            dispatched: rec.dispatched,
            completed: rec.completed,
            cold: rec.cold,
            cached: false,
            body: rec.body.clone(),
            chunks,
        };
        self.metrics
            .observe_ttfc(PLATFORM_GEAR, reply.ttfc_ms(), rec.cold);
        if let Some(key) = &meta.cache_key {
            match self
                .cache
                .insert(key, &rec.function, rec.body.clone(), rec.completed)
            {
                CacheInsert::Stored { evicted } => {
                    self.metrics.cache_insertions.inc();
                    if evicted {
                        self.metrics.cache_evictions.inc();
                    }
                }
                CacheInsert::Bypass => {}
            }
        }
        self.replies.push(reply);

        if let Some(promoted) = self.admission.release() {
            self.metrics.admitted.inc();
            self.metrics.deferred.inc();
            let key = self
                .cache
                .ttl_for(&promoted.function)
                .map(|_| cache_key(&promoted.function, &promoted.req));
            self.submit(rec.completed, promoted, key)?;
        }
        Ok(())
    }

    fn submit(
        &mut self,
        at: SimInstant,
        parked: Parked,
        cache_key: Option<String>,
    ) -> Result<(), GatewayError> {
        let id = self
            .platform
            .submit(at, &parked.function, parked.req)
            .map_err(GatewayError::Platform)?;
        self.inflight.insert(
            id,
            Inflight {
                arrived: parked.arrived,
                cache_key,
            },
        );
        Ok(())
    }

    fn serve_cached(&mut self, at: SimInstant, function: &str, body: Bytes) {
        let serve = SimDuration::from_millis_f64(self.config.cache.serve_ms.max(0.0));
        let completed = at + serve;
        let n = self.config.stream.chunks_for(body.len() as u64);
        let chunks = plan(at, completed, body.len() as u64, n);
        self.metrics.chunks.add(n as u64);
        self.metrics
            .observe_cached((completed - at).as_millis_f64());
        self.replies.push(InvokeReply {
            function: function.to_owned(),
            arrived: at,
            dispatched: at,
            completed,
            cold: false,
            cached: true,
            body,
            chunks,
        });
    }
}

/// Cache key: function name plus an FNV-1a hash of path and body —
/// deterministic, allocation-light, and collision-safe enough for a
/// simulator's cache (same function + same request bytes ⇒ same key).
fn cache_key(function: &str, req: &Request) -> String {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for byte in req.path.bytes().chain(req.body.iter().copied()) {
        h ^= u64::from(byte);
        h = h.wrapping_mul(PRIME);
    }
    format!("{function}\u{1}{h:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_key_separates_functions_and_bodies() {
        let a = cache_key("f", &Request::empty());
        let b = cache_key("g", &Request::empty());
        let c = cache_key(
            "f",
            &Request {
                path: "/".to_owned(),
                body: Bytes::from_static(b"x"),
            },
        );
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, cache_key("f", &Request::empty()), "deterministic");
    }
}
