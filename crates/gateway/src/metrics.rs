//! Gateway-level Prometheus metrics.
//!
//! The `gateway_*` series: admission outcomes, result-cache outcomes,
//! queue-depth and time-to-first-chunk distributions. Reuses the
//! platform's [`Counter`]/[`Histogram`] primitives so everything
//! renders in the same exposition format, and merges per-shard blocks
//! the way [`FleetMetrics`] does.
//!
//! [`FleetMetrics`]: ../prebake_fleet/metrics/struct.FleetMetrics.html

use std::collections::BTreeMap;

use prebake_platform::metrics::{render_histogram, Counter, Histogram};

/// TTFC / cached-path buckets: finer than the fleet latency bounds
/// below 10ms, because the cached path and the prefetch first chunk
/// both live there.
pub const GATEWAY_BOUNDS_MS: [f64; 14] = [
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 1_000.0, 10_000.0,
];

/// Queue-depth buckets (entries, not milliseconds).
pub const QUEUE_DEPTH_BOUNDS: [f64; 10] =
    [0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 64.0, 256.0, 1_024.0, 4_096.0];

/// Counters and distributions for one gateway (or one fleet shard's
/// gateway frontier; shards merge at fold).
#[derive(Debug, Clone)]
pub struct GatewayMetrics {
    /// Everything offered to the gateway.
    pub arrivals: Counter,
    /// Arrivals admitted to the backend (immediately or after queueing).
    pub admitted: Counter,
    /// Arrivals that waited in the admission queue before admission.
    pub deferred: Counter,
    /// Arrivals shed at the gateway (admission queue full).
    pub shed_backpressure: Counter,
    /// Admitted arrivals the backend refused (downstream queue cap);
    /// reclassified as shed.
    pub shed_downstream: Counter,
    /// Cache lookups answered at the edge.
    pub cache_hits: Counter,
    /// Cache lookups that found nothing.
    pub cache_misses: Counter,
    /// Cache lookups that found an expired entry.
    pub cache_stale: Counter,
    /// Values stored in the cache.
    pub cache_insertions: Counter,
    /// Entries evicted by the capacity bound.
    pub cache_evictions: Counter,
    /// Response chunks streamed.
    pub chunks: Counter,
    /// Admission-queue depth sampled at each arrival.
    pub queue_depth: Histogram,
    /// Time to first chunk, backend-served requests, ms.
    pub ttfc_ms: Histogram,
    /// Time to first chunk, cold backend-served requests only, ms — the
    /// split the gear comparison reads (warm TTFC is gear-independent).
    pub ttfc_cold_ms: Histogram,
    /// Time to first chunk split by serving gear, ms. Keyed by gear
    /// label so this crate stays independent of the fleet's gear enum.
    pub ttfc_by_gear: BTreeMap<&'static str, Histogram>,
    /// Edge-serve latency of cache hits, ms.
    pub cached_serve_ms: Histogram,
    /// Slowest cache hit observed, ms — the `<10ms cached path`
    /// assertion reads this directly.
    pub cached_serve_max_ms: f64,
}

impl Default for GatewayMetrics {
    fn default() -> Self {
        GatewayMetrics {
            arrivals: Counter::default(),
            admitted: Counter::default(),
            deferred: Counter::default(),
            shed_backpressure: Counter::default(),
            shed_downstream: Counter::default(),
            cache_hits: Counter::default(),
            cache_misses: Counter::default(),
            cache_stale: Counter::default(),
            cache_insertions: Counter::default(),
            cache_evictions: Counter::default(),
            chunks: Counter::default(),
            queue_depth: Histogram::new(&QUEUE_DEPTH_BOUNDS),
            ttfc_ms: Histogram::new(&GATEWAY_BOUNDS_MS),
            ttfc_cold_ms: Histogram::new(&GATEWAY_BOUNDS_MS),
            ttfc_by_gear: BTreeMap::new(),
            cached_serve_ms: Histogram::new(&GATEWAY_BOUNDS_MS),
            cached_serve_max_ms: 0.0,
        }
    }
}

impl GatewayMetrics {
    /// Records one backend-served first chunk: aggregate, cold split,
    /// and the per-gear histogram (created on first use per label).
    pub fn observe_ttfc(&mut self, gear: &'static str, ttfc_ms: f64, cold: bool) {
        self.ttfc_ms.observe(ttfc_ms);
        if cold {
            self.ttfc_cold_ms.observe(ttfc_ms);
        }
        self.ttfc_by_gear
            .entry(gear)
            .or_insert_with(|| Histogram::new(&GATEWAY_BOUNDS_MS))
            .observe(ttfc_ms);
    }

    /// Records one edge-served cache hit.
    pub fn observe_cached(&mut self, serve_ms: f64) {
        self.cached_serve_ms.observe(serve_ms);
        if serve_ms > self.cached_serve_max_ms {
            self.cached_serve_max_ms = serve_ms;
        }
    }

    /// Total shed (backpressure + downstream).
    pub fn shed(&self) -> u64 {
        self.shed_backpressure.get() + self.shed_downstream.get()
    }

    /// Hits over cacheable lookups (hits + misses + stale); 0 when the
    /// cache saw no traffic.
    pub fn cache_hit_ratio(&self) -> f64 {
        let lookups = self.cache_hits.get() + self.cache_misses.get() + self.cache_stale.get();
        if lookups == 0 {
            0.0
        } else {
            self.cache_hits.get() as f64 / lookups as f64
        }
    }

    /// Folds another block into this one — the shard-merge path.
    pub fn merge(&mut self, other: &GatewayMetrics) {
        self.arrivals.add(other.arrivals.get());
        self.admitted.add(other.admitted.get());
        self.deferred.add(other.deferred.get());
        self.shed_backpressure.add(other.shed_backpressure.get());
        self.shed_downstream.add(other.shed_downstream.get());
        self.cache_hits.add(other.cache_hits.get());
        self.cache_misses.add(other.cache_misses.get());
        self.cache_stale.add(other.cache_stale.get());
        self.cache_insertions.add(other.cache_insertions.get());
        self.cache_evictions.add(other.cache_evictions.get());
        self.chunks.add(other.chunks.get());
        self.queue_depth.merge(&other.queue_depth);
        self.ttfc_ms.merge(&other.ttfc_ms);
        self.ttfc_cold_ms.merge(&other.ttfc_cold_ms);
        for (gear, h) in &other.ttfc_by_gear {
            self.ttfc_by_gear
                .entry(gear)
                .or_insert_with(|| Histogram::new(&GATEWAY_BOUNDS_MS))
                .merge(h);
        }
        self.cached_serve_ms.merge(&other.cached_serve_ms);
        if other.cached_serve_max_ms > self.cached_serve_max_ms {
            self.cached_serve_max_ms = other.cached_serve_max_ms;
        }
    }

    /// Renders the `gateway_*` series in the Prometheus text exposition
    /// format.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, value) in [
            ("gateway_arrivals_total", self.arrivals.get()),
            ("gateway_admitted_total", self.admitted.get()),
            ("gateway_deferred_total", self.deferred.get()),
            ("gateway_cache_hits_total", self.cache_hits.get()),
            ("gateway_cache_misses_total", self.cache_misses.get()),
            ("gateway_cache_stale_total", self.cache_stale.get()),
            (
                "gateway_cache_insertions_total",
                self.cache_insertions.get(),
            ),
            ("gateway_cache_evictions_total", self.cache_evictions.get()),
            ("gateway_chunks_total", self.chunks.get()),
        ] {
            out.push_str(&format!("{name} {value}\n"));
        }
        out.push_str(&format!(
            "gateway_shed_total{{reason=\"backpressure\"}} {}\n",
            self.shed_backpressure.get()
        ));
        out.push_str(&format!(
            "gateway_shed_total{{reason=\"downstream\"}} {}\n",
            self.shed_downstream.get()
        ));
        render_histogram(&mut out, "gateway_queue_depth", "", &self.queue_depth);
        render_histogram(&mut out, "gateway_ttfc_ms", "", &self.ttfc_ms);
        render_histogram(&mut out, "gateway_ttfc_cold_ms", "", &self.ttfc_cold_ms);
        for (gear, h) in &self.ttfc_by_gear {
            if h.count() > 0 {
                let labels = format!("gear=\"{gear}\"");
                render_histogram(&mut out, "gateway_gear_ttfc_ms", &labels, h);
            }
        }
        render_histogram(
            &mut out,
            "gateway_cached_serve_ms",
            "",
            &self.cached_serve_ms,
        );
        out.push_str(&format!(
            "gateway_cached_serve_max_ms {}\n",
            self.cached_serve_max_ms
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observe_ttfc_feeds_cold_and_gear_splits() {
        let mut m = GatewayMetrics::default();
        m.observe_ttfc("prefetch", 4.0, true);
        m.observe_ttfc("prefetch", 0.4, false);
        m.observe_ttfc("eager", 60.0, true);
        assert_eq!(m.ttfc_ms.count(), 3);
        assert_eq!(m.ttfc_cold_ms.count(), 2);
        assert_eq!(m.ttfc_by_gear["prefetch"].count(), 2);
        assert_eq!(m.ttfc_by_gear["eager"].count(), 1);
    }

    #[test]
    fn cached_max_tracks_and_merges() {
        let mut a = GatewayMetrics::default();
        a.observe_cached(0.5);
        a.observe_cached(0.2);
        assert_eq!(a.cached_serve_max_ms, 0.5);
        let mut b = GatewayMetrics::default();
        b.observe_cached(0.9);
        b.observe_ttfc("lazy", 2.0, true);
        a.merge(&b);
        assert_eq!(a.cached_serve_max_ms, 0.9);
        assert_eq!(a.cached_serve_ms.count(), 3);
        assert_eq!(a.ttfc_by_gear["lazy"].count(), 1);
    }

    #[test]
    fn hit_ratio_counts_only_cacheable_lookups() {
        let mut m = GatewayMetrics::default();
        assert_eq!(m.cache_hit_ratio(), 0.0);
        m.cache_hits.add(3);
        m.cache_misses.add(1);
        m.cache_stale.add(1);
        assert!((m.cache_hit_ratio() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn render_includes_every_series_and_parses() {
        let mut m = GatewayMetrics::default();
        m.arrivals.add(10);
        m.admitted.add(8);
        m.shed_backpressure.add(2);
        m.queue_depth.observe(3.0);
        m.observe_ttfc("vanilla", 120.0, true);
        m.observe_cached(0.5);
        let text = m.render();
        assert!(text.contains("gateway_arrivals_total 10"));
        assert!(text.contains("gateway_shed_total{reason=\"backpressure\"} 2"));
        assert!(text.contains("gateway_shed_total{reason=\"downstream\"} 0"));
        assert!(text.contains("gateway_ttfc_ms_count 1"));
        assert!(text.contains("gateway_gear_ttfc_ms_count{gear=\"vanilla\"} 1"));
        assert!(text.contains("gateway_cached_serve_max_ms 0.5"));
        for line in text.lines() {
            let (_, value) = line.rsplit_once(' ').expect("space-separated sample");
            assert!(value.parse::<f64>().is_ok(), "unparseable value in {line}");
        }
    }
}
