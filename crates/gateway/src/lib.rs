//! Asynchronous streaming gateway over the virtual clock.
//!
//! The crate the platform was missing between the load generator and
//! the scheduler: a request *frontend*. Four pieces, each reusable on
//! its own:
//!
//! - [`admission`] — bounded concurrent-inflight admission with a FIFO
//!   overflow queue and typed backpressure outcomes, conservation-
//!   checked (`offered == admitted + shed + queued` at every instant).
//! - [`cache`] — a deterministic TTL result cache for idempotent
//!   invocations: hits serve at the edge in well under 10ms of virtual
//!   time, with hit/miss/stale classification.
//! - [`stream`] — chunked response delivery across the service window,
//!   making *time to first chunk* a first-class latency distinct from
//!   completion (where the lazy/prefetch restore gears' early first
//!   response becomes visible platform-wide).
//! - [`sdk`] — a typed client ([`GatewayClient`]) with closed-loop and
//!   open-loop drivers over `platform::loadgen` streams.
//!
//! [`Gateway`] composes the first three over one
//! [`Platform`](prebake_platform::Platform); the fleet scheduler embeds
//! the same [`AdmissionController`]/[`ResultCache`]/[`stream`] pieces
//! per shard as its arrival frontier (see `prebake-fleet`). Everything
//! runs on virtual time with no wall-clock or hash-order dependence, so
//! a seeded run is bit-reproducible.

#![warn(missing_docs)]

pub mod admission;
pub mod cache;
pub mod gateway;
pub mod metrics;
pub mod sdk;
pub mod stream;

pub use admission::{AdmissionController, AdmissionOutcome, AdmissionStats};
pub use cache::{CacheConfig, CacheInsert, CacheLookup, ResultCache};
pub use gateway::{ArrivalOutcome, DriveReport, Gateway, GatewayConfig, GatewayError, InvokeReply};
pub use metrics::{GatewayMetrics, GATEWAY_BOUNDS_MS};
pub use sdk::GatewayClient;
pub use stream::{first_chunk_at, plan, Chunk, StreamConfig};
