//! The typed client SDK.
//!
//! [`GatewayClient`] is the caller-facing surface over a [`Gateway`]:
//! deploy a function, fire single invocations, or drive whole load
//! shapes — closed-loop (next request leaves when the previous reply
//! lands, plus think time) and open-loop (arrivals follow a
//! [`loadgen`](prebake_platform::loadgen) stream regardless of
//! completions, the shape that exposes queueing).

use prebake_platform::loadgen::{Arrival, LoadResult};
use prebake_runtime::http::Request;
use prebake_sim::time::SimDuration;

use crate::gateway::{ArrivalOutcome, DriveReport, Gateway, GatewayError, InvokeReply};
use crate::metrics::GatewayMetrics;

/// A typed client bound to one [`Gateway`].
pub struct GatewayClient {
    gateway: Gateway,
}

impl GatewayClient {
    /// Wraps a gateway.
    pub fn new(gateway: Gateway) -> GatewayClient {
        GatewayClient { gateway }
    }

    /// The wrapped gateway (metrics, platform, replies).
    pub fn gateway(&self) -> &Gateway {
        &self.gateway
    }

    /// Mutable access to the wrapped gateway, for callers that mix raw
    /// [`Gateway::arrive`] offers with client-level invocations.
    pub fn gateway_mut(&mut self) -> &mut Gateway {
        &mut self.gateway
    }

    /// Unwraps the client back into its gateway.
    pub fn into_gateway(self) -> Gateway {
        self.gateway
    }

    /// Gateway metrics accumulated so far.
    pub fn metrics(&self) -> &GatewayMetrics {
        self.gateway.metrics()
    }

    /// Deploys `function`.
    ///
    /// # Errors
    ///
    /// [`GatewayError::Platform`] if the function image is unknown.
    pub fn deploy(&mut self, function: &str) -> Result<(), GatewayError> {
        self.gateway.deploy(function)
    }

    /// Invokes `function` now and blocks (in virtual time) until its
    /// reply lands.
    ///
    /// # Errors
    ///
    /// [`GatewayError::Shed`] if admission rejected the invocation;
    /// platform errors otherwise.
    pub fn invoke(&mut self, function: &str, req: Request) -> Result<InvokeReply, GatewayError> {
        let at = self.gateway.now();
        let before = self.gateway.replies().len();
        match self.gateway.arrive(at, function, req)? {
            ArrivalOutcome::Shed => {
                return Err(GatewayError::Shed {
                    function: function.to_owned(),
                })
            }
            ArrivalOutcome::Cached => {}
            ArrivalOutcome::Admitted | ArrivalOutcome::Queued => self.gateway.drain()?,
        }
        Ok(self
            .gateway
            .replies()
            .get(before)
            .cloned()
            .expect("drained invocation produced a reply"))
    }

    /// Closed-loop driver: `n` back-to-back invocations of `function`,
    /// each leaving `think` after the previous reply completes.
    ///
    /// # Errors
    ///
    /// Propagates the first shed or platform error.
    pub fn closed_loop(
        &mut self,
        function: &str,
        req: &Request,
        n: usize,
        think: SimDuration,
    ) -> Result<Vec<InvokeReply>, GatewayError> {
        let mut replies = Vec::with_capacity(n);
        let mut at = self.gateway.now();
        for _ in 0..n {
            let before = self.gateway.replies().len();
            match self.gateway.arrive(at, function, req.clone())? {
                ArrivalOutcome::Shed => {
                    return Err(GatewayError::Shed {
                        function: function.to_owned(),
                    })
                }
                ArrivalOutcome::Cached => {}
                ArrivalOutcome::Admitted | ArrivalOutcome::Queued => self.gateway.drain()?,
            }
            let reply = self
                .gateway
                .replies()
                .get(before)
                .cloned()
                .expect("closed-loop invocation produced a reply");
            at = reply.completed + think;
            replies.push(reply);
        }
        Ok(replies)
    }

    /// Open-loop driver: offers every arrival of `stream` at its own
    /// instant (body from `req`), sheds and all, then drains. The
    /// returned report carries replies in completion order plus final
    /// admission accounting — `report.admission.shed` counts the
    /// arrivals that got no reply.
    ///
    /// # Errors
    ///
    /// In-band generator errors and platform errors; sheds are counted,
    /// not raised.
    pub fn open_loop(
        &mut self,
        stream: impl IntoIterator<Item = LoadResult<Arrival>>,
        req: &Request,
    ) -> Result<DriveReport, GatewayError> {
        for arrival in stream {
            let arrival = arrival?;
            self.gateway
                .arrive(arrival.at, &arrival.function, req.clone())?;
        }
        self.gateway.finish()
    }
}
