//! # prebake-lazy
//!
//! Lazy restore with working-set recording and prefetch — the REAP-style
//! (ASPLOS '21) refinement of prebaking's eager snapshot restore, built
//! over [`prebake_criu`]'s `--lazy-pages` analogue.
//!
//! The paper restores snapshots *eagerly*: every dumped page is read and
//! installed before the replica resumes, so restore time grows with
//! snapshot size (Fig. 5). But a function's first invocation touches only
//! a fraction of those pages. This crate packages the three-step remedy:
//!
//! 1. **Record** ([`record_working_set`]) — restore once in
//!    [`RestoreMode::Record`], drive the first invocation, and harvest
//!    the *ordered* page-fault log as a [`WsImage`] (`ws.img`) stored
//!    beside the other snapshot images.
//! 2. **Prefetch** ([`RestoreMode::Prefetch`]) — later restores map the
//!    address space empty, bulk-load exactly the recorded working set in
//!    one batched copy, and resume; the cost is proportional to the
//!    working set, not the snapshot.
//! 3. **Demand-fault the rest** — residual pages outside the working set
//!    arrive through the fault handler on first touch.
//!
//! [`PrefetchPlan`] quantifies the trade: working-set coverage of the
//! snapshot and the residual page count a prefetch restore may still
//! fault on.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use prebake_criu::restore::{restore, RestoreMode, RestoreOptions};
use prebake_criu::{ImageSet, WsImage};
use prebake_sim::error::SysResult;
use prebake_sim::fs::join_path;
use prebake_sim::kernel::Kernel;
use prebake_sim::proc::Pid;
use prebake_sim::time::SimDuration;

/// Outcome of a working-set recording pass.
#[derive(Debug, Clone)]
pub struct RecordOutcome {
    /// The replica the record restore produced. It has served the drive
    /// closure's invocation; the caller retires it (`sys_exit`) or keeps
    /// serving with it.
    pub pid: Pid,
    /// The recorded working set, already persisted to [`RecordOutcome::ws_path`].
    pub ws: WsImage,
    /// Guest path the working set was written to (`<images_dir>/ws.img`).
    pub ws_path: String,
    /// Major faults the drive took (equals `ws.len()`).
    pub major_faults: u64,
    /// Minor (demand-zero) faults the drive took.
    pub minor_faults: u64,
    /// Virtual time of the whole pass: restore + drive + persist.
    pub elapsed: SimDuration,
}

/// Restores the snapshot in `images_dir` in [`RestoreMode::Record`],
/// drives the first invocation via `drive`, and persists the ordered
/// fault log as `ws.img` next to the other images.
///
/// This is the bake-time step of the record/prefetch cycle: the builder
/// runs it once per function version, and the `ws.img` it writes ships in
/// the container image with the rest of the snapshot.
///
/// # Errors
///
/// Propagates restore, drive and filesystem errors.
pub fn record_working_set<F>(
    kernel: &mut Kernel,
    requester: Pid,
    images_dir: &str,
    drive: F,
) -> SysResult<RecordOutcome>
where
    F: FnOnce(&mut Kernel, Pid) -> SysResult<()>,
{
    let t0 = kernel.now();
    let opts = RestoreOptions::with_mode(images_dir, RestoreMode::Record);
    let stats = restore(kernel, requester, &opts)?;
    drive(kernel, stats.pid)?;
    let log = kernel.uffd_take_log(stats.pid)?;
    let (major_faults, minor_faults) = kernel.uffd_fault_counts(stats.pid);
    let ws = WsImage::from_fault_log(log);
    let ws_path = join_path(images_dir, ImageSet::WS_NAME);
    kernel.fs_write_file(&ws_path, ws.encode())?;
    Ok(RecordOutcome {
        pid: stats.pid,
        ws,
        ws_path,
        major_faults,
        minor_faults,
        elapsed: kernel.now() - t0,
    })
}

/// Loads a previously recorded working set, if one exists beside the
/// snapshot images.
///
/// # Errors
///
/// Filesystem errors; a present-but-corrupt `ws.img` is
/// [`prebake_sim::Errno::Einval`].
pub fn load_working_set(kernel: &mut Kernel, images_dir: &str) -> SysResult<Option<WsImage>> {
    let path = join_path(images_dir, ImageSet::WS_NAME);
    if !kernel.fs_exists(&path) {
        return Ok(None);
    }
    let bytes = kernel.fs_read_file(&path)?;
    Ok(Some(
        WsImage::parse(&bytes).map_err(|_| prebake_sim::Errno::Einval)?,
    ))
}

/// What a prefetch-mode restore of an image set would load up front
/// versus leave to demand faulting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchPlan {
    /// Entries in the recorded working set (repeats included: the log
    /// preserves fault order).
    pub ws_entries: usize,
    /// Distinct pages the prefetch will bulk-load.
    pub unique_ws_pages: usize,
    /// Non-zero pages stored in the snapshot.
    pub snapshot_pages: usize,
}

impl PrefetchPlan {
    /// Builds the plan for `set`; `None` if the set has no recorded
    /// working set.
    pub fn of(set: &ImageSet) -> Option<PrefetchPlan> {
        let ws = set.ws.as_ref()?;
        let unique: std::collections::BTreeSet<u64> = ws.pages.iter().copied().collect();
        Some(PrefetchPlan {
            ws_entries: ws.len(),
            unique_ws_pages: unique.len(),
            snapshot_pages: set.pages.stored_pages(),
        })
    }

    /// Fraction of the snapshot's stored pages the prefetch covers.
    pub fn coverage(&self) -> f64 {
        if self.snapshot_pages == 0 {
            return 1.0;
        }
        self.unique_ws_pages as f64 / self.snapshot_pages as f64
    }

    /// Pages a prefetch-mode restore may still major-fault on.
    pub fn residual_pages(&self) -> usize {
        self.snapshot_pages.saturating_sub(self.unique_ws_pages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prebake_criu::dump::{dump, read_images, DumpOptions};
    use prebake_sim::kernel::INIT_PID;
    use prebake_sim::mem::{Prot, VmaKind, PAGE_SIZE};

    fn checkpointed(seed: u64, pages: u64) -> (Kernel, Pid, prebake_sim::mem::VirtAddr) {
        let mut k = Kernel::new(seed);
        let tracer = k.sys_clone(INIT_PID).unwrap();
        let target = k.sys_clone(INIT_PID).unwrap();
        let a = k
            .sys_mmap(
                target,
                pages * PAGE_SIZE as u64,
                Prot::RW,
                VmaKind::RuntimeHeap,
            )
            .unwrap();
        for i in 0..pages {
            k.mem_write(
                target,
                a.add(i * PAGE_SIZE as u64),
                &[(i % 200 + 1) as u8; 64],
            )
            .unwrap();
        }
        dump(&mut k, tracer, &DumpOptions::new(target, "/img")).unwrap();
        (k, tracer, a)
    }

    #[test]
    fn record_persists_the_touched_prefix() {
        let (mut k, tracer, a) = checkpointed(1, 8);
        // The "first invocation" touches only the first 3 pages.
        let outcome = record_working_set(&mut k, tracer, "/img", |k, pid| {
            k.mem_read(pid, a, 3 * PAGE_SIZE as u64)?;
            Ok(())
        })
        .unwrap();
        assert_eq!(outcome.ws.len(), 3);
        assert_eq!(outcome.major_faults, 3);
        assert!(k.fs_exists("/img/ws.img"));
        assert_eq!(
            load_working_set(&mut k, "/img").unwrap().unwrap(),
            outcome.ws
        );
        k.sys_exit(outcome.pid, 0).unwrap();

        // A prefetch restore now loads exactly those 3 and leaves 5.
        let set = read_images(&mut k, "/img").unwrap();
        let plan = PrefetchPlan::of(&set).unwrap();
        assert_eq!(plan.unique_ws_pages, 3);
        assert_eq!(plan.snapshot_pages, 8);
        assert_eq!(plan.residual_pages(), 5);
        assert!((plan.coverage() - 0.375).abs() < 1e-9);
    }

    #[test]
    fn prefetch_after_record_serves_without_major_faults() {
        let (mut k, tracer, a) = checkpointed(2, 6);
        let outcome = record_working_set(&mut k, tracer, "/img", |k, pid| {
            k.mem_read(pid, a, 6 * PAGE_SIZE as u64)?;
            Ok(())
        })
        .unwrap();
        k.sys_exit(outcome.pid, 0).unwrap();

        let opts = RestoreOptions::with_mode("/img", RestoreMode::Prefetch);
        let stats = restore(&mut k, tracer, &opts).unwrap();
        assert_eq!(stats.pages_prefetched, 6);
        k.mem_read(stats.pid, a, 6 * PAGE_SIZE as u64).unwrap();
        assert_eq!(k.uffd_fault_counts(stats.pid), (0, 0));
    }

    #[test]
    fn missing_working_set_is_none() {
        let (mut k, _, _) = checkpointed(3, 2);
        assert!(load_working_set(&mut k, "/img").unwrap().is_none());
        let set = read_images(&mut k, "/img").unwrap();
        assert!(PrefetchPlan::of(&set).is_none());
    }

    #[test]
    fn corrupt_working_set_is_einval() {
        let (mut k, _, _) = checkpointed(4, 2);
        k.fs_write_file("/img/ws.img", vec![0xAB; 40]).unwrap();
        assert_eq!(
            load_working_set(&mut k, "/img").unwrap_err(),
            prebake_sim::Errno::Einval
        );
    }

    #[test]
    fn empty_plan_coverage_is_total() {
        let plan = PrefetchPlan {
            ws_entries: 0,
            unique_ws_pages: 0,
            snapshot_pages: 0,
        };
        assert!((plan.coverage() - 1.0).abs() < 1e-9);
        assert_eq!(plan.residual_pages(), 0);
    }
}
