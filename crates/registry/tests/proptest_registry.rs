//! Property tests for the registry tier: pull-through cache accounting
//! must be conservation-safe for arbitrary image mixtures — every pull
//! accounts for the full image as fetched-or-deduped bytes, a repeat
//! pull on the same node is free, eviction releases exactly what
//! admission charged, and the whole pipeline is deterministic per seed.

use std::collections::BTreeSet;

use proptest::prelude::*;

use prebake_registry::{ImageManifest, NodeCache, PullMode, RegistryCost, SnapshotRegistry};
use prebake_sim::mem::PAGE_SIZE;

/// Builds a fleet of synthetic manifests with varied sizes and shared
/// fractions, plus a pull order over them (with repeats).
fn build_fleet(
    shapes: &[(u64, f64)],
    order_raw: &[usize],
    seed: u64,
) -> (Vec<ImageManifest>, Vec<usize>) {
    let manifests: Vec<ImageManifest> = shapes
        .iter()
        .enumerate()
        .map(|(i, &(pages, shared))| {
            ImageManifest::synthetic(
                format!("fn-{i}"),
                pages * PAGE_SIZE as u64 + (seed % PAGE_SIZE as u64),
                shared,
                seed,
            )
        })
        .collect();
    let order = order_raw.iter().map(|ix| ix % manifests.len()).collect();
    (manifests, order)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Conservation: under every mode, every pull accounts for the full
    /// image — bytes fetched + bytes deduped == the manifest's total —
    /// and frames split the same way.
    #[test]
    fn every_pull_conserves_the_image(
        shapes in prop::collection::vec((1u64..200, 0.0f64..1.0), 1..8),
        order_raw in prop::collection::vec(any::<usize>(), 1..24),
        seed in any::<u64>(),
    ) {
        let (manifests, order) = build_fleet(&shapes, &order_raw, seed);
        for mode in [PullMode::Naive, PullMode::PullThrough, PullMode::DedupPullThrough] {
            let mut reg = SnapshotRegistry::new(RegistryCost::default());
            for m in &manifests {
                reg.publish(m.clone());
            }
            let mut node = NodeCache::new();
            let mut fetched = 0u64;
            let mut deduped = 0u64;
            for &i in &order {
                let m = &manifests[i];
                let receipt = reg.pull(m.id(), &mut node, mode).unwrap();
                prop_assert_eq!(
                    receipt.stats.total_bytes(),
                    m.total_bytes(),
                    "pull of {} under {:?} lost bytes",
                    m.id(),
                    mode
                );
                prop_assert_eq!(
                    receipt.stats.frames_fetched + receipt.stats.frames_deduped,
                    m.frame_count() as u64
                );
                // The clock charge follows the fetched bytes exactly.
                prop_assert_eq!(
                    receipt.wait,
                    reg.cost().pull_time(receipt.stats.bytes_fetched)
                );
                fetched += receipt.stats.bytes_fetched;
                deduped += receipt.stats.bytes_deduped;
            }
            // Registry-side accounting mirrors the per-pull receipts.
            prop_assert_eq!(reg.egress_bytes(), fetched);
            prop_assert_eq!(reg.dedup_bytes(), deduped);
            let total: u64 = order.iter().map(|&i| manifests[i].total_bytes()).sum();
            prop_assert_eq!(fetched + deduped, total);
        }
    }

    /// Under the caching modes a second pull of the same image on the
    /// same node is a hit and fetches zero bytes; naive mode re-fetches
    /// everything every time.
    #[test]
    fn repeat_pulls_on_a_node_are_free(
        shapes in prop::collection::vec((1u64..200, 0.0f64..1.0), 1..8),
        order_raw in prop::collection::vec(any::<usize>(), 1..24),
        seed in any::<u64>(),
    ) {
        let (manifests, order) = build_fleet(&shapes, &order_raw, seed);
        for mode in [PullMode::PullThrough, PullMode::DedupPullThrough] {
            let mut reg = SnapshotRegistry::new(RegistryCost::default());
            for m in &manifests {
                reg.publish(m.clone());
            }
            let mut node = NodeCache::new();
            let mut seen = BTreeSet::new();
            for &i in &order {
                let m = &manifests[i];
                let receipt = reg.pull(m.id(), &mut node, mode).unwrap();
                if seen.contains(&i) {
                    prop_assert!(receipt.stats.cache_hit);
                    prop_assert_eq!(receipt.stats.bytes_fetched, 0);
                    prop_assert_eq!(receipt.wait, prebake_sim::time::SimDuration::ZERO);
                } else {
                    prop_assert!(!receipt.stats.cache_hit);
                    seen.insert(i);
                }
            }
        }
        let mut reg = SnapshotRegistry::new(RegistryCost::default());
        for m in &manifests {
            reg.publish(m.clone());
        }
        let mut node = NodeCache::new();
        for &i in &order {
            let receipt = reg.pull(manifests[i].id(), &mut node, PullMode::Naive).unwrap();
            prop_assert_eq!(receipt.stats.bytes_fetched, manifests[i].total_bytes());
            prop_assert!(!receipt.stats.cache_hit);
        }
        prop_assert_eq!(node.image_count(), 0, "naive mode never caches");
    }

    /// Evicting every resident image returns the cache to empty, and
    /// the bytes freed along the way equal the cache's peak residency —
    /// shared frames are released exactly once, by their last image.
    #[test]
    fn eviction_releases_exactly_what_admission_charged(
        shapes in prop::collection::vec((1u64..200, 0.0f64..1.0), 1..8),
        order_raw in prop::collection::vec(any::<usize>(), 1..24),
        seed in any::<u64>(),
    ) {
        let (manifests, order) = build_fleet(&shapes, &order_raw, seed);
        let mut node = NodeCache::new();
        for &i in &order {
            node.admit(&manifests[i], PullMode::DedupPullThrough);
        }
        let resident = node.resident_bytes();
        let mut freed = 0u64;
        for m in &manifests {
            freed += node.evict(m.id());
        }
        prop_assert_eq!(freed, resident);
        prop_assert_eq!(node.resident_bytes(), 0);
        prop_assert_eq!(node.image_count(), 0);
        prop_assert_eq!(node.frame_count(), 0);
    }

    /// The same seed reproduces the same manifests and the same pull
    /// accounting, bit for bit.
    #[test]
    fn pull_accounting_is_deterministic_per_seed(
        shapes in prop::collection::vec((1u64..200, 0.0f64..1.0), 1..8),
        order_raw in prop::collection::vec(any::<usize>(), 1..24),
        seed in any::<u64>(),
        shared in 0.0f64..1.0,
    ) {
        let (manifests, order) = build_fleet(&shapes, &order_raw, seed);
        // Manifest synthesis itself is a pure function of its inputs.
        for m in &manifests {
            let rebuilt = ImageManifest::synthetic(m.id(), m.total_bytes(), shared, seed);
            let again = ImageManifest::synthetic(m.id(), m.total_bytes(), shared, seed);
            prop_assert_eq!(rebuilt, again);
        }
        let run = || {
            let mut reg = SnapshotRegistry::new(RegistryCost::default());
            for m in &manifests {
                reg.publish(m.clone());
            }
            let mut node = NodeCache::new();
            let mut log = Vec::new();
            for &i in &order {
                let r = reg
                    .pull(manifests[i].id(), &mut node, PullMode::DedupPullThrough)
                    .unwrap();
                log.push((r.stats.bytes_fetched, r.stats.bytes_deduped, r.wait.as_nanos()));
            }
            (log, reg.egress_bytes(), node.resident_bytes())
        };
        prop_assert_eq!(run(), run());
    }
}
