//! The registry tier: published manifests, a network charging model,
//! and fleet-wide egress accounting.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use prebake_sim::time::SimDuration;

use crate::cache::{NodeCache, PullMode, PullStats};
use crate::manifest::ImageManifest;

/// What moving bytes out of the registry costs over the virtual clock:
/// one round-trip latency per fetch plus a per-byte bandwidth charge.
/// Cache hits (zero bytes) cost nothing — the node never leaves its own
/// disk.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegistryCost {
    /// Round-trip latency of a non-empty fetch.
    pub latency: SimDuration,
    /// Transfer time per byte, nanoseconds.
    pub ns_per_byte: f64,
}

impl RegistryCost {
    /// A cost model from link bandwidth in gigabits per second.
    pub fn from_gbps(latency: SimDuration, gbps: f64) -> RegistryCost {
        assert!(gbps > 0.0, "bandwidth must be positive");
        RegistryCost {
            latency,
            ns_per_byte: 8.0 / gbps,
        }
    }

    /// Wall time a fetch of `bytes` charges. Zero bytes → zero time.
    pub fn pull_time(&self, bytes: u64) -> SimDuration {
        if bytes == 0 {
            return SimDuration::ZERO;
        }
        self.latency + SimDuration::from_nanos_f64(bytes as f64 * self.ns_per_byte)
    }
}

impl Default for RegistryCost {
    /// A same-region object store over a 10 Gbit/s NIC with ~12 ms of
    /// request latency — the regime vHive measures for remote snapshot
    /// fetch.
    fn default() -> Self {
        RegistryCost::from_gbps(SimDuration::from_millis(12), 10.0)
    }
}

/// Why a registry operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// A pull named an image no manifest was published for.
    UnknownImage(String),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::UnknownImage(id) => {
                write!(f, "no manifest published for image {id:?}")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

/// One completed pull, as the fleet observes it: transfer accounting
/// plus the virtual time the pulling node waited.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PullReceipt {
    /// Frame/byte accounting of the transfer.
    pub stats: PullStats,
    /// Wall time the pull charged (zero on a cache hit).
    pub wait: SimDuration,
}

/// The snapshot registry: published manifests plus cumulative
/// egress/pull accounting across every node that pulls from it.
///
/// The manifest store is `Arc`-shared so [`SnapshotRegistry::fork`] can
/// hand each fleet shard a re-entrant pull handle without copying
/// manifests; publishing after a fork copies-on-write.
#[derive(Debug, Clone, Default)]
pub struct SnapshotRegistry {
    cost: RegistryCost,
    manifests: Arc<BTreeMap<String, ImageManifest>>,
    egress_bytes: u64,
    dedup_bytes: u64,
    pulls: u64,
    cache_hits: u64,
}

impl SnapshotRegistry {
    /// An empty registry with the given charging model.
    pub fn new(cost: RegistryCost) -> SnapshotRegistry {
        SnapshotRegistry {
            cost,
            ..SnapshotRegistry::default()
        }
    }

    /// The charging model.
    pub fn cost(&self) -> &RegistryCost {
        &self.cost
    }

    /// Publishes a manifest under its id, replacing (and returning) any
    /// previous version.
    pub fn publish(&mut self, manifest: ImageManifest) -> Option<ImageManifest> {
        Arc::make_mut(&mut self.manifests).insert(manifest.id().to_owned(), manifest)
    }

    /// A shard-local pull handle: shares this registry's manifest store
    /// (no copy) under the same cost model, with fresh zeroed
    /// accounting, so independent shards can pull concurrently and
    /// their traffic can be summed back with
    /// [`SnapshotRegistry::absorb`].
    pub fn fork(&self) -> SnapshotRegistry {
        SnapshotRegistry {
            cost: self.cost,
            manifests: Arc::clone(&self.manifests),
            egress_bytes: 0,
            dedup_bytes: 0,
            pulls: 0,
            cache_hits: 0,
        }
    }

    /// Folds a forked handle's accounting back into this registry; the
    /// manifest store is untouched.
    pub fn absorb(&mut self, other: &SnapshotRegistry) {
        self.egress_bytes += other.egress_bytes;
        self.dedup_bytes += other.dedup_bytes;
        self.pulls += other.pulls;
        self.cache_hits += other.cache_hits;
    }

    /// Looks up a published manifest.
    pub fn manifest(&self, id: &str) -> Option<&ImageManifest> {
        self.manifests.get(id)
    }

    /// Number of published manifests.
    pub fn manifest_count(&self) -> usize {
        self.manifests.len()
    }

    /// Pulls `id` into `node` under `mode`: admits the image to the
    /// node cache, charges the transfer, and returns the receipt.
    ///
    /// # Errors
    ///
    /// [`RegistryError::UnknownImage`] if no manifest is published.
    pub fn pull(
        &mut self,
        id: &str,
        node: &mut NodeCache,
        mode: PullMode,
    ) -> Result<PullReceipt, RegistryError> {
        let manifest = self
            .manifests
            .get(id)
            .ok_or_else(|| RegistryError::UnknownImage(id.to_owned()))?;
        let stats = node.admit(manifest, mode);
        self.pulls += 1;
        self.egress_bytes += stats.bytes_fetched;
        self.dedup_bytes += stats.bytes_deduped;
        if stats.cache_hit {
            self.cache_hits += 1;
        }
        Ok(PullReceipt {
            stats,
            wait: self.cost.pull_time(stats.bytes_fetched),
        })
    }

    /// Total bytes served over the network across all pulls.
    pub fn egress_bytes(&self) -> u64 {
        self.egress_bytes
    }

    /// Total bytes satisfied node-locally instead of over the network.
    pub fn dedup_bytes(&self) -> u64 {
        self.dedup_bytes
    }

    /// Pulls served (hits included).
    pub fn pulls(&self) -> u64 {
        self.pulls
    }

    /// Pulls that were node-cache hits.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prebake_sim::mem::PAGE_SIZE;

    #[test]
    fn cost_model_charges_latency_plus_bandwidth() {
        let cost = RegistryCost::from_gbps(SimDuration::from_millis(10), 8.0);
        // 8 Gbit/s = 1 ns/byte: 1 MB ≈ 1 ms on the wire.
        let t = cost.pull_time(1_000_000);
        assert_eq!(t, SimDuration::from_millis(11));
        assert_eq!(cost.pull_time(0), SimDuration::ZERO, "hits are free");
        let fast = RegistryCost::from_gbps(SimDuration::from_millis(10), 80.0);
        assert!(fast.pull_time(1_000_000) < t);
    }

    #[test]
    fn unknown_image_is_rejected() {
        let mut reg = SnapshotRegistry::new(RegistryCost::default());
        let mut node = NodeCache::new();
        assert_eq!(
            reg.pull("ghost", &mut node, PullMode::Naive).unwrap_err(),
            RegistryError::UnknownImage("ghost".to_owned())
        );
        assert_eq!(reg.pulls(), 0);
    }

    #[test]
    fn pull_accounting_accumulates_across_nodes() {
        let mut reg = SnapshotRegistry::new(RegistryCost::default());
        let m = ImageManifest::new("f", [1, 2, 3], 100);
        let total = m.total_bytes();
        assert!(reg.publish(m).is_none());
        assert_eq!(reg.manifest_count(), 1);

        let mut node_a = NodeCache::new();
        let mut node_b = NodeCache::new();
        let first = reg
            .pull("f", &mut node_a, PullMode::DedupPullThrough)
            .unwrap();
        assert_eq!(first.stats.bytes_fetched, total);
        assert!(first.wait > SimDuration::ZERO);

        // Same node again: hit, free, instant.
        let again = reg
            .pull("f", &mut node_a, PullMode::DedupPullThrough)
            .unwrap();
        assert!(again.stats.cache_hit);
        assert_eq!(again.wait, SimDuration::ZERO);

        // A different node pays the full transfer: caches are per-node.
        let other = reg
            .pull("f", &mut node_b, PullMode::DedupPullThrough)
            .unwrap();
        assert_eq!(other.stats.bytes_fetched, total);

        assert_eq!(reg.pulls(), 3);
        assert_eq!(reg.cache_hits(), 1);
        assert_eq!(reg.egress_bytes(), 2 * total);
        assert_eq!(reg.dedup_bytes(), total);
    }

    #[test]
    fn fork_shares_manifests_and_absorb_sums_accounting() {
        let mut reg = SnapshotRegistry::new(RegistryCost::default());
        let m = ImageManifest::new("f", [1, 2, 3], 100);
        let total = m.total_bytes();
        reg.publish(m);

        let mut shard_a = reg.fork();
        let mut shard_b = reg.fork();
        assert_eq!(shard_a.manifest_count(), 1, "manifests shared, not copied");

        let mut node_a = NodeCache::new();
        let mut node_b = NodeCache::new();
        shard_a
            .pull("f", &mut node_a, PullMode::DedupPullThrough)
            .unwrap();
        shard_a
            .pull("f", &mut node_a, PullMode::DedupPullThrough)
            .unwrap();
        shard_b
            .pull("f", &mut node_b, PullMode::DedupPullThrough)
            .unwrap();

        // Forks account independently; the parent stays untouched...
        assert_eq!(reg.pulls(), 0);
        assert_eq!(shard_a.pulls(), 2);
        assert_eq!(shard_a.cache_hits(), 1);
        assert_eq!(shard_b.egress_bytes(), total);

        // ...until absorbed back in shard order.
        reg.absorb(&shard_a);
        reg.absorb(&shard_b);
        assert_eq!(reg.pulls(), 3);
        assert_eq!(reg.cache_hits(), 1);
        assert_eq!(reg.egress_bytes(), 2 * total);
        assert_eq!(reg.dedup_bytes(), total);

        // Publishing after a fork copies-on-write: forks keep the old view.
        reg.publish(ImageManifest::new("g", [7], 0));
        assert_eq!(reg.manifest_count(), 2);
        assert_eq!(shard_a.manifest_count(), 1);
    }

    #[test]
    fn republish_replaces_the_manifest() {
        let mut reg = SnapshotRegistry::default();
        reg.publish(ImageManifest::new("f", [1], 0));
        let old = reg.publish(ImageManifest::new("f", [1, 2], 0)).unwrap();
        assert_eq!(old.frame_count(), 1);
        assert_eq!(reg.manifest("f").unwrap().frame_count(), 2);
        assert_eq!(
            reg.manifest("f").unwrap().total_bytes(),
            2 * PAGE_SIZE as u64
        );
    }
}
