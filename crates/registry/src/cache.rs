//! Per-node pull-through image caches.
//!
//! A [`NodeCache`] tracks which images — and, frame-granularly, which
//! page frames — are already resident on one worker node. Admission is
//! dedup-aware with the same accounting the host-side
//! `prebake_criu::ImageCache` enforces its byte budget with: each
//! distinct frame is charged once node-wide no matter how many resident
//! images reference it, so cross-function sharing translates directly
//! into bytes that never cross the network.

use std::collections::BTreeMap;

use crate::manifest::ImageManifest;

/// How a node satisfies an image pull.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PullMode {
    /// Fetch the full image from the registry on every pull; nothing is
    /// cached on the node (the "pull full image every placement"
    /// baseline).
    Naive,
    /// Cache whole images: a resident image re-pulls for free, but a
    /// miss fetches every byte even when another image on the node
    /// already holds most of its frames.
    PullThrough,
    /// Frame-granular pull-through: a miss fetches only the frames no
    /// resident image already holds, plus the image metadata.
    DedupPullThrough,
}

impl PullMode {
    /// Short label used in reports and policy names.
    pub fn label(self) -> &'static str {
        match self {
            PullMode::Naive => "naive",
            PullMode::PullThrough => "pull-through",
            PullMode::DedupPullThrough => "dedup",
        }
    }
}

/// Outcome of one image pull against a node cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PullStats {
    /// Bytes that crossed the network (registry egress).
    pub bytes_fetched: u64,
    /// Bytes the node already held (frames shared with resident images,
    /// or the whole image on a cache hit).
    pub bytes_deduped: u64,
    /// Frames transferred.
    pub frames_fetched: u64,
    /// Frames satisfied locally.
    pub frames_deduped: u64,
    /// Whether the image was already resident (no registry round-trip).
    pub cache_hit: bool,
}

impl PullStats {
    /// Conservation check: every pull accounts for the full image.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_fetched + self.bytes_deduped
    }
}

/// One resident image's bookkeeping.
#[derive(Debug, Clone)]
struct ResidentImage {
    metadata_bytes: u64,
    frame_hashes: Vec<u64>,
}

/// One node's pull-through image cache.
#[derive(Debug, Clone, Default)]
pub struct NodeCache {
    /// Frame hash → number of resident images referencing it.
    frames: BTreeMap<u64, u32>,
    images: BTreeMap<String, ResidentImage>,
}

impl NodeCache {
    /// An empty cache.
    pub fn new() -> NodeCache {
        NodeCache::default()
    }

    /// Whether `image_id` is resident.
    pub fn contains(&self, image_id: &str) -> bool {
        self.images.contains_key(image_id)
    }

    /// Number of resident images.
    pub fn image_count(&self) -> usize {
        self.images.len()
    }

    /// Number of distinct resident frames.
    pub fn frame_count(&self) -> usize {
        self.frames.len()
    }

    /// Bytes the cache occupies on the node: resident image metadata
    /// plus one charge per distinct frame (dedup-aware, mirroring
    /// `ImageCache::charged_bytes`).
    pub fn resident_bytes(&self) -> u64 {
        let metadata: u64 = self.images.values().map(|i| i.metadata_bytes).sum();
        metadata + (self.frames.len() * prebake_sim::mem::PAGE_SIZE) as u64
    }

    /// Bytes a pull of `manifest` under `mode` would fetch from the
    /// registry — the placement affinity signal ("schedule where the
    /// image is warm").
    pub fn missing_bytes(&self, manifest: &ImageManifest, mode: PullMode) -> u64 {
        match mode {
            PullMode::Naive => manifest.total_bytes(),
            PullMode::PullThrough => {
                if self.contains(manifest.id()) {
                    0
                } else {
                    manifest.total_bytes()
                }
            }
            PullMode::DedupPullThrough => {
                if self.contains(manifest.id()) {
                    return 0;
                }
                let missing = manifest
                    .frame_hashes()
                    .iter()
                    .filter(|h| !self.frames.contains_key(h))
                    .count();
                manifest.metadata_bytes() + (missing * prebake_sim::mem::PAGE_SIZE) as u64
            }
        }
    }

    /// Pulls `manifest` through the cache: computes what must be
    /// fetched, then (except under [`PullMode::Naive`], which never
    /// caches) makes the image resident. Pulling a resident image is a
    /// hit and fetches nothing.
    pub fn admit(&mut self, manifest: &ImageManifest, mode: PullMode) -> PullStats {
        let total_frames = manifest.frame_count() as u64;
        if mode != PullMode::Naive && self.contains(manifest.id()) {
            return PullStats {
                bytes_fetched: 0,
                bytes_deduped: manifest.total_bytes(),
                frames_fetched: 0,
                frames_deduped: total_frames,
                cache_hit: true,
            };
        }
        let stats = match mode {
            PullMode::Naive => PullStats {
                bytes_fetched: manifest.total_bytes(),
                frames_fetched: total_frames,
                ..PullStats::default()
            },
            PullMode::PullThrough => PullStats {
                bytes_fetched: manifest.total_bytes(),
                frames_fetched: total_frames,
                ..PullStats::default()
            },
            PullMode::DedupPullThrough => {
                let missing = manifest
                    .frame_hashes()
                    .iter()
                    .filter(|h| !self.frames.contains_key(h))
                    .count() as u64;
                PullStats {
                    bytes_fetched: manifest.metadata_bytes()
                        + missing * prebake_sim::mem::PAGE_SIZE as u64,
                    bytes_deduped: (total_frames - missing) * prebake_sim::mem::PAGE_SIZE as u64,
                    frames_fetched: missing,
                    frames_deduped: total_frames - missing,
                    cache_hit: false,
                }
            }
        };
        if mode != PullMode::Naive {
            for &h in manifest.frame_hashes() {
                *self.frames.entry(h).or_insert(0) += 1;
            }
            self.images.insert(
                manifest.id().to_owned(),
                ResidentImage {
                    metadata_bytes: manifest.metadata_bytes(),
                    frame_hashes: manifest.frame_hashes().to_vec(),
                },
            );
        }
        stats
    }

    /// Drops `image_id` from the node, releasing frames no other
    /// resident image references. Returns the bytes freed on the node.
    pub fn evict(&mut self, image_id: &str) -> u64 {
        let Some(image) = self.images.remove(image_id) else {
            return 0;
        };
        let mut freed = image.metadata_bytes;
        for h in image.frame_hashes {
            match self.frames.get_mut(&h) {
                Some(1) => {
                    self.frames.remove(&h);
                    freed += prebake_sim::mem::PAGE_SIZE as u64;
                }
                Some(n) => *n -= 1,
                None => unreachable!("resident image frame missing from the pool"),
            }
        }
        freed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prebake_sim::mem::PAGE_SIZE;

    const PG: u64 = PAGE_SIZE as u64;

    fn manifest(id: &str, hashes: &[u64], metadata: u64) -> ImageManifest {
        ImageManifest::new(id, hashes.iter().copied(), metadata)
    }

    #[test]
    fn naive_always_fetches_and_never_caches() {
        let mut cache = NodeCache::new();
        let m = manifest("f", &[1, 2, 3], 100);
        for _ in 0..2 {
            let s = cache.admit(&m, PullMode::Naive);
            assert_eq!(s.bytes_fetched, 100 + 3 * PG);
            assert_eq!(s.bytes_deduped, 0);
            assert!(!s.cache_hit);
        }
        assert!(!cache.contains("f"));
        assert_eq!(cache.resident_bytes(), 0);
    }

    #[test]
    fn pull_through_hits_on_the_second_pull() {
        let mut cache = NodeCache::new();
        let m = manifest("f", &[1, 2, 3], 100);
        let first = cache.admit(&m, PullMode::PullThrough);
        assert_eq!(first.bytes_fetched, m.total_bytes());
        let second = cache.admit(&m, PullMode::PullThrough);
        assert_eq!(second.bytes_fetched, 0);
        assert_eq!(second.bytes_deduped, m.total_bytes());
        assert!(second.cache_hit);
        assert_eq!(cache.resident_bytes(), m.total_bytes());
    }

    #[test]
    fn pull_through_does_not_dedup_across_images() {
        let mut cache = NodeCache::new();
        cache.admit(&manifest("f", &[1, 2, 3], 0), PullMode::PullThrough);
        let s = cache.admit(&manifest("g", &[1, 2, 4], 0), PullMode::PullThrough);
        assert_eq!(s.bytes_fetched, 3 * PG, "whole image re-fetched");
        // The node still holds each distinct frame once.
        assert_eq!(cache.frame_count(), 4);
        assert_eq!(cache.resident_bytes(), 4 * PG);
    }

    #[test]
    fn dedup_fetches_only_missing_frames() {
        let mut cache = NodeCache::new();
        let f = manifest("f", &[1, 2, 3], 50);
        let g = manifest("g", &[2, 3, 4, 5], 70);
        let first = cache.admit(&f, PullMode::DedupPullThrough);
        assert_eq!(first.bytes_fetched, 50 + 3 * PG);
        assert_eq!(first.total_bytes(), f.total_bytes());

        let second = cache.admit(&g, PullMode::DedupPullThrough);
        assert_eq!(second.bytes_fetched, 70 + 2 * PG, "frames 2,3 ride free");
        assert_eq!(second.bytes_deduped, 2 * PG);
        assert_eq!(second.frames_deduped, 2);
        assert_eq!(second.total_bytes(), g.total_bytes());
        assert_eq!(cache.frame_count(), 5);
    }

    #[test]
    fn missing_bytes_matches_admit() {
        let cache = NodeCache::new();
        let f = manifest("f", &[1, 2, 3], 50);
        let g = manifest("g", &[3, 4], 10);
        for mode in [PullMode::PullThrough, PullMode::DedupPullThrough] {
            let mut c = cache.clone();
            assert_eq!(c.missing_bytes(&f, mode), c.admit(&f, mode).bytes_fetched);
            assert_eq!(c.missing_bytes(&g, mode), c.admit(&g, mode).bytes_fetched);
            assert_eq!(c.missing_bytes(&g, mode), 0);
        }
        assert_eq!(
            cache.missing_bytes(&f, PullMode::Naive),
            f.total_bytes(),
            "naive ignores residency"
        );
    }

    #[test]
    fn evict_releases_only_unshared_frames() {
        let mut cache = NodeCache::new();
        cache.admit(&manifest("f", &[1, 2, 3], 50), PullMode::DedupPullThrough);
        cache.admit(&manifest("g", &[2, 3, 4], 30), PullMode::DedupPullThrough);
        assert_eq!(cache.resident_bytes(), 50 + 30 + 4 * PG);

        // Frames 2,3 stay pinned by g: f's eviction frees metadata + frame 1.
        assert_eq!(cache.evict("f"), 50 + PG);
        assert_eq!(cache.frame_count(), 3);
        assert_eq!(cache.resident_bytes(), 30 + 3 * PG);
        assert_eq!(cache.evict("f"), 0, "double eviction is a no-op");
        assert_eq!(cache.evict("g"), 30 + 3 * PG);
        assert_eq!(cache.resident_bytes(), 0);
        assert_eq!(cache.image_count(), 0);
    }
}
