//! Content-addressed image manifests.
//!
//! A manifest describes one function's snapshot image the way the
//! registry stores it: a list of unique page-frame content hashes (the
//! same `page_content_hash` keys `pagestore.img` and the machine-wide
//! shared pool use) plus the non-page metadata bytes (core, mm, fds,
//! pagemap, extent table). Transfers are frame-granular: a node that
//! already holds a frame — from *any* image — never fetches it again.

use std::collections::BTreeSet;

use prebake_criu::image::{page_content_hash, ImageSet};
use prebake_sim::mem::PAGE_SIZE;

/// The registry's view of one snapshot image: an id, the content hashes
/// of its unique page frames, and its non-page metadata size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImageManifest {
    id: String,
    /// Unique frame hashes, ascending (set semantics; order carries no
    /// layout information at the registry tier).
    frame_hashes: Vec<u64>,
    metadata_bytes: u64,
}

impl ImageManifest {
    /// Builds a manifest from raw parts. Duplicate hashes collapse.
    pub fn new(
        id: impl Into<String>,
        hashes: impl IntoIterator<Item = u64>,
        metadata_bytes: u64,
    ) -> ImageManifest {
        let set: BTreeSet<u64> = hashes.into_iter().collect();
        ImageManifest {
            id: id.into(),
            frame_hashes: set.into_iter().collect(),
            metadata_bytes,
        }
    }

    /// Derives the manifest of a dumped [`ImageSet`]: the page store's
    /// frame hashes plus the set's non-payload bytes. Snapshots without
    /// a dedup view (incremental dumps, pre-dedup images) become opaque
    /// blobs — no frames, full encoded size as metadata — which the
    /// cache tier can still pull through, just never dedup.
    pub fn from_image_set(id: impl Into<String>, set: &ImageSet) -> ImageManifest {
        match &set.pagestore {
            Some(store) => {
                ImageManifest::new(id, store.hashes.iter().copied(), set.non_payload_bytes())
            }
            None => ImageManifest::new(id, [], set.total_bytes()),
        }
    }

    /// A deterministic synthetic manifest of roughly `image_bytes`,
    /// where `shared_fraction` of the frames come from a runtime-wide
    /// base pool common to *every* synthetic manifest (the warm JLVM
    /// pages all functions share) and the rest are unique to `(id,
    /// seed)`. This is the shape HotSwap measures in production images:
    /// most bytes are the runtime, a thin layer is the function.
    pub fn synthetic(
        id: impl Into<String>,
        image_bytes: u64,
        shared_fraction: f64,
        seed: u64,
    ) -> ImageManifest {
        let id = id.into();
        let frames = (image_bytes / PAGE_SIZE as u64) as usize;
        let metadata_bytes = image_bytes % PAGE_SIZE as u64;
        let shared = (frames as f64 * shared_fraction.clamp(0.0, 1.0)).round() as usize;
        let mut hashes = Vec::with_capacity(frames);
        for i in 0..shared {
            hashes.push(synthetic_frame_hash("runtime-base", 0, i as u64));
        }
        for i in 0..frames - shared {
            hashes.push(synthetic_frame_hash(&id, seed, i as u64));
        }
        ImageManifest::new(id, hashes, metadata_bytes)
    }

    /// The image id (function name, or `function@version`).
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Unique frame hashes, ascending.
    pub fn frame_hashes(&self) -> &[u64] {
        &self.frame_hashes
    }

    /// Number of unique frames.
    pub fn frame_count(&self) -> usize {
        self.frame_hashes.len()
    }

    /// Bytes of unique frame payload.
    pub fn frame_bytes(&self) -> u64 {
        (self.frame_hashes.len() * PAGE_SIZE) as u64
    }

    /// Non-page metadata bytes (always fetched, never deduped).
    pub fn metadata_bytes(&self) -> u64 {
        self.metadata_bytes
    }

    /// Total bytes a node with an empty cache must transfer.
    pub fn total_bytes(&self) -> u64 {
        self.metadata_bytes + self.frame_bytes()
    }
}

/// Content hash of a synthetic frame: the FNV page hash over a page
/// filled with the `(tag, seed, index)` pattern — collision-free in
/// practice and identical across processes and runs.
fn synthetic_frame_hash(tag: &str, seed: u64, index: u64) -> u64 {
    let mut page = [0u8; 64];
    let tag_bytes = tag.as_bytes();
    let n = tag_bytes.len().min(48);
    page[..n].copy_from_slice(&tag_bytes[..n]);
    page[48..56].copy_from_slice(&seed.to_be_bytes());
    page[56..64].copy_from_slice(&index.to_be_bytes());
    page_content_hash(&page)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_dedups_and_sorts() {
        let m = ImageManifest::new("f", [3, 1, 3, 2, 1], 100);
        assert_eq!(m.frame_hashes(), &[1, 2, 3]);
        assert_eq!(m.frame_count(), 3);
        assert_eq!(m.metadata_bytes(), 100);
        assert_eq!(m.total_bytes(), 100 + 3 * PAGE_SIZE as u64);
        assert_eq!(m.id(), "f");
    }

    #[test]
    fn synthetic_is_deterministic_and_shares_the_base() {
        let a = ImageManifest::synthetic("fn-a", 40 << 20, 0.6, 7);
        let a2 = ImageManifest::synthetic("fn-a", 40 << 20, 0.6, 7);
        assert_eq!(a, a2, "same inputs, same manifest");

        let b = ImageManifest::synthetic("fn-b", 40 << 20, 0.6, 7);
        assert_ne!(a, b);
        let set_a: BTreeSet<u64> = a.frame_hashes().iter().copied().collect();
        let shared = b
            .frame_hashes()
            .iter()
            .filter(|h| set_a.contains(h))
            .count();
        // 60% of frames come from the common runtime base.
        let expect = (a.frame_count() as f64 * 0.6).round() as usize;
        assert_eq!(shared, expect, "base frames are common across functions");

        // A different seed moves the unique frames, not the base.
        let a_reseeded = ImageManifest::synthetic("fn-a", 40 << 20, 0.6, 8);
        let still_shared = a_reseeded
            .frame_hashes()
            .iter()
            .filter(|h| set_a.contains(h))
            .count();
        assert_eq!(still_shared, expect);
    }

    #[test]
    fn synthetic_sizes_add_up() {
        let m = ImageManifest::synthetic("f", (10 << 20) + 123, 0.5, 1);
        assert_eq!(m.total_bytes(), 10 << 20 | 123);
        assert_eq!(m.metadata_bytes(), 123);
        // Fraction clamps.
        let all = ImageManifest::synthetic("f", 1 << 20, 2.0, 1);
        let none = ImageManifest::synthetic("g", 1 << 20, -1.0, 1);
        assert_eq!(all.frame_count(), none.frame_count());
    }

    #[test]
    fn from_image_set_uses_the_pagestore() {
        use prebake_criu::dump::{dump, read_images, DumpOptions};
        use prebake_sim::kernel::{Kernel, INIT_PID};
        use prebake_sim::mem::{Prot, VmaKind};

        let mut k = Kernel::free(1);
        let tracer = k.sys_clone(INIT_PID).unwrap();
        let target = k.sys_clone(INIT_PID).unwrap();
        let a = k
            .sys_mmap(target, 8 * PAGE_SIZE as u64, Prot::RW, VmaKind::RuntimeHeap)
            .unwrap();
        // 8 pages, 2 distinct fills -> 2 unique frames.
        for i in 0..8u64 {
            k.mem_write(target, a.add(i * PAGE_SIZE as u64), &[1 + (i % 2) as u8])
                .unwrap();
        }
        dump(&mut k, tracer, &DumpOptions::new(target, "/img")).unwrap();
        let set = read_images(&mut k, "/img").unwrap();

        let m = ImageManifest::from_image_set("fn", &set);
        assert_eq!(
            m.frame_count(),
            set.pagestore.as_ref().unwrap().unique_pages()
        );
        assert_eq!(m.metadata_bytes(), set.non_payload_bytes());

        // An opaque (store-less) set is all metadata.
        let mut opaque = set.clone();
        opaque.pagestore = None;
        let o = ImageManifest::from_image_set("fn", &opaque);
        assert_eq!(o.frame_count(), 0);
        assert_eq!(o.total_bytes(), opaque.total_bytes());
    }
}
