//! Snapshot registry tier: content-addressed image distribution with
//! per-node pull-through caches.
//!
//! The paper stores function snapshots inside the container image and
//! assumes they are local at restore time. At production scale the
//! dominant cold-start cost shifts to *getting the image to the node*:
//! vHive-style measurements show remote snapshot fetch dwarfing restore,
//! and HotSwap motivates sharing image bytes across functions and
//! nodes. This crate models that tier deterministically over the
//! virtual clock:
//!
//! - [`ImageManifest`] — one image as the registry stores it: unique
//!   page-frame content hashes (the same `page_content_hash` keys
//!   `pagestore.img` uses) plus non-page metadata bytes.
//! - [`SnapshotRegistry`] — published manifests, a
//!   [`RegistryCost`] network model (round-trip latency + per-byte
//!   bandwidth), and fleet-wide egress/dedup accounting.
//! - [`NodeCache`] — one node's pull-through cache. Admission is
//!   frame-granular under [`PullMode::DedupPullThrough`]: frames any
//!   resident image already holds are never re-fetched, so
//!   cross-function dedup translates directly into egress savings.
//!   Accounting mirrors the dedup-aware charging of
//!   [`prebake_criu::cache::ImageCache`] (each distinct frame charged
//!   once node-wide).
//!
//! **Naming note:** this crate is the *snapshot image distribution*
//! registry — where image **bytes** live and what pulling them costs.
//! It is distinct from [`prebake_platform::registry`]
//! (`crates/platform/src/registry.rs`), the SPEC-RG *function registry*
//! that tracks build **metadata** (specs, templates, versions) for the
//! deploy pipeline. The fleet scheduler (`prebake-fleet`) consumes this
//! crate for placement-time pulls; the platform consumes the function
//! registry at build/deploy time.
//!
//! [`prebake_platform::registry`]: ../prebake_platform/registry/index.html

#![warn(missing_docs)]

pub mod cache;
pub mod manifest;
pub mod registry;

pub use cache::{NodeCache, PullMode, PullStats};
pub use manifest::ImageManifest;
pub use registry::{PullReceipt, RegistryCost, RegistryError, SnapshotRegistry};
