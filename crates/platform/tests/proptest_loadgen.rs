//! Property tests for load schedules: arrivals are strictly monotonic,
//! generation is deterministic per seed, and the CSV trace codec is an
//! exact round-trip for every generator.

use proptest::prelude::*;

use prebake_platform::loadgen::{Arrival, PoissonProcess, Schedule};
use prebake_sim::time::{SimDuration, SimInstant};

/// Builds one schedule from a generator index and shared parameters, so
/// every property ranges over all the generators at once.
fn build(
    gen: u8,
    function: &str,
    n: usize,
    start_ns: u64,
    interval_ms: u64,
    seed: u64,
) -> Schedule {
    let start = SimInstant::from_nanos(start_ns);
    let interval = SimDuration::from_millis(interval_ms);
    match gen % 4 {
        0 => Schedule::constant(function, n, start, interval).unwrap(),
        1 => Schedule::poisson(function, n, start, interval, seed).unwrap(),
        2 => Schedule::pareto(function, n, start, interval_ms as f64, 1.3, seed).unwrap(),
        _ => Schedule::empirical(
            function,
            n,
            start,
            // Five distinct gaps keep a cross-seed pick-for-pick
            // collision (which would trip the inequality property)
            // vanishingly unlikely even for short schedules.
            &[
                1.0,
                interval_ms as f64,
                interval_ms as f64 * 3.0,
                interval_ms as f64 * 9.0,
                interval_ms as f64 * 27.0,
            ],
            seed,
        )
        .unwrap(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every generator yields exactly `n` arrivals with strictly
    /// increasing timestamps starting at or after `start`.
    #[test]
    fn arrivals_are_strictly_monotonic(
        gen in 0u8..4,
        n in 1usize..200,
        start_ns in 0u64..1_000_000_000,
        interval_ms in 1u64..5_000,
        seed in 0u64..1_000,
    ) {
        let schedule = build(gen, "f", n, start_ns, interval_ms, seed);
        prop_assert_eq!(schedule.len(), n);
        let arrivals = schedule.arrivals();
        prop_assert!(arrivals[0].at >= SimInstant::from_nanos(start_ns));
        for pair in arrivals.windows(2) {
            prop_assert!(
                pair[1].at > pair[0].at,
                "arrivals must be strictly increasing: {} then {}",
                pair[0].at,
                pair[1].at
            );
        }
    }

    /// The same seed reproduces the same schedule exactly; for the
    /// randomised generators a different seed must perturb at least one
    /// timestamp (with more than a couple of arrivals, a collision
    /// across every gap is as good as impossible).
    #[test]
    fn schedules_are_deterministic_per_seed(
        gen in 1u8..4, // skip `constant`: it takes no seed
        n in 8usize..100,
        interval_ms in 2u64..5_000,
        seed in 0u64..1_000,
    ) {
        let a = build(gen, "f", n, 0, interval_ms, seed);
        let b = build(gen, "f", n, 0, interval_ms, seed);
        prop_assert_eq!(a, b.clone());
        let c = build(gen, "f", n, 0, interval_ms, seed + 1);
        prop_assert_ne!(b, c);
    }

    /// The open-loop Poisson process is deterministic per seed, emits
    /// strictly increasing arrivals confined to `[start, start+horizon)`
    /// with the first exactly at `start`, and a different seed perturbs
    /// the sequence (whenever the horizon holds more than one arrival).
    #[test]
    fn poisson_process_is_deterministic_and_horizon_bounded(
        rate in 1.0f64..2_000.0,
        start_ns in 0u64..1_000_000_000,
        horizon_ms in 1u64..60_000,
        seed in 0u64..1_000,
    ) {
        let start = SimInstant::from_nanos(start_ns);
        let horizon = SimDuration::from_millis(horizon_ms);
        let stream = |s: u64| -> Vec<Arrival> {
            PoissonProcess::new("f", rate, start, horizon, s)
                .unwrap()
                .collect::<Result<Vec<_>, _>>()
                .unwrap()
        };
        let a = stream(seed);
        let b = stream(seed);
        prop_assert_eq!(&a, &b, "same seed must replay byte-identically");
        prop_assert_eq!(a[0].at, start, "first arrival lands at start");
        let end = start + horizon;
        for pair in a.windows(2) {
            prop_assert!(pair[1].at > pair[0].at);
        }
        prop_assert!(a.iter().all(|x| x.at < end), "horizon is exclusive");
        let c = stream(seed + 1);
        if a.len() > 2 && c.len() > 2 {
            prop_assert_ne!(&a, &c);
        }
    }

    /// `to_csv` → `from_csv` is the identity for any merged multi-tenant
    /// schedule, including exact nanosecond timestamps and names.
    #[test]
    fn csv_roundtrip_is_exact(
        gen_a in 0u8..4,
        gen_b in 0u8..4,
        n_a in 1usize..60,
        n_b in 1usize..60,
        interval_ms in 1u64..2_000,
        seed in 0u64..1_000,
    ) {
        let merged = build(gen_a, "tenant-a", n_a, 0, interval_ms, seed)
            .merge(build(gen_b, "tenant-b", n_b, 17, interval_ms, seed + 7));
        prop_assert_eq!(merged.len(), n_a + n_b);
        let back = Schedule::from_csv(&merged.to_csv()).unwrap();
        prop_assert_eq!(back, merged);
    }
}
