//! Property tests for the streaming histogram: `merge` is commutative
//! and conserves sums/counts, bucket boundaries route observations
//! exactly, and merging equals observing the concatenated sample.

use proptest::prelude::*;

use prebake_platform::metrics::Histogram;

/// Strictly ascending bounds from positive deltas.
fn to_bounds(deltas: &[u32]) -> Vec<f64> {
    let mut bounds = Vec::with_capacity(deltas.len());
    let mut acc = 0.0;
    for &d in deltas {
        acc += f64::from(d);
        bounds.push(acc);
    }
    bounds
}

fn to_sample(raw: &[u32]) -> Vec<f64> {
    raw.iter().map(|&v| f64::from(v) / 250.0).collect()
}

fn fill(bounds: &[f64], sample: &[f64]) -> Histogram {
    let mut h = Histogram::new(bounds);
    for &v in sample {
        h.observe(v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `a.merge(b)` and `b.merge(a)` agree bucket for bucket, and both
    /// equal observing the concatenated sample directly.
    #[test]
    fn merge_is_commutative_and_equals_concatenation(
        deltas in proptest::collection::vec(1u32..1_000, 1..8),
        raw_xs in proptest::collection::vec(0u32..2_000_000, 0..64),
        raw_ys in proptest::collection::vec(0u32..2_000_000, 0..64),
    ) {
        let bounds = to_bounds(&deltas);
        let (xs, ys) = (to_sample(&raw_xs), to_sample(&raw_ys));
        let (a, b) = (fill(&bounds, &xs), fill(&bounds, &ys));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(ab.bucket_counts(), ba.bucket_counts());
        prop_assert_eq!(ab.count(), ba.count());
        prop_assert_eq!(ab.sum().to_bits(), ba.sum().to_bits());

        let concat: Vec<f64> = xs.iter().chain(&ys).copied().collect();
        let direct = fill(&bounds, &concat);
        prop_assert_eq!(ab.bucket_counts(), direct.bucket_counts());
        prop_assert_eq!(ab.count(), direct.count());
        // Sums may associate differently; compare within float slack.
        prop_assert!((ab.sum() - direct.sum()).abs() <= 1e-6 * (1.0 + direct.sum().abs()));
    }

    /// Counts and sums are conserved exactly: nothing is lost or
    /// duplicated by a merge.
    #[test]
    fn merge_conserves_count_and_sum(
        deltas in proptest::collection::vec(1u32..1_000, 1..8),
        raw_xs in proptest::collection::vec(0u32..2_000_000, 0..64),
        raw_ys in proptest::collection::vec(0u32..2_000_000, 0..64),
    ) {
        let bounds = to_bounds(&deltas);
        let (xs, ys) = (to_sample(&raw_xs), to_sample(&raw_ys));
        let (a, b) = (fill(&bounds, &xs), fill(&bounds, &ys));
        let mut merged = a.clone();
        merged.merge(&b);
        prop_assert_eq!(merged.count(), a.count() + b.count());
        prop_assert_eq!(merged.sum().to_bits(), (a.sum() + b.sum()).to_bits());
        prop_assert_eq!(
            merged.bucket_counts().iter().sum::<u64>(),
            merged.count(),
            "bucket counts partition the total"
        );
        // Merging an empty histogram is the identity.
        let mut id = a.clone();
        id.merge(&Histogram::new(&bounds));
        prop_assert_eq!(id.bucket_counts(), a.bucket_counts());
        prop_assert_eq!(id.sum().to_bits(), a.sum().to_bits());
    }

    /// A value exactly on a bucket's upper bound lands in that bucket
    /// (Prometheus `le` semantics), and a value just above it lands in
    /// the next.
    #[test]
    fn bucket_boundaries_are_le_inclusive(
        deltas in proptest::collection::vec(1u32..1_000, 1..8),
        pick in 0usize..64,
    ) {
        let bounds = to_bounds(&deltas);
        let i = pick % bounds.len();
        let edge = bounds[i];
        let mut h = Histogram::new(&bounds);
        h.observe(edge);
        prop_assert_eq!(h.bucket_counts()[i], 1, "on-boundary value is <= bound");
        let mut above = Histogram::new(&bounds);
        above.observe(edge + edge.abs().max(1.0) * f64::EPSILON * 4.0);
        prop_assert_eq!(above.bucket_counts()[i], 0, "just above spills over");
        let total_above: u64 = above.bucket_counts().iter().sum();
        prop_assert_eq!(total_above, 1);
    }
}
