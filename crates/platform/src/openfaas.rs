//! The OpenFaaS-style integration surface (paper §5).
//!
//! Reproduces the feasibility story end to end: a `faas-cli` with the
//! four operations the paper lists (`new`, `build`, `push`, `deploy`),
//! a template repository including the CRIU templates, a gateway that
//! fronts the platform, and the privileged-restore requirement (CRIU
//! templates need the provider to grant `CAP_CHECKPOINT_RESTORE`, the
//! paper's `docker run --privileged`).

use prebake_functions::FunctionSpec;
use prebake_runtime::http::{Request, Response};
use prebake_sim::error::{Errno, SysResult};
use prebake_sim::time::SimInstant;

use crate::builder::{FunctionBuilder, Template};
use crate::platform::{Platform, PlatformConfig};
use crate::registry::{ContainerImage, Registry};

/// A function project created by `faas-cli new`: the source the
/// developer edits plus the chosen template.
#[derive(Debug, Clone)]
pub struct FunctionProject {
    /// The function's business logic and resources.
    pub spec: FunctionSpec,
    /// The template the project was created from.
    pub template: Template,
}

/// Errors surfaced by the CLI.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaasError {
    /// Unknown template name.
    UnknownTemplate(String),
    /// The function is not registered/deployed.
    UnknownFunction(String),
    /// CRIU templates require privileged deployment and the provider
    /// configuration does not allow it.
    PrivilegeRequired(String),
    /// Underlying platform error.
    Sys(Errno),
}

impl std::fmt::Display for FaasError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaasError::UnknownTemplate(t) => write!(f, "unknown template {t}"),
            FaasError::UnknownFunction(n) => write!(f, "unknown function {n}"),
            FaasError::PrivilegeRequired(n) => write!(
                f,
                "function {n} uses a CRIU template; enable privileged deployments"
            ),
            FaasError::Sys(e) => write!(f, "platform error: {e}"),
        }
    }
}

impl std::error::Error for FaasError {}

impl From<Errno> for FaasError {
    fn from(e: Errno) -> Self {
        FaasError::Sys(e)
    }
}

/// Provider configuration: which container backend runs replicas and
/// whether privileged (CRIU-capable) deployments are allowed.
#[derive(Debug, Clone)]
pub struct ProviderConfig {
    /// Backend label (`kubernetes`, `docker-swarm`) — informational, as
    /// in the paper's FaaS-Provider indirection.
    pub backend: String,
    /// Whether CRIU templates may deploy (models `--privileged` /
    /// granting `CAP_CHECKPOINT_RESTORE`).
    pub allow_privileged: bool,
}

impl Default for ProviderConfig {
    fn default() -> Self {
        ProviderConfig {
            backend: "kubernetes".to_owned(),
            allow_privileged: true,
        }
    }
}

/// The OpenFaaS-style gateway: CLI operations + request ingress over one
/// [`Platform`].
#[derive(Debug)]
pub struct FaasGateway {
    registry: Registry,
    platform: Platform,
    provider: ProviderConfig,
    builder: FunctionBuilder,
}

impl FaasGateway {
    /// Creates a gateway with the given platform and provider settings.
    pub fn new(config: PlatformConfig, provider: ProviderConfig) -> FaasGateway {
        let registry = Registry::new();
        FaasGateway {
            platform: Platform::new(config, registry.clone()),
            registry,
            provider,
            builder: FunctionBuilder,
        }
    }

    /// `faas-cli new`: creates a project from a template.
    ///
    /// # Errors
    ///
    /// [`FaasError::UnknownTemplate`] if the template does not exist.
    pub fn new_project(
        &self,
        spec: FunctionSpec,
        template_name: &str,
    ) -> Result<FunctionProject, FaasError> {
        let template = Template::lookup(template_name)
            .ok_or_else(|| FaasError::UnknownTemplate(template_name.to_owned()))?;
        Ok(FunctionProject { spec, template })
    }

    /// `faas-cli build`: transforms the project into a container image.
    /// CRIU templates boot + (optionally) warm + checkpoint the function
    /// here, at build time.
    ///
    /// # Errors
    ///
    /// Propagates build errors.
    pub fn build(&self, project: &FunctionProject) -> Result<ContainerImage, FaasError> {
        Ok(self
            .builder
            .build(project.spec.clone(), &project.template)?)
    }

    /// `faas-cli push`: stores the image in the Function Registry.
    pub fn push(&self, image: ContainerImage) -> u32 {
        self.registry.push(image)
    }

    /// `faas-cli deploy`: makes the function routable. Enforces the
    /// privileged-deployment requirement for prebaked images.
    ///
    /// # Errors
    ///
    /// [`FaasError::UnknownFunction`] if never pushed;
    /// [`FaasError::PrivilegeRequired`] if the image is prebaked and the
    /// provider forbids privileged containers.
    pub fn deploy(&mut self, name: &str) -> Result<(), FaasError> {
        let image = self
            .registry
            .pull(name)
            .ok_or_else(|| FaasError::UnknownFunction(name.to_owned()))?;
        if image.is_prebaked() && !self.provider.allow_privileged {
            return Err(FaasError::PrivilegeRequired(name.to_owned()));
        }
        self.platform.deploy_function(name)?;
        Ok(())
    }

    /// Invokes a function through the gateway at time `at`.
    ///
    /// # Errors
    ///
    /// Propagates routing errors.
    pub fn invoke_at(
        &mut self,
        at: SimInstant,
        name: &str,
        req: Request,
    ) -> Result<u64, FaasError> {
        Ok(self.platform.submit(at, name, req)?)
    }

    /// Drives the platform until quiescence.
    ///
    /// # Errors
    ///
    /// Propagates platform errors.
    pub fn run(&mut self) -> SysResult<()> {
        self.platform.run()
    }

    /// One-shot convenience: invoke now, run to quiescence, return the
    /// last completion's latency in milliseconds.
    ///
    /// # Errors
    ///
    /// Propagates routing/platform errors.
    pub fn invoke_and_wait(&mut self, name: &str, req: Request) -> Result<f64, FaasError> {
        let at = self.platform.now();
        self.invoke_at(at, name, req)?;
        self.platform.run()?;
        Ok(self
            .platform
            .completed()
            .last()
            .map(CompletedLatency::latency_ms_of)
            .unwrap_or(0.0))
    }

    /// The underlying platform (metrics, completions, time).
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Mutable platform access (for load generators).
    pub fn platform_mut(&mut self) -> &mut Platform {
        &mut self.platform
    }

    /// The function registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }
}

/// Helper trait alias to keep `invoke_and_wait` readable.
trait CompletedLatency {
    fn latency_ms_of(&self) -> f64;
}

impl CompletedLatency for crate::platform::CompletedRequest {
    fn latency_ms_of(&self) -> f64 {
        self.latency_ms()
    }
}

/// A dummy response constructor for tests and examples (the gateway
/// reports latencies; bodies live at the replicas).
pub fn gateway_ack() -> Response {
    Response::ok(&b"accepted"[..])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gateway(allow_privileged: bool) -> FaasGateway {
        FaasGateway::new(
            PlatformConfig::default(),
            ProviderConfig {
                backend: "kubernetes".into(),
                allow_privileged,
            },
        )
    }

    #[test]
    fn full_cli_flow_plain_template() {
        let mut gw = gateway(true);
        let project = gw.new_project(FunctionSpec::noop(), "java11").unwrap();
        let image = gw.build(&project).unwrap();
        assert!(!image.is_prebaked());
        assert_eq!(gw.push(image), 1);
        gw.deploy("noop").unwrap();
        let latency = gw.invoke_and_wait("noop", Request::empty()).unwrap();
        assert!(latency > 50.0, "cold vanilla start, got {latency}ms");
    }

    #[test]
    fn full_cli_flow_criu_template() {
        let mut gw = gateway(true);
        let project = gw
            .new_project(FunctionSpec::noop(), "java11-criu-warm1")
            .unwrap();
        let image = gw.build(&project).unwrap();
        assert!(image.is_prebaked());
        gw.push(image);
        gw.deploy("noop").unwrap();
        let latency = gw.invoke_and_wait("noop", Request::empty()).unwrap();
        assert!(
            latency < 90.0,
            "prebaked cold start must be fast, got {latency}ms"
        );
    }

    #[test]
    fn unknown_template_rejected() {
        let gw = gateway(true);
        assert_eq!(
            gw.new_project(FunctionSpec::noop(), "node18").unwrap_err(),
            FaasError::UnknownTemplate("node18".into())
        );
    }

    #[test]
    fn deploy_requires_push() {
        let mut gw = gateway(true);
        assert_eq!(
            gw.deploy("noop").unwrap_err(),
            FaasError::UnknownFunction("noop".into())
        );
    }

    #[test]
    fn privileged_requirement_enforced() {
        let mut gw = gateway(false);
        let project = gw.new_project(FunctionSpec::noop(), "java11-criu").unwrap();
        let image = gw.build(&project).unwrap();
        gw.push(image);
        assert_eq!(
            gw.deploy("noop").unwrap_err(),
            FaasError::PrivilegeRequired("noop".into())
        );
        // plain templates still deploy fine
        let project = gw.new_project(FunctionSpec::noop(), "java11").unwrap();
        let image = gw.build(&project).unwrap();
        gw.push(image);
        gw.deploy("noop").unwrap();
    }

    #[test]
    fn error_display() {
        for e in [
            FaasError::UnknownTemplate("x".into()),
            FaasError::UnknownFunction("y".into()),
            FaasError::PrivilegeRequired("z".into()),
            FaasError::Sys(Errno::Enoent),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
