//! Load generation.
//!
//! The paper's generator "starts the function replica and holds the
//! first request until the replica becomes ready; after that, the load
//! is sent sequentially and at a constant rate". The ablation studies
//! additionally use Poisson (open-loop) arrivals and instantaneous
//! bursts.

use prebake_runtime::http::Request;
use prebake_sim::error::SysResult;
use prebake_sim::noise::Noise;
use prebake_sim::time::{SimDuration, SimInstant};

use crate::platform::Platform;

/// Submits `n` requests at a constant inter-arrival interval starting at
/// `start`.
///
/// # Errors
///
/// Propagates submission errors (unknown function).
pub fn constant_rate(
    platform: &mut Platform,
    function: &str,
    n: usize,
    start: SimInstant,
    interval: SimDuration,
    make_request: impl Fn(usize) -> Request,
) -> SysResult<()> {
    let mut t = start;
    for i in 0..n {
        platform.submit(t, function, make_request(i))?;
        t += interval;
    }
    Ok(())
}

/// Submits `n` requests with exponentially distributed inter-arrival
/// times of the given mean (an open-loop Poisson process), deterministic
/// in `seed`.
///
/// # Errors
///
/// Propagates submission errors.
pub fn poisson(
    platform: &mut Platform,
    function: &str,
    n: usize,
    start: SimInstant,
    mean_interval: SimDuration,
    seed: u64,
    make_request: impl Fn(usize) -> Request,
) -> SysResult<()> {
    let mut noise = Noise::new(seed, 0.0);
    let mut t = start;
    for i in 0..n {
        platform.submit(t, function, make_request(i))?;
        let gap = noise.exponential(mean_interval.as_millis_f64());
        t += SimDuration::from_millis_f64(gap);
    }
    Ok(())
}

/// Submits `n` simultaneous requests at `at` (a burst — the demand surge
/// that makes cold-start latency visible).
///
/// # Errors
///
/// Propagates submission errors.
pub fn burst(
    platform: &mut Platform,
    function: &str,
    n: usize,
    at: SimInstant,
    make_request: impl Fn(usize) -> Request,
) -> SysResult<()> {
    for i in 0..n {
        platform.submit(at, function, make_request(i))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{FunctionBuilder, Template};
    use crate::platform::PlatformConfig;
    use crate::registry::Registry;
    use prebake_functions::FunctionSpec;

    fn platform() -> Platform {
        let registry = Registry::new();
        registry.push(
            FunctionBuilder
                .build(FunctionSpec::noop(), &Template::java11())
                .unwrap(),
        );
        let mut p = Platform::new(PlatformConfig::default(), registry);
        p.deploy_function("noop").unwrap();
        p
    }

    #[test]
    fn constant_rate_submits_all() {
        let mut p = platform();
        constant_rate(
            &mut p,
            "noop",
            20,
            SimInstant::EPOCH,
            SimDuration::from_millis(50),
            |_| Request::empty(),
        )
        .unwrap();
        p.run().unwrap();
        assert_eq!(p.completed().len(), 20);
        // Sequential constant-rate load after warm-up is all warm.
        let warm = p.completed().iter().filter(|r| !r.cold).count();
        assert!(warm >= 18, "most requests warm, got {warm}");
    }

    #[test]
    fn poisson_is_deterministic_per_seed() {
        let mut p1 = platform();
        poisson(
            &mut p1,
            "noop",
            30,
            SimInstant::EPOCH,
            SimDuration::from_millis(20),
            7,
            |_| Request::empty(),
        )
        .unwrap();
        p1.run().unwrap();

        let mut p2 = platform();
        poisson(
            &mut p2,
            "noop",
            30,
            SimInstant::EPOCH,
            SimDuration::from_millis(20),
            7,
            |_| Request::empty(),
        )
        .unwrap();
        p2.run().unwrap();

        let l1: Vec<u64> = p1
            .completed()
            .iter()
            .map(|r| r.completed.as_nanos())
            .collect();
        let l2: Vec<u64> = p2
            .completed()
            .iter()
            .map(|r| r.completed.as_nanos())
            .collect();
        assert_eq!(l1, l2);
    }

    #[test]
    fn burst_fans_out_replicas() {
        let mut p = platform();
        burst(&mut p, "noop", 6, SimInstant::EPOCH, |_| Request::empty()).unwrap();
        p.run().unwrap();
        assert_eq!(p.completed().len(), 6);
        let started = p.metrics().get("noop").unwrap().replicas_started.get();
        assert!(started >= 3, "burst should fan out, started {started}");
    }
}
