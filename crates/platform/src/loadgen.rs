//! Load generation.
//!
//! The paper's generator "starts the function replica and holds the
//! first request until the replica becomes ready; after that, the load
//! is sent sequentially and at a constant rate". The ablation studies
//! additionally use Poisson (open-loop) arrivals, instantaneous bursts,
//! heavy-tailed (Pareto) inter-arrivals, empirical resampling of
//! observed gaps, and recorded traces replayed from CSV — the
//! multi-tenant workloads the fleet scheduler (`prebake-fleet`) faces.
//!
//! The module is built around [`Schedule`]: an ordered list of
//! `(instant, function)` arrivals that can be generated, merged,
//! serialised to CSV and replayed — either into a [`Platform`] or into
//! any other consumer of the arrival stream. The original free functions
//! ([`constant_rate`], [`poisson`], [`burst`]) remain as validated
//! wrappers that generate and submit in one call.
//!
//! All generators are deterministic per seed, produce strictly
//! monotonically increasing arrival times (bursts excepted, which are
//! simultaneous by design), and validate their arguments with a typed
//! [`LoadError`] instead of panicking on degenerate rates or overflowing
//! tick arithmetic.

use std::error::Error;
use std::fmt;

use prebake_runtime::http::Request;
use prebake_sim::error::Errno;
use prebake_sim::noise::Noise;
use prebake_sim::time::{SimDuration, SimInstant};

use crate::platform::Platform;

/// Why a load schedule could not be generated or replayed.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LoadError {
    /// A rate/interval argument was zero (or saturated to zero from a
    /// negative or non-finite input) where progress is required.
    InvalidRate,
    /// A shape parameter (Pareto `alpha`/`scale`, empirical gap set) was
    /// empty, non-positive or non-finite.
    InvalidShape,
    /// Tick arithmetic overflowed the virtual-time range.
    Overflow,
    /// A function id contains characters the CSV format reserves
    /// (comma/newline) or is empty.
    InvalidFunction(String),
    /// A CSV trace line failed to parse (1-based line number).
    Malformed(usize),
    /// Submission into the platform failed.
    Submit(Errno),
    /// Reading or writing a streamed CSV trace failed at the I/O layer.
    Io(std::io::ErrorKind),
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::InvalidRate => write!(f, "rate/interval must be positive"),
            LoadError::InvalidShape => write!(f, "invalid distribution shape parameter"),
            LoadError::Overflow => write!(f, "arrival time overflows virtual time"),
            LoadError::InvalidFunction(name) => {
                write!(
                    f,
                    "function id {name:?} is empty or contains ',' or a newline"
                )
            }
            LoadError::Malformed(line) => write!(f, "malformed trace CSV at line {line}"),
            LoadError::Submit(e) => write!(f, "submission failed: {e}"),
            LoadError::Io(kind) => write!(f, "trace stream I/O failed: {kind}"),
        }
    }
}

impl Error for LoadError {}

impl From<Errno> for LoadError {
    fn from(e: Errno) -> LoadError {
        LoadError::Submit(e)
    }
}

/// Result alias for load generation.
pub type LoadResult<T> = Result<T, LoadError>;

/// One scheduled invocation: which function is hit, and when.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Arrival {
    /// Arrival instant at the gateway.
    pub at: SimInstant,
    /// Target function id.
    pub function: String,
}

/// An ordered multi-tenant arrival schedule.
///
/// Generators build per-function schedules; [`Schedule::merge`] folds
/// them into one fleet-wide trace ordered by time (ties keep the
/// left-hand side first, so merging is deterministic).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Schedule {
    arrivals: Vec<Arrival>,
}

/// Rejects function ids the CSV format cannot carry.
fn validate_function(function: &str) -> LoadResult<()> {
    if function.is_empty() || function.contains(',') || function.contains('\n') {
        return Err(LoadError::InvalidFunction(function.to_owned()));
    }
    Ok(())
}

/// Overflow-checked `t + gap`.
fn advance(t: SimInstant, gap: SimDuration) -> LoadResult<SimInstant> {
    t.as_nanos()
        .checked_add(gap.as_nanos())
        .map(SimInstant::from_nanos)
        .ok_or(LoadError::Overflow)
}

impl Schedule {
    /// An empty schedule.
    pub fn new() -> Schedule {
        Schedule::default()
    }

    /// `n` arrivals at a constant inter-arrival interval starting at
    /// `start`.
    ///
    /// # Errors
    ///
    /// [`LoadError::InvalidRate`] if `interval` is zero and `n > 1`
    /// (distinct arrivals could not advance); [`LoadError::Overflow`] if
    /// the ticks leave the virtual-time range.
    pub fn constant(
        function: &str,
        n: usize,
        start: SimInstant,
        interval: SimDuration,
    ) -> LoadResult<Schedule> {
        validate_function(function)?;
        if interval.is_zero() && n > 1 {
            return Err(LoadError::InvalidRate);
        }
        let mut arrivals = Vec::with_capacity(n);
        let mut t = start;
        for i in 0..n {
            arrivals.push(Arrival {
                at: t,
                function: function.to_owned(),
            });
            if i + 1 < n {
                t = advance(t, interval)?;
            }
        }
        Ok(Schedule { arrivals })
    }

    /// `n` arrivals with exponentially distributed inter-arrival times of
    /// the given mean (an open-loop Poisson process), deterministic in
    /// `seed`. Gaps are floored at one nanosecond so arrival times are
    /// strictly increasing.
    ///
    /// # Errors
    ///
    /// [`LoadError::InvalidRate`] if `mean_interval` is zero;
    /// [`LoadError::Overflow`] on virtual-time overflow.
    pub fn poisson(
        function: &str,
        n: usize,
        start: SimInstant,
        mean_interval: SimDuration,
        seed: u64,
    ) -> LoadResult<Schedule> {
        validate_function(function)?;
        if mean_interval.is_zero() {
            return Err(LoadError::InvalidRate);
        }
        let mut noise = Noise::new(seed, 0.0);
        Schedule::from_gaps(function, n, start, || {
            SimDuration::from_millis_f64(noise.exponential(mean_interval.as_millis_f64()))
        })
    }

    /// `n` simultaneous arrivals at `at` (a burst — the demand surge that
    /// makes cold-start latency visible).
    ///
    /// # Errors
    ///
    /// [`LoadError::InvalidFunction`] on a malformed function id.
    pub fn burst(function: &str, n: usize, at: SimInstant) -> LoadResult<Schedule> {
        validate_function(function)?;
        Ok(Schedule {
            arrivals: (0..n)
                .map(|_| Arrival {
                    at,
                    function: function.to_owned(),
                })
                .collect(),
        })
    }

    /// `n` arrivals with Pareto (heavy-tailed) inter-arrival gaps:
    /// `gap = scale_ms * u^(-1/alpha)` for uniform `u`, deterministic in
    /// `seed`. Small `alpha` (e.g. 1.1–1.5) produces the bursty,
    /// long-gapped arrival processes production FaaS traces show; the
    /// minimum gap is `scale_ms`.
    ///
    /// # Errors
    ///
    /// [`LoadError::InvalidShape`] unless `scale_ms > 0` and `alpha > 0`
    /// (both finite); [`LoadError::Overflow`] on virtual-time overflow.
    pub fn pareto(
        function: &str,
        n: usize,
        start: SimInstant,
        scale_ms: f64,
        alpha: f64,
        seed: u64,
    ) -> LoadResult<Schedule> {
        validate_function(function)?;
        if !(scale_ms.is_finite() && scale_ms > 0.0 && alpha.is_finite() && alpha > 0.0) {
            return Err(LoadError::InvalidShape);
        }
        let mut noise = Noise::new(seed, 0.0);
        Schedule::from_gaps(function, n, start, || {
            // uniform() is in [0, 1); mirror to (0, 1] so u^(-1/alpha)
            // stays finite.
            let u = 1.0 - noise.uniform();
            SimDuration::from_millis_f64(scale_ms * u.powf(-1.0 / alpha))
        })
    }

    /// `n` arrivals whose gaps are resampled uniformly (with
    /// replacement) from an observed set of inter-arrival gaps — the
    /// empirical-bootstrap workload generator. Feeding it gaps measured
    /// from a production trace reproduces that trace's marginal
    /// inter-arrival distribution, heavy tail included.
    ///
    /// # Errors
    ///
    /// [`LoadError::InvalidShape`] if `observed_gaps_ms` is empty or
    /// contains a non-finite or negative gap; [`LoadError::Overflow`] on
    /// virtual-time overflow.
    pub fn empirical(
        function: &str,
        n: usize,
        start: SimInstant,
        observed_gaps_ms: &[f64],
        seed: u64,
    ) -> LoadResult<Schedule> {
        validate_function(function)?;
        if observed_gaps_ms.is_empty()
            || observed_gaps_ms.iter().any(|g| !g.is_finite() || *g < 0.0)
        {
            return Err(LoadError::InvalidShape);
        }
        let mut noise = Noise::new(seed, 0.0);
        Schedule::from_gaps(function, n, start, || {
            let idx = (noise.uniform() * observed_gaps_ms.len() as f64) as usize;
            SimDuration::from_millis_f64(observed_gaps_ms[idx.min(observed_gaps_ms.len() - 1)])
        })
    }

    /// Shared gap-driven generator: strictly monotonic (gaps floor at
    /// 1 ns) and overflow-checked.
    fn from_gaps(
        function: &str,
        n: usize,
        start: SimInstant,
        mut next_gap: impl FnMut() -> SimDuration,
    ) -> LoadResult<Schedule> {
        let mut arrivals = Vec::with_capacity(n);
        let mut t = start;
        for i in 0..n {
            arrivals.push(Arrival {
                at: t,
                function: function.to_owned(),
            });
            if i + 1 < n {
                let gap = next_gap().max(SimDuration::from_nanos(1));
                t = advance(t, gap)?;
            }
        }
        Ok(Schedule { arrivals })
    }

    /// Merges two schedules into one time-ordered trace. Equal-time
    /// arrivals keep `self` before `other` (stable), so merging is
    /// deterministic.
    #[must_use]
    pub fn merge(self, other: Schedule) -> Schedule {
        let mut arrivals = self.arrivals;
        arrivals.extend(other.arrivals);
        // Stable sort: FIFO order within equal instants is preserved.
        arrivals.sort_by_key(|a| a.at);
        Schedule { arrivals }
    }

    /// The ordered arrivals.
    pub fn arrivals(&self) -> &[Arrival] {
        &self.arrivals
    }

    /// Number of scheduled arrivals.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// Returns `true` if nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// Instant of the last arrival, if any.
    pub fn end(&self) -> Option<SimInstant> {
        self.arrivals.iter().map(|a| a.at).max()
    }

    /// Serialises the schedule as a CSV trace: a `t_ns,function` header
    /// followed by one row per arrival, nanosecond timestamps. The
    /// format round-trips bit-exactly through [`Schedule::from_csv`].
    pub fn to_csv(&self) -> String {
        let mut out = String::from("t_ns,function\n");
        for a in &self.arrivals {
            out.push_str(&format!("{},{}\n", a.at.as_nanos(), a.function));
        }
        out
    }

    /// Parses a CSV trace (the [`Schedule::to_csv`] format; the header
    /// row and blank lines are optional and ignored). Rows may appear in
    /// any order — the result is sorted by time, stable for equal
    /// instants.
    ///
    /// # Errors
    ///
    /// [`LoadError::Malformed`] with the 1-based line number of the
    /// first unparsable row; [`LoadError::InvalidFunction`] for function
    /// ids the format cannot carry.
    pub fn from_csv(text: &str) -> LoadResult<Schedule> {
        let mut arrivals = Vec::new();
        for (idx, line) in text.lines().enumerate() {
            let line = line.trim_end_matches('\r');
            if line.is_empty() || (idx == 0 && line == "t_ns,function") {
                continue;
            }
            let (t, function) = line.split_once(',').ok_or(LoadError::Malformed(idx + 1))?;
            let nanos: u64 = t
                .trim()
                .parse()
                .map_err(|_| LoadError::Malformed(idx + 1))?;
            validate_function(function)?;
            arrivals.push(Arrival {
                at: SimInstant::from_nanos(nanos),
                function: function.to_owned(),
            });
        }
        arrivals.sort_by_key(|a| a.at);
        Ok(Schedule { arrivals })
    }

    /// Materializes a fallible arrival stream into a schedule, sorting
    /// by time (stable for equal instants — stream order is kept).
    ///
    /// # Errors
    ///
    /// The first error the stream yields.
    pub fn from_stream(
        stream: impl IntoIterator<Item = LoadResult<Arrival>>,
    ) -> LoadResult<Schedule> {
        let mut arrivals = stream.into_iter().collect::<LoadResult<Vec<Arrival>>>()?;
        arrivals.sort_by_key(|a| a.at);
        Ok(Schedule { arrivals })
    }

    /// Replays the schedule into a platform, building each request with
    /// `make_request(index)` (index is the position in the schedule).
    ///
    /// # Errors
    ///
    /// [`LoadError::Submit`] on submission failure (unknown function).
    pub fn submit(
        &self,
        platform: &mut Platform,
        make_request: impl Fn(usize) -> Request,
    ) -> LoadResult<()> {
        for (i, a) in self.arrivals.iter().enumerate() {
            platform.submit(a.at, &a.function, make_request(i))?;
        }
        Ok(())
    }
}

/// How one [`ArrivalGen`] spaces its arrivals.
#[derive(Debug, Clone)]
enum GenKind {
    Constant {
        interval: SimDuration,
    },
    Burst,
    Poisson {
        mean_ms: f64,
        noise: Noise,
    },
    Pareto {
        scale_ms: f64,
        alpha: f64,
        noise: Noise,
    },
    Empirical {
        gaps_ms: Vec<f64>,
        noise: Noise,
    },
}

/// A lazy arrival generator: yields the exact arrival sequence the
/// corresponding [`Schedule`] constructor would materialize, one at a
/// time, so a million-invocation trace never lives in memory. Arrival
/// times are non-decreasing by construction.
///
/// Divergence from the eager constructors: virtual-time overflow is
/// reported in-stream (the arrivals before the overflow are yielded,
/// then one `Err(LoadError::Overflow)`, then the stream ends) instead
/// of failing the whole schedule up front.
#[derive(Debug, Clone)]
pub struct ArrivalGen {
    function: String,
    remaining: usize,
    t: SimInstant,
    pending_err: Option<LoadError>,
    kind: GenKind,
}

impl ArrivalGen {
    fn new(function: &str, n: usize, start: SimInstant, kind: GenKind) -> LoadResult<ArrivalGen> {
        validate_function(function)?;
        Ok(ArrivalGen {
            function: function.to_owned(),
            remaining: n,
            t: start,
            pending_err: None,
            kind,
        })
    }

    /// Streaming twin of [`Schedule::constant`].
    ///
    /// # Errors
    ///
    /// As [`Schedule::constant`] (overflow excepted, which streams).
    pub fn constant(
        function: &str,
        n: usize,
        start: SimInstant,
        interval: SimDuration,
    ) -> LoadResult<ArrivalGen> {
        if interval.is_zero() && n > 1 {
            return Err(LoadError::InvalidRate);
        }
        ArrivalGen::new(function, n, start, GenKind::Constant { interval })
    }

    /// Streaming twin of [`Schedule::burst`].
    ///
    /// # Errors
    ///
    /// As [`Schedule::burst`].
    pub fn burst(function: &str, n: usize, at: SimInstant) -> LoadResult<ArrivalGen> {
        ArrivalGen::new(function, n, at, GenKind::Burst)
    }

    /// Streaming twin of [`Schedule::poisson`] — same seed, same gaps.
    ///
    /// # Errors
    ///
    /// As [`Schedule::poisson`] (overflow excepted, which streams).
    pub fn poisson(
        function: &str,
        n: usize,
        start: SimInstant,
        mean_interval: SimDuration,
        seed: u64,
    ) -> LoadResult<ArrivalGen> {
        if mean_interval.is_zero() {
            return Err(LoadError::InvalidRate);
        }
        ArrivalGen::new(
            function,
            n,
            start,
            GenKind::Poisson {
                mean_ms: mean_interval.as_millis_f64(),
                noise: Noise::new(seed, 0.0),
            },
        )
    }

    /// Streaming twin of [`Schedule::pareto`] — same seed, same gaps.
    ///
    /// # Errors
    ///
    /// As [`Schedule::pareto`] (overflow excepted, which streams).
    pub fn pareto(
        function: &str,
        n: usize,
        start: SimInstant,
        scale_ms: f64,
        alpha: f64,
        seed: u64,
    ) -> LoadResult<ArrivalGen> {
        if !(scale_ms.is_finite() && scale_ms > 0.0 && alpha.is_finite() && alpha > 0.0) {
            return Err(LoadError::InvalidShape);
        }
        ArrivalGen::new(
            function,
            n,
            start,
            GenKind::Pareto {
                scale_ms,
                alpha,
                noise: Noise::new(seed, 0.0),
            },
        )
    }

    /// Streaming twin of [`Schedule::empirical`] — same seed, same gaps.
    ///
    /// # Errors
    ///
    /// As [`Schedule::empirical`] (overflow excepted, which streams).
    pub fn empirical(
        function: &str,
        n: usize,
        start: SimInstant,
        observed_gaps_ms: &[f64],
        seed: u64,
    ) -> LoadResult<ArrivalGen> {
        if observed_gaps_ms.is_empty()
            || observed_gaps_ms.iter().any(|g| !g.is_finite() || *g < 0.0)
        {
            return Err(LoadError::InvalidShape);
        }
        ArrivalGen::new(
            function,
            n,
            start,
            GenKind::Empirical {
                gaps_ms: observed_gaps_ms.to_vec(),
                noise: Noise::new(seed, 0.0),
            },
        )
    }

    /// Arrivals not yet yielded.
    pub fn remaining(&self) -> usize {
        self.remaining
    }
}

impl Iterator for ArrivalGen {
    type Item = LoadResult<Arrival>;

    fn next(&mut self) -> Option<LoadResult<Arrival>> {
        if let Some(e) = self.pending_err.take() {
            self.remaining = 0;
            return Some(Err(e));
        }
        if self.remaining == 0 {
            return None;
        }
        let out = Arrival {
            at: self.t,
            function: self.function.clone(),
        };
        self.remaining -= 1;
        if self.remaining > 0 {
            // Mirror `Schedule::from_gaps`: stochastic gaps floor at 1 ns
            // (strict monotonicity), constant intervals are used as-is
            // (zero already rejected for n > 1), bursts never advance.
            let gap = match &mut self.kind {
                GenKind::Constant { interval } => Some(*interval),
                GenKind::Burst => None,
                GenKind::Poisson { mean_ms, noise } => Some(
                    SimDuration::from_millis_f64(noise.exponential(*mean_ms))
                        .max(SimDuration::from_nanos(1)),
                ),
                GenKind::Pareto {
                    scale_ms,
                    alpha,
                    noise,
                } => {
                    // uniform() is in [0, 1); mirror to (0, 1] so
                    // u^(-1/alpha) stays finite.
                    let u = 1.0 - noise.uniform();
                    Some(
                        SimDuration::from_millis_f64(*scale_ms * u.powf(-1.0 / *alpha))
                            .max(SimDuration::from_nanos(1)),
                    )
                }
                GenKind::Empirical { gaps_ms, noise } => {
                    let idx = (noise.uniform() * gaps_ms.len() as f64) as usize;
                    Some(
                        SimDuration::from_millis_f64(gaps_ms[idx.min(gaps_ms.len() - 1)])
                            .max(SimDuration::from_nanos(1)),
                    )
                }
            };
            if let Some(gap) = gap {
                match advance(self.t, gap) {
                    Ok(t) => self.t = t,
                    Err(e) => self.pending_err = Some(e),
                }
            }
        }
        Some(Ok(out))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

/// An open-loop Poisson arrival process: rate-and-horizon bounded
/// instead of count bounded. This is the load shape a streaming gateway
/// is judged under — arrivals keep coming at the offered rate whether
/// or not earlier invocations completed, so admission queues and sheds
/// are properties of the *offered* load, not of the completion loop.
///
/// The first arrival lands exactly at `start` (mirroring
/// [`Schedule::poisson`]); subsequent gaps are exponentially
/// distributed with mean `1000 / rate_per_sec` ms, floored at 1 ns for
/// strict monotonicity. Arrivals stop at `start + horizon` (exclusive).
/// Same seed ⇒ byte-identical sequence. Unlike [`ArrivalGen`] there is
/// no in-band overflow: the constructor proves `start + horizon` fits
/// in virtual time, so a gap that overflows necessarily lands past the
/// horizon and simply ends the stream.
#[derive(Debug, Clone)]
pub struct PoissonProcess {
    function: String,
    t: SimInstant,
    end: SimInstant,
    mean_ms: f64,
    noise: Noise,
}

impl PoissonProcess {
    /// Creates a process emitting `rate_per_sec` arrivals per virtual
    /// second over `[start, start + horizon)`.
    ///
    /// # Errors
    ///
    /// [`LoadError::InvalidRate`] if the rate is non-positive or
    /// non-finite; [`LoadError::InvalidFunction`] on a bad function id;
    /// [`LoadError::Overflow`] if the horizon end overflows virtual
    /// time.
    pub fn new(
        function: &str,
        rate_per_sec: f64,
        start: SimInstant,
        horizon: SimDuration,
        seed: u64,
    ) -> LoadResult<PoissonProcess> {
        validate_function(function)?;
        if !(rate_per_sec.is_finite() && rate_per_sec > 0.0) {
            return Err(LoadError::InvalidRate);
        }
        let end = advance(start, horizon)?;
        Ok(PoissonProcess {
            function: function.to_owned(),
            t: start,
            end,
            mean_ms: 1_000.0 / rate_per_sec,
            noise: Noise::new(seed, 0.0),
        })
    }

    /// The exclusive end of the emission window.
    pub fn horizon_end(&self) -> SimInstant {
        self.end
    }
}

impl Iterator for PoissonProcess {
    type Item = LoadResult<Arrival>;

    fn next(&mut self) -> Option<LoadResult<Arrival>> {
        if self.t >= self.end {
            return None;
        }
        let out = Arrival {
            at: self.t,
            function: self.function.clone(),
        };
        let gap = SimDuration::from_millis_f64(self.noise.exponential(self.mean_ms))
            .max(SimDuration::from_nanos(1));
        self.t = advance(self.t, gap).unwrap_or(self.end);
        Some(Ok(out))
    }
}

/// Head slot of one merge source.
#[derive(Debug)]
enum Head {
    Unprimed,
    Ready(Arrival),
    Done,
}

/// Deterministic k-way merge of sorted arrival streams. Equal-time
/// arrivals drain in source order — exactly the order nested
/// [`Schedule::merge`] calls produce when the sources are given in the
/// same order — so a streamed multi-tenant trace is byte-identical to
/// its materialized twin. The merge is O(k) per arrival (k = tenant
/// streams), which is flat in trace length.
#[derive(Debug)]
pub struct MergedArrivals<I> {
    sources: Vec<I>,
    heads: Vec<Head>,
    failed: bool,
}

impl<I: Iterator<Item = LoadResult<Arrival>>> MergedArrivals<I> {
    /// Merges `sources` (each individually time-sorted).
    pub fn new(sources: Vec<I>) -> MergedArrivals<I> {
        let heads = sources.iter().map(|_| Head::Unprimed).collect();
        MergedArrivals {
            sources,
            heads,
            failed: false,
        }
    }
}

impl<I: Iterator<Item = LoadResult<Arrival>>> Iterator for MergedArrivals<I> {
    type Item = LoadResult<Arrival>;

    fn next(&mut self) -> Option<LoadResult<Arrival>> {
        if self.failed {
            return None;
        }
        for (head, source) in self.heads.iter_mut().zip(&mut self.sources) {
            if matches!(head, Head::Unprimed) {
                match source.next() {
                    Some(Ok(a)) => *head = Head::Ready(a),
                    Some(Err(e)) => {
                        self.failed = true;
                        return Some(Err(e));
                    }
                    None => *head = Head::Done,
                }
            }
        }
        // Earliest time wins; the first source wins ties, matching the
        // left-biased stable merge of the eager path.
        let mut best: Option<(usize, SimInstant)> = None;
        for (i, head) in self.heads.iter().enumerate() {
            if let Head::Ready(a) = head {
                if best.is_none_or(|(_, at)| a.at < at) {
                    best = Some((i, a.at));
                }
            }
        }
        let (i, _) = best?;
        match std::mem::replace(&mut self.heads[i], Head::Unprimed) {
            Head::Ready(a) => Some(Ok(a)),
            _ => unreachable!("best index always holds a ready head"),
        }
    }
}

/// Streams arrivals to `out` in the [`Schedule::to_csv`] format
/// (`t_ns,function` header + one row per arrival) without materializing
/// the trace, returning the number of rows written. Wrap `out` in a
/// `BufWriter` for file targets — rows are written one at a time.
///
/// # Errors
///
/// [`LoadError::Io`] on write failure; [`LoadError::InvalidFunction`]
/// if a streamed function id cannot be carried by the format; any error
/// the stream itself yields.
pub fn write_csv_stream<W: std::io::Write>(
    mut out: W,
    stream: impl IntoIterator<Item = LoadResult<Arrival>>,
) -> LoadResult<u64> {
    let io_err = |e: std::io::Error| LoadError::Io(e.kind());
    out.write_all(b"t_ns,function\n").map_err(io_err)?;
    let mut rows = 0u64;
    for arrival in stream {
        let a = arrival?;
        validate_function(&a.function)?;
        writeln!(out, "{},{}", a.at.as_nanos(), a.function).map_err(io_err)?;
        rows += 1;
    }
    out.flush().map_err(io_err)?;
    Ok(rows)
}

/// Lazily parses a CSV trace from a buffered reader, yielding arrivals
/// in file order one row at a time (the chunking is the reader's
/// buffer). Accepts exactly what [`Schedule::from_csv`] accepts —
/// optional header, blank lines, `\r\n` — but does **not** sort:
/// consumers that need time order should stream traces written by
/// [`write_csv_stream`] (sorted by construction) or fall back to the
/// materializing parser.
#[derive(Debug)]
pub struct CsvArrivalStream<R> {
    reader: R,
    line: String,
    lineno: usize,
    failed: bool,
}

impl<R: std::io::BufRead> CsvArrivalStream<R> {
    /// Wraps a buffered reader positioned at the start of a trace.
    pub fn new(reader: R) -> CsvArrivalStream<R> {
        CsvArrivalStream {
            reader,
            line: String::new(),
            lineno: 0,
            failed: false,
        }
    }
}

impl<R: std::io::BufRead> Iterator for CsvArrivalStream<R> {
    type Item = LoadResult<Arrival>;

    fn next(&mut self) -> Option<LoadResult<Arrival>> {
        if self.failed {
            return None;
        }
        loop {
            self.line.clear();
            match self.reader.read_line(&mut self.line) {
                Ok(0) => return None,
                Ok(_) => {}
                Err(e) => {
                    self.failed = true;
                    return Some(Err(LoadError::Io(e.kind())));
                }
            }
            self.lineno += 1;
            let line = self.line.trim_end_matches('\n').trim_end_matches('\r');
            if line.is_empty() || (self.lineno == 1 && line == "t_ns,function") {
                continue;
            }
            let parsed = (|| {
                let (t, function) = line
                    .split_once(',')
                    .ok_or(LoadError::Malformed(self.lineno))?;
                let nanos: u64 = t
                    .trim()
                    .parse()
                    .map_err(|_| LoadError::Malformed(self.lineno))?;
                validate_function(function)?;
                Ok(Arrival {
                    at: SimInstant::from_nanos(nanos),
                    function: function.to_owned(),
                })
            })();
            if parsed.is_err() {
                self.failed = true;
            }
            return Some(parsed);
        }
    }
}

/// Submits `n` requests at a constant inter-arrival interval starting at
/// `start`.
///
/// # Errors
///
/// As [`Schedule::constant`], plus submission errors (unknown function).
pub fn constant_rate(
    platform: &mut Platform,
    function: &str,
    n: usize,
    start: SimInstant,
    interval: SimDuration,
    make_request: impl Fn(usize) -> Request,
) -> LoadResult<()> {
    Schedule::constant(function, n, start, interval)?.submit(platform, make_request)
}

/// Submits `n` requests with exponentially distributed inter-arrival
/// times of the given mean (an open-loop Poisson process), deterministic
/// in `seed`.
///
/// # Errors
///
/// As [`Schedule::poisson`], plus submission errors.
pub fn poisson(
    platform: &mut Platform,
    function: &str,
    n: usize,
    start: SimInstant,
    mean_interval: SimDuration,
    seed: u64,
    make_request: impl Fn(usize) -> Request,
) -> LoadResult<()> {
    Schedule::poisson(function, n, start, mean_interval, seed)?.submit(platform, make_request)
}

/// Submits `n` simultaneous requests at `at` (a burst — the demand surge
/// that makes cold-start latency visible).
///
/// # Errors
///
/// As [`Schedule::burst`], plus submission errors.
pub fn burst(
    platform: &mut Platform,
    function: &str,
    n: usize,
    at: SimInstant,
    make_request: impl Fn(usize) -> Request,
) -> LoadResult<()> {
    Schedule::burst(function, n, at)?.submit(platform, make_request)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{FunctionBuilder, Template};
    use crate::platform::PlatformConfig;
    use crate::registry::Registry;
    use prebake_functions::FunctionSpec;

    fn platform() -> Platform {
        let registry = Registry::new();
        registry.push(
            FunctionBuilder
                .build(FunctionSpec::noop(), &Template::java11())
                .unwrap(),
        );
        let mut p = Platform::new(PlatformConfig::default(), registry);
        p.deploy_function("noop").unwrap();
        p
    }

    #[test]
    fn constant_rate_submits_all() {
        let mut p = platform();
        constant_rate(
            &mut p,
            "noop",
            20,
            SimInstant::EPOCH,
            SimDuration::from_millis(50),
            |_| Request::empty(),
        )
        .unwrap();
        p.run().unwrap();
        assert_eq!(p.completed().len(), 20);
        // Sequential constant-rate load after warm-up is all warm.
        let warm = p.completed().iter().filter(|r| !r.cold).count();
        assert!(warm >= 18, "most requests warm, got {warm}");
    }

    #[test]
    fn poisson_is_deterministic_per_seed() {
        let mut p1 = platform();
        poisson(
            &mut p1,
            "noop",
            30,
            SimInstant::EPOCH,
            SimDuration::from_millis(20),
            7,
            |_| Request::empty(),
        )
        .unwrap();
        p1.run().unwrap();

        let mut p2 = platform();
        poisson(
            &mut p2,
            "noop",
            30,
            SimInstant::EPOCH,
            SimDuration::from_millis(20),
            7,
            |_| Request::empty(),
        )
        .unwrap();
        p2.run().unwrap();

        let l1: Vec<u64> = p1
            .completed()
            .iter()
            .map(|r| r.completed.as_nanos())
            .collect();
        let l2: Vec<u64> = p2
            .completed()
            .iter()
            .map(|r| r.completed.as_nanos())
            .collect();
        assert_eq!(l1, l2);
    }

    #[test]
    fn burst_fans_out_replicas() {
        let mut p = platform();
        burst(&mut p, "noop", 6, SimInstant::EPOCH, |_| Request::empty()).unwrap();
        p.run().unwrap();
        assert_eq!(p.completed().len(), 6);
        let started = p.metrics().get("noop").unwrap().replicas_started.get();
        assert!(started >= 3, "burst should fan out, started {started}");
    }

    #[test]
    fn zero_rates_are_typed_errors() {
        assert_eq!(
            Schedule::constant("f", 2, SimInstant::EPOCH, SimDuration::ZERO).unwrap_err(),
            LoadError::InvalidRate
        );
        // A single arrival needs no progress, so a zero interval is fine.
        assert_eq!(
            Schedule::constant("f", 1, SimInstant::EPOCH, SimDuration::ZERO)
                .unwrap()
                .len(),
            1
        );
        assert_eq!(
            Schedule::poisson("f", 5, SimInstant::EPOCH, SimDuration::ZERO, 1).unwrap_err(),
            LoadError::InvalidRate
        );
        // Negative float intervals saturate to zero and are rejected too.
        assert_eq!(
            Schedule::poisson(
                "f",
                5,
                SimInstant::EPOCH,
                SimDuration::from_millis_f64(-3.0),
                1
            )
            .unwrap_err(),
            LoadError::InvalidRate
        );
    }

    #[test]
    fn shape_parameters_are_validated() {
        for (scale, alpha) in [(0.0, 1.5), (-1.0, 1.5), (10.0, 0.0), (10.0, -2.0)] {
            assert_eq!(
                Schedule::pareto("f", 3, SimInstant::EPOCH, scale, alpha, 1).unwrap_err(),
                LoadError::InvalidShape
            );
        }
        assert_eq!(
            Schedule::pareto("f", 3, SimInstant::EPOCH, f64::NAN, 1.5, 1).unwrap_err(),
            LoadError::InvalidShape
        );
        assert_eq!(
            Schedule::empirical("f", 3, SimInstant::EPOCH, &[], 1).unwrap_err(),
            LoadError::InvalidShape
        );
        assert_eq!(
            Schedule::empirical("f", 3, SimInstant::EPOCH, &[5.0, f64::INFINITY], 1).unwrap_err(),
            LoadError::InvalidShape
        );
        assert_eq!(
            Schedule::empirical("f", 3, SimInstant::EPOCH, &[5.0, -1.0], 1).unwrap_err(),
            LoadError::InvalidShape
        );
    }

    #[test]
    fn tick_overflow_is_a_typed_error() {
        let near_end = SimInstant::from_nanos(u64::MAX - 10);
        assert_eq!(
            Schedule::constant("f", 3, near_end, SimDuration::from_secs(1)).unwrap_err(),
            LoadError::Overflow
        );
        assert_eq!(
            Schedule::poisson("f", 50, near_end, SimDuration::from_secs(1), 1).unwrap_err(),
            LoadError::Overflow
        );
        assert_eq!(
            Schedule::pareto("f", 50, near_end, 1000.0, 1.1, 1).unwrap_err(),
            LoadError::Overflow
        );
    }

    #[test]
    fn function_ids_are_validated() {
        for bad in ["", "a,b", "a\nb"] {
            assert!(matches!(
                Schedule::burst(bad, 1, SimInstant::EPOCH).unwrap_err(),
                LoadError::InvalidFunction(_)
            ));
        }
    }

    #[test]
    fn error_display_and_source() {
        let e = LoadError::Submit(Errno::Enoent);
        assert!(e.to_string().contains("no such file"));
        assert!(LoadError::Malformed(3).to_string().contains("line 3"));
        let from: LoadError = Errno::Einval.into();
        assert_eq!(from, LoadError::Submit(Errno::Einval));
    }

    #[test]
    fn pareto_gaps_are_heavy_tailed() {
        let s = Schedule::pareto("f", 2000, SimInstant::EPOCH, 10.0, 1.2, 9).unwrap();
        let gaps: Vec<f64> = s
            .arrivals()
            .windows(2)
            .map(|w| (w[1].at - w[0].at).as_millis_f64())
            .collect();
        let min = gaps.iter().cloned().fold(f64::MAX, f64::min);
        let max = gaps.iter().cloned().fold(0.0f64, f64::max);
        assert!(min >= 10.0, "Pareto minimum gap is the scale, got {min}");
        assert!(
            max > 200.0,
            "alpha 1.2 should produce occasional huge gaps, max {max}"
        );
    }

    #[test]
    fn empirical_resamples_only_observed_gaps() {
        let observed = [5.0, 50.0, 500.0];
        let s = Schedule::empirical("f", 400, SimInstant::EPOCH, &observed, 3).unwrap();
        for w in s.arrivals().windows(2) {
            let gap = (w[1].at - w[0].at).as_millis_f64();
            assert!(
                observed.iter().any(|o| (gap - o).abs() < 1e-6),
                "gap {gap} not in the observed set"
            );
        }
    }

    #[test]
    fn merge_orders_by_time_stably() {
        let a =
            Schedule::constant("a", 3, SimInstant::EPOCH, SimDuration::from_millis(10)).unwrap();
        let b =
            Schedule::constant("b", 3, SimInstant::EPOCH, SimDuration::from_millis(10)).unwrap();
        let merged = a.merge(b);
        assert_eq!(merged.len(), 6);
        let order: Vec<&str> = merged
            .arrivals()
            .iter()
            .map(|x| x.function.as_str())
            .collect();
        assert_eq!(order, ["a", "b", "a", "b", "a", "b"]);
        assert!(merged.arrivals().windows(2).all(|w| w[0].at <= w[1].at));
        assert_eq!(
            merged.end(),
            Some(SimInstant::EPOCH + SimDuration::from_millis(20))
        );
    }

    #[test]
    fn csv_roundtrip_is_exact() {
        let s = Schedule::poisson(
            "noop",
            25,
            SimInstant::EPOCH,
            SimDuration::from_millis(7),
            11,
        )
        .unwrap()
        .merge(Schedule::burst("fn-b", 3, SimInstant::from_nanos(12345)).unwrap());
        let csv = s.to_csv();
        assert!(csv.starts_with("t_ns,function\n"));
        let back = Schedule::from_csv(&csv).unwrap();
        assert_eq!(s, back);
        // Headerless input parses too.
        let headerless: String = csv.lines().skip(1).map(|l| format!("{l}\n")).collect();
        assert_eq!(Schedule::from_csv(&headerless).unwrap(), s);
    }

    #[test]
    fn csv_rejects_malformed_rows() {
        assert_eq!(
            Schedule::from_csv("t_ns,function\nnot-a-number,f\n").unwrap_err(),
            LoadError::Malformed(2)
        );
        assert_eq!(
            Schedule::from_csv("12 no comma here\n").unwrap_err(),
            LoadError::Malformed(1)
        );
        assert!(Schedule::from_csv("").unwrap().is_empty());
    }

    #[test]
    fn trace_replay_drives_the_platform() {
        let csv = "t_ns,function\n0,noop\n1000000000,noop\n2000000000,noop\n";
        let schedule = Schedule::from_csv(csv).unwrap();
        let mut p = platform();
        schedule.submit(&mut p, |_| Request::empty()).unwrap();
        p.run().unwrap();
        assert_eq!(p.completed().len(), 3);
        // One-second spacing keeps everything on one warm replica.
        assert_eq!(p.completed().iter().filter(|r| r.cold).count(), 1);
    }

    #[test]
    fn submit_unknown_function_is_typed() {
        let schedule = Schedule::burst("ghost", 1, SimInstant::EPOCH).unwrap();
        let mut p = platform();
        assert_eq!(
            schedule.submit(&mut p, |_| Request::empty()).unwrap_err(),
            LoadError::Submit(Errno::Enoent)
        );
    }

    /// Drains a stream into a schedule, panicking on stream errors.
    fn collect_stream(stream: impl IntoIterator<Item = LoadResult<Arrival>>) -> Schedule {
        Schedule::from_stream(stream).unwrap()
    }

    #[test]
    fn arrival_gens_match_eager_constructors_exactly() {
        let start = SimInstant::EPOCH + SimDuration::from_millis(5);
        let cases: Vec<(Schedule, ArrivalGen)> = vec![
            (
                Schedule::constant("f", 100, start, SimDuration::from_micros(250)).unwrap(),
                ArrivalGen::constant("f", 100, start, SimDuration::from_micros(250)).unwrap(),
            ),
            (
                Schedule::burst("f", 7, start).unwrap(),
                ArrivalGen::burst("f", 7, start).unwrap(),
            ),
            (
                Schedule::poisson("f", 100, start, SimDuration::from_millis(3), 42).unwrap(),
                ArrivalGen::poisson("f", 100, start, SimDuration::from_millis(3), 42).unwrap(),
            ),
            (
                Schedule::pareto("f", 100, start, 2.0, 1.5, 9).unwrap(),
                ArrivalGen::pareto("f", 100, start, 2.0, 1.5, 9).unwrap(),
            ),
            (
                Schedule::empirical("f", 100, start, &[1.0, 4.0, 0.25], 7).unwrap(),
                ArrivalGen::empirical("f", 100, start, &[1.0, 4.0, 0.25], 7).unwrap(),
            ),
        ];
        for (eager, lazy) in cases {
            assert_eq!(lazy.remaining(), eager.len());
            assert_eq!(lazy.size_hint(), (eager.len(), Some(eager.len())));
            assert_eq!(collect_stream(lazy), eager);
        }
    }

    #[test]
    fn arrival_gen_validation_matches_eager() {
        assert_eq!(
            ArrivalGen::constant("f", 2, SimInstant::EPOCH, SimDuration::ZERO).unwrap_err(),
            LoadError::InvalidRate
        );
        assert!(ArrivalGen::constant("f", 1, SimInstant::EPOCH, SimDuration::ZERO).is_ok());
        assert_eq!(
            ArrivalGen::poisson("f", 2, SimInstant::EPOCH, SimDuration::ZERO, 1).unwrap_err(),
            LoadError::InvalidRate
        );
        assert_eq!(
            ArrivalGen::pareto("f", 2, SimInstant::EPOCH, 0.0, 1.0, 1).unwrap_err(),
            LoadError::InvalidShape
        );
        assert_eq!(
            ArrivalGen::empirical("f", 2, SimInstant::EPOCH, &[], 1).unwrap_err(),
            LoadError::InvalidShape
        );
        assert_eq!(
            ArrivalGen::burst("a,b", 1, SimInstant::EPOCH).unwrap_err(),
            LoadError::InvalidFunction("a,b".to_owned())
        );
    }

    #[test]
    fn arrival_gen_streams_overflow_after_valid_prefix() {
        let near_end = SimInstant::from_nanos(u64::MAX - 5);
        let mut gen = ArrivalGen::constant("f", 3, near_end, SimDuration::from_nanos(10)).unwrap();
        assert_eq!(gen.next().unwrap().unwrap().at, near_end);
        assert_eq!(gen.next().unwrap().unwrap_err(), LoadError::Overflow);
        assert!(gen.next().is_none(), "stream ends after the error");
        // The eager constructor rejects the whole schedule instead.
        assert_eq!(
            Schedule::constant("f", 3, near_end, SimDuration::from_nanos(10)).unwrap_err(),
            LoadError::Overflow
        );
    }

    #[test]
    fn merged_arrivals_match_nested_schedule_merge() {
        let start = SimInstant::EPOCH;
        let eager = Schedule::poisson("t0", 50, start, SimDuration::from_millis(2), 1)
            .unwrap()
            .merge(Schedule::constant("t1", 50, start, SimDuration::from_millis(2)).unwrap())
            .merge(Schedule::burst("t2", 5, start + SimDuration::from_millis(10)).unwrap());
        let lazy = MergedArrivals::new(vec![
            ArrivalGen::poisson("t0", 50, start, SimDuration::from_millis(2), 1).unwrap(),
            ArrivalGen::constant("t1", 50, start, SimDuration::from_millis(2)).unwrap(),
            ArrivalGen::burst("t2", 5, start + SimDuration::from_millis(10)).unwrap(),
        ]);
        let streamed: Vec<Arrival> = lazy.map(|a| a.unwrap()).collect();
        assert_eq!(streamed, eager.arrivals());
    }

    #[test]
    fn merged_arrivals_stop_at_first_error() {
        let near_end = SimInstant::from_nanos(u64::MAX - 5);
        let merged = MergedArrivals::new(vec![
            ArrivalGen::constant("bad", 3, near_end, SimDuration::from_nanos(10)).unwrap(),
            ArrivalGen::constant("ok", 3, SimInstant::EPOCH, SimDuration::from_nanos(1)).unwrap(),
        ]);
        let items: Vec<LoadResult<Arrival>> = merged.collect();
        assert!(items.iter().filter(|i| i.is_err()).count() == 1);
        assert!(items.last().unwrap().is_err(), "error terminates the merge");
    }

    #[test]
    fn csv_stream_writes_and_reads_the_eager_format() {
        let start = SimInstant::EPOCH;
        let eager = Schedule::poisson("t0", 40, start, SimDuration::from_millis(2), 3)
            .unwrap()
            .merge(Schedule::constant("t1", 40, start, SimDuration::from_millis(3)).unwrap());
        let expected_csv = eager.to_csv();

        // Streamed writer produces byte-identical CSV from lazy sources.
        let merged = MergedArrivals::new(vec![
            ArrivalGen::poisson("t0", 40, start, SimDuration::from_millis(2), 3).unwrap(),
            ArrivalGen::constant("t1", 40, start, SimDuration::from_millis(3)).unwrap(),
        ]);
        let mut buf = Vec::new();
        let rows = write_csv_stream(&mut buf, merged).unwrap();
        assert_eq!(rows, 80);
        assert_eq!(String::from_utf8(buf.clone()).unwrap(), expected_csv);

        // Streamed reader yields the same arrivals in file order.
        let back: Vec<Arrival> = CsvArrivalStream::new(&buf[..])
            .map(|a| a.unwrap())
            .collect();
        assert_eq!(back, eager.arrivals());
        assert_eq!(collect_stream(CsvArrivalStream::new(&buf[..])), eager);
    }

    #[test]
    fn csv_stream_rejects_malformed_rows_with_line_numbers() {
        let items: Vec<LoadResult<Arrival>> =
            CsvArrivalStream::new("t_ns,function\nnot-a-number,f\n".as_bytes()).collect();
        assert_eq!(items, vec![Err(LoadError::Malformed(2))]);
        let items: Vec<LoadResult<Arrival>> =
            CsvArrivalStream::new("12 no comma here\n".as_bytes()).collect();
        assert_eq!(items, vec![Err(LoadError::Malformed(1))]);
        assert!(CsvArrivalStream::new("".as_bytes()).next().is_none());
        // Blank lines and a CRLF header are skipped, as in the eager parser.
        let back: Vec<Arrival> = CsvArrivalStream::new("t_ns,function\r\n\n7,f\r\n".as_bytes())
            .map(|a| a.unwrap())
            .collect();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].at, SimInstant::from_nanos(7));
    }
}
