//! The FaaS platform: router, deployer, resource manager and autoscaler
//! over per-container machines.
//!
//! Follows the SPEC-RG reference architecture the paper's §2 describes:
//! the *Function Router* queues events while no replica is available, the
//! *Function Deployer* provisions new replicas from registry images, and
//! the platform garbage-collects idle replicas (scale-to-zero) — the
//! very policy that causes cold starts. Each replica runs in its own
//! container, modelled as its own [`Kernel`] (own page cache, pid and
//! port namespaces); container clocks are synchronised to platform time
//! with the next-free-time pattern described in `DESIGN.md` §7.

use std::collections::{BTreeMap, VecDeque};

use bytes::Bytes;
use prebake_core::env::{fresh_container, import_images, provision_machine, Deployment};
use prebake_core::starter::{PrebakeStarter, Started, Starter, VanillaStarter};
use prebake_runtime::http::Request;
use prebake_runtime::Replica;
use prebake_sim::error::{Errno, SysResult};
use prebake_sim::event::EventQueue;
use prebake_sim::kernel::Kernel;
use prebake_sim::probe::ProbeCounters;
use prebake_sim::proc::Pid;
use prebake_sim::time::{SimDuration, SimInstant};
use prebake_sim::trace::TraceSpan;

use crate::metrics::Metrics;
use crate::registry::Registry;

/// Platform-wide configuration.
#[derive(Debug, Clone)]
pub struct PlatformConfig {
    /// Maximum replicas per function.
    pub max_replicas: usize,
    /// Idle time after which a replica is garbage-collected.
    pub idle_timeout: SimDuration,
    /// Warm-pool floor per function (the pool-based mitigation of
    /// Lin & Glikson \[14\] used as an ablation baseline; 0 = pure
    /// scale-to-zero).
    pub min_warm_pool: usize,
    /// How many cold starts one node can drive concurrently before they
    /// queue on host I/O and CPU (the paper's §7 "concurrent snapshots"
    /// concern). `usize::MAX` disables the model.
    pub cold_start_concurrency: usize,
    /// Worker nodes in the cluster (SPEC-RG Resource Orchestration
    /// layer). Replicas are placed least-loaded-first.
    pub nodes: usize,
    /// Maximum containers per node; a full cluster defers scale-up until
    /// capacity frees.
    pub node_capacity: usize,
    /// Port replicas bind inside their container.
    pub container_port: u16,
    /// Seed driving container-kernel noise.
    pub seed: u64,
    /// Record [`TraceSpan`] trees on container kernels (cold starts and
    /// requests). Off by default: spans cost allocation per operation,
    /// and most experiments only need the aggregate metrics.
    pub span_tracing: bool,
}

impl Default for PlatformConfig {
    fn default() -> Self {
        PlatformConfig {
            max_replicas: 20,
            idle_timeout: SimDuration::from_secs(60),
            min_warm_pool: 0,
            cold_start_concurrency: 4,
            nodes: 1,
            node_capacity: 64,
            container_port: 8080,
            seed: 0xFAA5,
            span_tracing: false,
        }
    }
}

/// A completed request, as observed at the gateway.
#[derive(Debug, Clone)]
pub struct CompletedRequest {
    /// Request id (submission order).
    pub id: u64,
    /// Function name.
    pub function: String,
    /// Arrival time at the gateway.
    pub arrived: SimInstant,
    /// Instant a replica began serving (queue and cold-start waits end
    /// here; a streaming frontend charges chunks from this point).
    pub dispatched: SimInstant,
    /// Completion time.
    pub completed: SimInstant,
    /// Whether the request waited on a cold start.
    pub cold: bool,
    /// Response body the replica produced (empty for errored requests).
    pub body: Bytes,
}

impl CompletedRequest {
    /// End-to-end latency in milliseconds.
    pub fn latency_ms(&self) -> f64 {
        (self.completed - self.arrived).as_millis_f64()
    }

    /// Queue + cold-start wait before service began, in milliseconds.
    pub fn dispatch_wait_ms(&self) -> f64 {
        (self.dispatched - self.arrived).as_millis_f64()
    }
}

struct Container {
    function: String,
    kernel: Kernel,
    #[allow(dead_code)]
    watchdog: Pid,
    replica: Replica,
    node: usize,
    busy_until: SimInstant,
    last_active: SimInstant,
    started_at: SimInstant,
    ready_at: SimInstant,
}

/// One worker node's placement state.
#[derive(Debug, Default)]
struct NodeState {
    /// Busy-until times of in-flight cold starts (≤ concurrency).
    slots: Vec<SimInstant>,
    /// Containers currently placed on this node.
    containers: usize,
}

#[derive(Debug)]
struct QueuedRequest {
    id: u64,
    arrived: SimInstant,
    req: Request,
}

#[derive(Debug)]
enum Event {
    Arrival {
        id: u64,
        function: String,
        req: Request,
    },
    ReplicaReady {
        container: u64,
    },
    RequestDone {
        container: u64,
    },
    IdleSweep,
}

/// The platform.
pub struct Platform {
    config: PlatformConfig,
    registry: Registry,
    containers: BTreeMap<u64, Container>,
    queues: BTreeMap<String, VecDeque<QueuedRequest>>,
    starting: BTreeMap<String, usize>,
    events: EventQueue<Event>,
    now: SimInstant,
    metrics: Metrics,
    completed: Vec<CompletedRequest>,
    next_container: u64,
    next_request: u64,
    nodes: Vec<NodeState>,
    spans: Vec<TraceSpan>,
}

impl std::fmt::Debug for Platform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Platform")
            .field("now", &self.now)
            .field("containers", &self.containers.len())
            .field("pending_events", &self.events.len())
            .field("completed", &self.completed.len())
            .finish()
    }
}

impl Platform {
    /// Creates a platform over a registry.
    pub fn new(config: PlatformConfig, registry: Registry) -> Platform {
        let node_count = config.nodes.max(1);
        Platform {
            config,
            registry,
            containers: BTreeMap::new(),
            queues: BTreeMap::new(),
            starting: BTreeMap::new(),
            events: EventQueue::new(),
            now: SimInstant::EPOCH,
            metrics: Metrics::new(),
            completed: Vec::new(),
            next_container: 1,
            next_request: 1,
            nodes: (0..node_count).map(|_| NodeState::default()).collect(),
            spans: Vec::new(),
        }
    }

    /// Places a new replica: picks the least-loaded node with capacity
    /// headroom and reserves one of its cold-start slots. Returns the
    /// node, the slot index and the time the start may begin — or `None`
    /// if the cluster is full (scale-up waits for capacity).
    fn place_cold_start(&mut self) -> Option<(usize, usize, SimInstant)> {
        let capacity = self.config.node_capacity.max(1);
        let node = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.containers < capacity)
            .min_by_key(|(_, n)| n.containers)
            .map(|(i, _)| i)?;
        let cap = self.config.cold_start_concurrency.max(1);
        let slots = &mut self.nodes[node].slots;
        if slots.len() < cap {
            slots.push(self.now);
            return Some((node, slots.len() - 1, self.now));
        }
        let (idx, &busy_until) = slots
            .iter()
            .enumerate()
            .min_by_key(|(_, t)| t.as_nanos())
            .expect("slots non-empty");
        Some((node, idx, busy_until.max(self.now)))
    }

    /// Current platform time.
    pub fn now(&self) -> SimInstant {
        self.now
    }

    /// Instant of the earliest pending event, if any — lets an external
    /// driver (the gateway) step [`Platform::run_until`] event-batch by
    /// event-batch and interleave its own bookkeeping between batches.
    pub fn next_event_time(&self) -> Option<SimInstant> {
        self.events.peek_time()
    }

    /// Gateway metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Requests completed so far, in completion order.
    pub fn completed(&self) -> &[CompletedRequest] {
        &self.completed
    }

    /// Drains every recorded [`TraceSpan`]: spans stashed from removed
    /// containers plus whatever live containers have accumulated so far.
    /// Empty unless [`PlatformConfig::span_tracing`] is on. Span ids are
    /// unique per container kernel, not across the platform, so group by
    /// pid/tree when merging into one timeline.
    pub fn take_spans(&mut self) -> Vec<TraceSpan> {
        let mut spans = std::mem::take(&mut self.spans);
        for container in self.containers.values_mut() {
            spans.extend(container.kernel.take_spans());
        }
        spans
    }

    /// Live replicas of `function`.
    pub fn replica_count(&self, function: &str) -> usize {
        self.containers
            .values()
            .filter(|c| c.function == function)
            .count()
    }

    /// Makes a function routable (creates its queue) and pre-starts the
    /// warm pool if configured.
    ///
    /// # Errors
    ///
    /// [`Errno::Enoent`] if the function is not in the registry.
    pub fn deploy_function(&mut self, name: &str) -> SysResult<()> {
        if self.registry.pull(name).is_none() {
            return Err(Errno::Enoent);
        }
        self.queues.entry(name.to_owned()).or_default();
        for _ in 0..self.config.min_warm_pool {
            self.start_replica(name)?;
        }
        Ok(())
    }

    /// Schedules a request arrival at `at` (≥ now).
    ///
    /// # Errors
    ///
    /// [`Errno::Enoent`] if the function is not deployed.
    pub fn submit(&mut self, at: SimInstant, function: &str, req: Request) -> SysResult<u64> {
        if !self.queues.contains_key(function) {
            return Err(Errno::Enoent);
        }
        let id = self.next_request;
        self.next_request += 1;
        self.events.schedule(
            at.max(self.now),
            Event::Arrival {
                id,
                function: function.to_owned(),
                req,
            },
        );
        Ok(id)
    }

    /// Runs until the event queue drains.
    ///
    /// # Errors
    ///
    /// Propagates replica/kernel errors.
    pub fn run(&mut self) -> SysResult<()> {
        while let Some((t, event)) = self.events.pop() {
            self.now = self.now.max(t);
            self.handle_event(event)?;
        }
        Ok(())
    }

    /// Runs events strictly before `bound`, then advances the clock to
    /// `bound`. Events at or after the bound stay queued — an external
    /// driver (the gateway) can interleave new submissions between event
    /// batches without perturbing the timeline.
    ///
    /// # Errors
    ///
    /// Propagates replica/kernel errors.
    pub fn run_until(&mut self, bound: SimInstant) -> SysResult<()> {
        while let Some(t) = self.events.peek_time() {
            if t >= bound {
                break;
            }
            let (t, event) = self.events.pop().expect("peeked event");
            self.now = self.now.max(t);
            self.handle_event(event)?;
        }
        self.now = self.now.max(bound);
        Ok(())
    }

    fn handle_event(&mut self, event: Event) -> SysResult<()> {
        match event {
            Event::Arrival { id, function, req } => {
                self.metrics.function(&function).requests.inc();
                self.queues
                    .get_mut(&function)
                    .ok_or(Errno::Enoent)?
                    .push_back(QueuedRequest {
                        id,
                        arrived: self.now,
                        req,
                    });
                self.dispatch(&function)?;
                // No capacity serving us now? consider scale-up.
                self.maybe_scale_up(&function)?;
                Ok(())
            }
            Event::ReplicaReady { container } => {
                let function = match self.containers.get(&container) {
                    Some(c) => c.function.clone(),
                    None => return Ok(()),
                };
                *self.starting.entry(function.clone()).or_default() = self
                    .starting
                    .get(&function)
                    .copied()
                    .unwrap_or(1)
                    .saturating_sub(1);
                self.dispatch(&function)?;
                // Schedule the idle sweep that may reap this replica.
                self.events
                    .schedule(self.now + self.config.idle_timeout, Event::IdleSweep);
                Ok(())
            }
            Event::RequestDone { container } => {
                let function = match self.containers.get(&container) {
                    Some(c) => c.function.clone(),
                    None => return Ok(()),
                };
                self.dispatch(&function)?;
                self.events
                    .schedule(self.now + self.config.idle_timeout, Event::IdleSweep);
                Ok(())
            }
            Event::IdleSweep => {
                self.sweep_idle();
                Ok(())
            }
        }
    }

    /// Assigns queued requests of `function` to idle ready replicas.
    fn dispatch(&mut self, function: &str) -> SysResult<()> {
        loop {
            let Some(queue) = self.queues.get_mut(function) else {
                return Ok(());
            };
            if queue.is_empty() {
                return Ok(());
            }
            // Find an idle, ready container.
            let Some((&cid, _)) = self.containers.iter().find(|(_, c)| {
                c.function == function && c.ready_at <= self.now && c.busy_until <= self.now
            }) else {
                return Ok(());
            };
            let qreq = self.queues.get_mut(function).unwrap().pop_front().unwrap();
            self.serve(cid, qreq)?;
        }
    }

    fn serve(&mut self, cid: u64, qreq: QueuedRequest) -> SysResult<()> {
        let dispatched = self.now;
        let container = self.containers.get_mut(&cid).expect("container exists");
        container.kernel.advance_to(self.now);
        let span = container
            .kernel
            .span_begin("request", container.replica.pid());
        container
            .kernel
            .span_attr(span, "function", &container.function);
        container.kernel.span_attr(span, "id", qreq.id.to_string());
        let mut errored = false;
        let mut body = Bytes::new();
        let outcome = container.replica.handle(&mut container.kernel, &qreq.req);
        container.kernel.span_end(span);
        match outcome {
            Ok(response) => body = response.body,
            Err(Errno::Esrch | Errno::Enotconn | Errno::Ebadf | Errno::Efault) => {
                // Watchdog: the replica process died. Replace the
                // container, put the request back at the head of the
                // queue, and let scale-up provision a successor.
                let function = container.function.clone();
                self.remove_container(cid, RemovalReason::Crashed);
                self.queues
                    .get_mut(&function)
                    .ok_or(Errno::Enoent)?
                    .push_front(qreq);
                self.maybe_scale_up(&function)?;
                return Ok(());
            }
            Err(_application_error) => {
                // A bad request (e.g. an unparsable body) is the caller's
                // problem, not the platform's: complete it as an HTTP
                // 5xx-style error and keep serving.
                errored = true;
            }
        }
        let container = self.containers.get_mut(&cid).expect("container exists");
        let done = container.kernel.now();
        container.busy_until = done;
        container.last_active = done;
        let cold = container.started_at >= qreq.arrived;
        let function = container.function.clone();

        let record = CompletedRequest {
            id: qreq.id,
            function: function.clone(),
            arrived: qreq.arrived,
            dispatched,
            completed: done,
            cold,
            body,
        };
        let m = self.metrics.function(&function);
        m.latency.observe(record.latency_ms());
        if cold {
            m.cold_starts.inc();
        }
        if errored {
            m.request_errors.inc();
        }
        self.completed.push(record);
        self.events
            .schedule(done, Event::RequestDone { container: cid });
        Ok(())
    }

    /// Paper §4.1 concurrency model: "if a replica is busy and a new
    /// request arrives, the platform starts another replica to do the
    /// job".
    fn maybe_scale_up(&mut self, function: &str) -> SysResult<()> {
        let queued = self.queues.get(function).map_or(0, VecDeque::len);
        if queued == 0 {
            return Ok(());
        }
        let live = self.replica_count(function);
        let starting = self.starting.get(function).copied().unwrap_or(0);
        // Idle-or-soon-free capacity already covers the queue?
        let free_soon = self
            .containers
            .values()
            .filter(|c| {
                c.function == function && c.busy_until <= self.now && c.ready_at <= self.now
            })
            .count();
        let deficit = queued.saturating_sub(free_soon + starting);
        let headroom = self.config.max_replicas.saturating_sub(live + starting);
        for _ in 0..deficit.min(headroom) {
            if self.start_replica(function)?.is_none() {
                break; // cluster full: wait for capacity to free
            }
        }
        Ok(())
    }

    /// Provisions a new container and starts a replica in it (vanilla or
    /// prebaked, depending on the registry image). Returns `None` when no
    /// node has capacity.
    fn start_replica(&mut self, function: &str) -> SysResult<Option<u64>> {
        let image = self.registry.pull(function).ok_or(Errno::Enoent)?;
        let Some((node, slot, start_at)) = self.place_cold_start() else {
            return Ok(None);
        };
        let cid = self.next_container;
        self.next_container += 1;
        *self.starting.entry(function.to_owned()).or_default() += 1;

        // Provisioning (image pull, artifact install, cache pre-warm)
        // happens outside the measured timeline — the paper excludes
        // orchestration overheads — so it runs uncharged.
        let mut kernel = Kernel::new(self.config.seed ^ (cid << 8));
        kernel.set_span_tracing(self.config.span_tracing);
        let port = self.config.container_port;
        let spec = image.spec.clone();
        let snapshot_files = image.snapshot_files.clone();
        let prebaked = image.is_prebaked();
        let (watchdog, dep) = kernel.uncharged(move |kernel| {
            let watchdog = provision_machine(kernel)?;
            let dep = Deployment::install(kernel, spec, port)?;
            let mut warm = Vec::new();
            if prebaked {
                import_images(kernel, &dep.images_dir(), &snapshot_files)?;
                warm = dep.image_paths();
            }
            fresh_container(kernel, &warm)?;
            Ok((watchdog, dep))
        })?;

        // Container clock joins platform time — delayed if the node's
        // cold-start slots are saturated (concurrent starts contend for
        // host I/O and CPU) — then the start runs.
        kernel.advance_to(start_at);
        let started_at = self.now;
        let starter: Box<dyn Starter> = if image.is_prebaked() {
            let mut prebake = PrebakeStarter::with_mode(image.restore_mode);
            prebake.threads = image.restore_threads;
            Box::new(prebake)
        } else {
            Box::new(VanillaStarter)
        };
        let cold_span = kernel.span_begin("cold_start", watchdog);
        kernel.span_attr(cold_span, "function", function);
        kernel.span_attr(cold_span, "node", node.to_string());
        let Started {
            replica,
            startup,
            trace,
            restore,
            ..
        } = starter.start(&mut kernel, watchdog, &dep)?;
        kernel.span_end(cold_span);
        let ready_at = kernel.now();
        self.nodes[node].slots[slot] = ready_at;
        self.nodes[node].containers += 1;

        let m = self.metrics.function(function);
        m.replicas_started.inc();
        m.startup.observe(startup.as_millis_f64());
        if prebaked {
            // Restore-path observability: the paper's lazy/CoW refinements
            // trade eager copy time for faults served later, so the
            // gateway exports both the restore latency and the fault mix.
            m.restore_ms.observe(startup.as_millis_f64());
            let counters = ProbeCounters::from_events(&trace);
            m.restore_major_faults.add(counters.major_faults);
            m.restore_minor_faults.add(counters.minor_faults);
            m.restore_cow_breaks.add(counters.cow_breaks);
            m.restore_extents.add(counters.extents_restored);
            m.restore_faults_avoided.add(counters.faults_avoided);
        }
        if let Some(stats) = &restore {
            m.restore_shards.add(stats.shards as u64);
            m.restore_seek_bytes_avoided.add(stats.seek_bytes_avoided);
            m.restore_pages_compacted.add(stats.pages_compacted as u64);
        }

        self.containers.insert(
            cid,
            Container {
                function: function.to_owned(),
                kernel,
                watchdog,
                replica,
                node,
                busy_until: ready_at,
                last_active: ready_at,
                started_at,
                ready_at,
            },
        );
        self.events
            .schedule(ready_at, Event::ReplicaReady { container: cid });
        Ok(Some(cid))
    }

    /// Removes a container, returning its node capacity and recording
    /// the reason in metrics.
    fn remove_container(&mut self, cid: u64, reason: RemovalReason) {
        if let Some(mut container) = self.containers.remove(&cid) {
            self.spans.extend(container.kernel.take_spans());
            self.nodes[container.node].containers =
                self.nodes[container.node].containers.saturating_sub(1);
            let m = self.metrics.function(&container.function);
            match reason {
                RemovalReason::Idle => m.replicas_reaped.inc(),
                RemovalReason::Crashed => m.replica_failures.inc(),
            }
        }
    }

    /// Garbage-collects replicas idle past the timeout, honouring the
    /// warm-pool floor.
    fn sweep_idle(&mut self) {
        let timeout = self.config.idle_timeout;
        let now = self.now;
        let mut victims = Vec::new();
        let mut per_fn: BTreeMap<String, usize> = BTreeMap::new();
        for (&cid, c) in &self.containers {
            *per_fn.entry(c.function.clone()).or_default() += 1;
            let idle = c.busy_until <= now
                && c.ready_at <= now
                && now.saturating_duration_since(c.last_active) >= timeout;
            if idle {
                victims.push((cid, c.function.clone()));
            }
        }
        for (cid, function) in victims {
            let remaining = per_fn.get(&function).copied().unwrap_or(0);
            if remaining <= self.config.min_warm_pool {
                continue;
            }
            self.remove_container(cid, RemovalReason::Idle);
            *per_fn.get_mut(&function).unwrap() -= 1;
        }
    }

    /// Chaos hook: crashes one live replica of `function` (kills its
    /// process inside the container). Returns `true` if a victim was
    /// found. The watchdog path detects the corpse at the next dispatch
    /// and replaces it.
    pub fn inject_replica_crash(&mut self, function: &str) -> bool {
        let victim = self
            .containers
            .iter_mut()
            .find(|(_, c)| c.function == function);
        let Some((_, container)) = victim else {
            return false;
        };
        let pid = container.replica.pid();
        let _ = container.kernel.sys_exit(pid, 137);
        true
    }
}

/// Why a container was removed.
#[derive(Debug, Clone, Copy)]
enum RemovalReason {
    Idle,
    Crashed,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{FunctionBuilder, Template};
    use prebake_functions::FunctionSpec;

    fn platform_with(template: &Template, config: PlatformConfig) -> Platform {
        let registry = Registry::new();
        let image = FunctionBuilder
            .build(FunctionSpec::noop(), template)
            .unwrap();
        registry.push(image);
        let mut p = Platform::new(config, registry);
        p.deploy_function("noop").unwrap();
        p
    }

    #[test]
    fn unknown_function_rejected() {
        let mut p = Platform::new(PlatformConfig::default(), Registry::new());
        assert_eq!(p.deploy_function("ghost").unwrap_err(), Errno::Enoent);
        assert_eq!(
            p.submit(SimInstant::EPOCH, "ghost", Request::empty())
                .unwrap_err(),
            Errno::Enoent
        );
    }

    #[test]
    fn single_request_cold_starts_then_completes() {
        let mut p = platform_with(&Template::java11(), PlatformConfig::default());
        p.submit(SimInstant::EPOCH, "noop", Request::empty())
            .unwrap();
        p.run().unwrap();
        assert_eq!(p.completed().len(), 1);
        let r = &p.completed()[0];
        assert!(r.cold);
        // latency ≈ vanilla NOOP cold start + service
        assert!(
            (90.0..130.0).contains(&r.latency_ms()),
            "latency {}ms",
            r.latency_ms()
        );
        assert_eq!(p.metrics().get("noop").unwrap().cold_starts.get(), 1);
    }

    #[test]
    fn warm_replica_serves_fast() {
        let mut p = platform_with(&Template::java11(), PlatformConfig::default());
        p.submit(SimInstant::EPOCH, "noop", Request::empty())
            .unwrap();
        p.submit(
            SimInstant::EPOCH + SimDuration::from_secs(1),
            "noop",
            Request::empty(),
        )
        .unwrap();
        p.run().unwrap();
        assert_eq!(p.completed().len(), 2);
        let warm = &p.completed()[1];
        assert!(!warm.cold);
        assert!(
            warm.latency_ms() < 10.0,
            "warm latency {}",
            warm.latency_ms()
        );
        assert_eq!(
            p.metrics().get("noop").unwrap().replicas_started.get(),
            1,
            "no extra replica needed"
        );
    }

    #[test]
    fn concurrent_requests_scale_out() {
        let mut p = platform_with(&Template::java11(), PlatformConfig::default());
        for _ in 0..3 {
            p.submit(SimInstant::EPOCH, "noop", Request::empty())
                .unwrap();
        }
        p.run().unwrap();
        assert_eq!(p.completed().len(), 3);
        let started = p.metrics().get("noop").unwrap().replicas_started.get();
        assert!(
            started >= 2,
            "busy replicas trigger scale-out, got {started}"
        );
    }

    #[test]
    fn max_replicas_respected() {
        let config = PlatformConfig {
            max_replicas: 1,
            ..PlatformConfig::default()
        };
        let mut p = platform_with(&Template::java11(), config);
        for _ in 0..5 {
            p.submit(SimInstant::EPOCH, "noop", Request::empty())
                .unwrap();
        }
        p.run().unwrap();
        assert_eq!(p.completed().len(), 5, "all served eventually");
        assert_eq!(
            p.metrics().get("noop").unwrap().replicas_started.get(),
            1,
            "replica cap respected"
        );
    }

    #[test]
    fn idle_replicas_reaped_scale_to_zero() {
        let config = PlatformConfig {
            idle_timeout: SimDuration::from_secs(5),
            ..PlatformConfig::default()
        };
        let mut p = platform_with(&Template::java11(), config);
        p.submit(SimInstant::EPOCH, "noop", Request::empty())
            .unwrap();
        p.run().unwrap();
        assert_eq!(p.replica_count("noop"), 0, "scale-to-zero after idle");
        assert_eq!(p.metrics().get("noop").unwrap().replicas_reaped.get(), 1);
    }

    #[test]
    fn warm_pool_floor_survives_sweep() {
        let config = PlatformConfig {
            idle_timeout: SimDuration::from_secs(5),
            min_warm_pool: 1,
            ..PlatformConfig::default()
        };
        let mut p = platform_with(&Template::java11(), config);
        p.submit(SimInstant::EPOCH, "noop", Request::empty())
            .unwrap();
        p.run().unwrap();
        assert_eq!(p.replica_count("noop"), 1, "pool floor kept");
        // A request long after idle-time is warm thanks to the pool.
        p.submit(
            p.now() + SimDuration::from_secs(120),
            "noop",
            Request::empty(),
        )
        .unwrap();
        p.run().unwrap();
        let last = p.completed().last().unwrap();
        assert!(!last.cold, "pool keeps requests warm");
    }

    #[test]
    fn prebaked_image_cold_start_is_faster() {
        let mut vanilla = platform_with(&Template::java11(), PlatformConfig::default());
        vanilla
            .submit(SimInstant::EPOCH, "noop", Request::empty())
            .unwrap();
        vanilla.run().unwrap();
        let v = vanilla.completed()[0].latency_ms();

        let mut prebaked = platform_with(&Template::java11_criu(), PlatformConfig::default());
        prebaked
            .submit(SimInstant::EPOCH, "noop", Request::empty())
            .unwrap();
        prebaked.run().unwrap();
        let p = prebaked.completed()[0].latency_ms();

        assert!(p < v, "prebaked cold start {p}ms !< vanilla {v}ms");
    }

    #[test]
    fn prefetch_image_serves_cold_and_warm_requests() {
        // End-to-end: a prefetch-template image (snapshot + ws.img)
        // restores with working-set prefetch, serves the cold request,
        // and keeps serving warm ones.
        let mut p = platform_with(&Template::java11_criu_prefetch(), PlatformConfig::default());
        p.submit(SimInstant::EPOCH, "noop", Request::empty())
            .unwrap();
        p.submit(
            SimInstant::EPOCH + SimDuration::from_secs(1),
            "noop",
            Request::empty(),
        )
        .unwrap();
        p.run().unwrap();
        assert_eq!(p.completed().len(), 2);
        assert!(p.completed()[0].cold);
        assert!(!p.completed()[1].cold);

        // And the pure-lazy template works too.
        let mut lazy = platform_with(&Template::java11_criu_lazy(), PlatformConfig::default());
        lazy.submit(SimInstant::EPOCH, "noop", Request::empty())
            .unwrap();
        lazy.run().unwrap();
        assert_eq!(lazy.completed().len(), 1);
    }

    #[test]
    fn cold_start_concurrency_serialises_a_multi_tenant_burst() {
        // Six *distinct* functions cold-start at once: each needs its own
        // replica, so saturated cold-start slots convoy the burst.
        let run = |concurrency: usize| {
            let registry = Registry::new();
            let names: Vec<String> = (0..6).map(|i| format!("tenant-{i}")).collect();
            for name in &names {
                let spec = FunctionSpec::noop().with_name(name.clone());
                registry.push(FunctionBuilder.build(spec, &Template::java11()).unwrap());
            }
            let config = PlatformConfig {
                cold_start_concurrency: concurrency,
                ..PlatformConfig::default()
            };
            let mut p = Platform::new(config, registry);
            for name in &names {
                p.deploy_function(name).unwrap();
                p.submit(SimInstant::EPOCH, name, Request::empty()).unwrap();
            }
            p.run().unwrap();
            assert_eq!(p.completed().len(), 6);
            p.completed()
                .iter()
                .map(|r| r.latency_ms())
                .fold(0.0f64, f64::max)
        };
        let serialized = run(1);
        let parallel = run(16);
        assert!(
            serialized > parallel * 3.0,
            "one slot must convoy the burst: {serialized} vs {parallel}"
        );
    }

    #[test]
    fn bad_request_errors_without_killing_the_platform() {
        // Markdown rejects non-UTF-8 bodies; the platform must complete
        // the request as an application error and keep serving.
        let registry = Registry::new();
        registry.push(
            FunctionBuilder
                .build(FunctionSpec::markdown(), &Template::java11())
                .unwrap(),
        );
        let mut p = Platform::new(PlatformConfig::default(), registry);
        p.deploy_function("markdown-render").unwrap();
        p.submit(
            SimInstant::EPOCH,
            "markdown-render",
            Request::with_body(vec![0xFF, 0xFE, 0x80]),
        )
        .unwrap();
        p.submit(
            SimInstant::EPOCH + SimDuration::from_secs(1),
            "markdown-render",
            Request::with_body(b"# fine".to_vec()),
        )
        .unwrap();
        p.run().unwrap();
        assert_eq!(p.completed().len(), 2, "both requests completed");
        let m = p.metrics().get("markdown-render").unwrap();
        assert_eq!(m.request_errors.get(), 1);
    }

    #[test]
    fn crashed_replica_is_replaced_and_request_retried() {
        // A pool floor of 1 keeps a victim alive across run() (the idle
        // sweep always fires before quiescence, whatever the timeout).
        let config = PlatformConfig {
            min_warm_pool: 1,
            ..PlatformConfig::default()
        };
        let mut p = platform_with(&Template::java11(), config);
        // Warm one replica up.
        p.submit(SimInstant::EPOCH, "noop", Request::empty())
            .unwrap();
        p.run().unwrap();
        assert_eq!(p.completed().len(), 1);

        // Kill it, then send another request: the watchdog path must
        // detect the corpse, replace the replica and still answer.
        assert!(p.inject_replica_crash("noop"));
        assert!(!p.inject_replica_crash("ghost"));
        p.submit(
            p.now() + SimDuration::from_secs(1),
            "noop",
            Request::empty(),
        )
        .unwrap();
        p.run().unwrap();

        assert_eq!(p.completed().len(), 2, "request survived the crash");
        let m = p.metrics().get("noop").unwrap();
        assert_eq!(m.replica_failures.get(), 1);
        assert_eq!(m.replicas_started.get(), 2, "successor was started");
        let retried = p.completed().last().unwrap();
        assert!(
            retried.latency_ms() > 50.0,
            "the retried request paid a fresh cold start: {}ms",
            retried.latency_ms()
        );
    }

    #[test]
    fn cluster_capacity_defers_scale_up() {
        let config = PlatformConfig {
            nodes: 2,
            node_capacity: 1,
            idle_timeout: SimDuration::from_secs(3600),
            ..PlatformConfig::default()
        };
        let mut p = platform_with(&Template::java11(), config);
        for _ in 0..6 {
            p.submit(SimInstant::EPOCH, "noop", Request::empty())
                .unwrap();
        }
        p.run().unwrap();
        assert_eq!(p.completed().len(), 6, "all served despite tiny cluster");
        assert_eq!(
            p.metrics().get("noop").unwrap().replicas_started.get(),
            2,
            "2 nodes x capacity 1 caps the fleet"
        );
    }

    #[test]
    fn placement_spreads_across_nodes() {
        let config = PlatformConfig {
            nodes: 3,
            node_capacity: 1,
            idle_timeout: SimDuration::from_secs(3600),
            ..PlatformConfig::default()
        };
        let registry = Registry::new();
        for i in 0..3 {
            let spec = FunctionSpec::noop().with_name(format!("fn-{i}"));
            registry.push(FunctionBuilder.build(spec, &Template::java11()).unwrap());
        }
        let mut p = Platform::new(config, registry);
        for i in 0..3 {
            let name = format!("fn-{i}");
            p.deploy_function(&name).unwrap();
            p.submit(SimInstant::EPOCH, &name, Request::empty())
                .unwrap();
        }
        p.run().unwrap();
        assert_eq!(p.completed().len(), 3);
        // Each function got exactly one replica despite per-node capacity
        // 1 — they must have spread over all three nodes.
        for i in 0..3 {
            let m = p.metrics().get(&format!("fn-{i}")).unwrap();
            assert_eq!(m.replicas_started.get(), 1);
        }
    }

    #[test]
    fn span_tracing_records_cold_start_and_request_trees() {
        let config = PlatformConfig {
            span_tracing: true,
            ..PlatformConfig::default()
        };
        let mut p = platform_with(&Template::java11_criu(), config);
        p.submit(SimInstant::EPOCH, "noop", Request::empty())
            .unwrap();
        p.run().unwrap();
        let spans = p.take_spans();
        let names: Vec<&str> = spans.iter().map(|s| s.name).collect();
        for expected in ["cold_start", "startup", "criu_restore", "request"] {
            assert!(names.contains(&expected), "missing span {expected:?}");
        }
        // The startup tree hangs off the gateway's cold_start root.
        let cold = spans.iter().find(|s| s.name == "cold_start").unwrap();
        let startup = spans.iter().find(|s| s.name == "startup").unwrap();
        assert_eq!(startup.parent, Some(cold.id));
        assert!(p.take_spans().is_empty(), "take_spans drains");

        // Restore-path metrics were fed from the probe trace. Eager
        // restore copies everything up front, so no faults here.
        let m = p.metrics().get("noop").unwrap();
        assert_eq!(m.restore_ms.count(), 1);
        assert_eq!(m.restore_major_faults.get(), 0);
        assert!(
            m.restore_extents.get() > 0,
            "eager restore vectors its runs"
        );
        assert_eq!(m.restore_faults_avoided.get(), 0, "no fault-around window");

        // A lazy-restore image pays demand faults inside the startup
        // window instead, and the gateway counts them.
        let mut lazy = platform_with(&Template::java11_criu_lazy(), PlatformConfig::default());
        lazy.submit(SimInstant::EPOCH, "noop", Request::empty())
            .unwrap();
        lazy.run().unwrap();
        let lm = lazy.metrics().get("noop").unwrap();
        assert_eq!(lm.restore_ms.count(), 1);
        assert!(lm.restore_major_faults.get() > 0, "lazy restore faults");

        // Off by default: no spans accumulate.
        let mut quiet = platform_with(&Template::java11_criu(), PlatformConfig::default());
        quiet
            .submit(SimInstant::EPOCH, "noop", Request::empty())
            .unwrap();
        quiet.run().unwrap();
        assert!(quiet.take_spans().is_empty());
    }

    #[test]
    fn parallel_ordered_and_compact_templates_serve_and_export_counters() {
        // Parallel template: restore fans out and the gateway counts the
        // shards; the cold start beats the serial template's.
        let mut serial = platform_with(&Template::java11_criu_warm(1), PlatformConfig::default());
        serial
            .submit(SimInstant::EPOCH, "noop", Request::empty())
            .unwrap();
        serial.run().unwrap();
        let mut par = platform_with(
            &Template::java11_criu_parallel(4),
            PlatformConfig::default(),
        );
        par.submit(SimInstant::EPOCH, "noop", Request::empty())
            .unwrap();
        par.run().unwrap();
        assert_eq!(
            serial.metrics().get("noop").unwrap().restore_shards.get(),
            1
        );
        assert_eq!(par.metrics().get("noop").unwrap().restore_shards.get(), 4);
        let serial_ms = serial.metrics().get("noop").unwrap().restore_ms.mean();
        let par_ms = par.metrics().get("noop").unwrap().restore_ms.mean();
        assert!(
            par_ms < serial_ms,
            "sharded restore {par_ms}ms !< serial {serial_ms}ms"
        );

        // Ordered template: the fault-order layout turns the prefetch
        // read into streaming, visible in the seek counter.
        let mut dump_order =
            platform_with(&Template::java11_criu_prefetch(), PlatformConfig::default());
        dump_order
            .submit(SimInstant::EPOCH, "noop", Request::empty())
            .unwrap();
        dump_order.run().unwrap();
        let mut ordered =
            platform_with(&Template::java11_criu_ordered(), PlatformConfig::default());
        ordered
            .submit(SimInstant::EPOCH, "noop", Request::empty())
            .unwrap();
        ordered.run().unwrap();
        let avoided = |p: &Platform| {
            p.metrics()
                .get("noop")
                .unwrap()
                .restore_seek_bytes_avoided
                .get()
        };
        assert!(
            avoided(&ordered) > avoided(&dump_order),
            "ordered layout streams more: {} !> {}",
            avoided(&ordered),
            avoided(&dump_order)
        );

        // Compact template: the restore reports the fallback split and
        // the request still completes.
        let mut compact =
            platform_with(&Template::java11_criu_compact(), PlatformConfig::default());
        compact
            .submit(SimInstant::EPOCH, "noop", Request::empty())
            .unwrap();
        compact.run().unwrap();
        assert_eq!(compact.completed().len(), 1);
        let cm = compact.metrics().get("noop").unwrap();
        assert!(cm.restore_pages_compacted.get() > 0);
        let text = compact.metrics().render();
        assert!(text.contains("prebake_restore_pages_compacted_total{function=\"noop\"}"));
    }

    #[test]
    fn metrics_render_after_traffic() {
        let mut p = platform_with(&Template::java11(), PlatformConfig::default());
        p.submit(SimInstant::EPOCH, "noop", Request::empty())
            .unwrap();
        p.run().unwrap();
        let text = p.metrics().render();
        assert!(text.contains("faas_requests_total{function=\"noop\"} 1"));
        assert!(text.contains("faas_replicas_started_total{function=\"noop\"} 1"));
    }
}
