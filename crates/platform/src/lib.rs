//! # prebake-platform
//!
//! A FaaS platform substrate in the shape the paper assumes: the SPEC-RG
//! reference architecture (§2) plus the OpenFaaS integration surface
//! (§5).
//!
//! - [`registry`] — the Function Registry holding pushable container
//!   images (with snapshots baked in for CRIU templates)
//! - [`builder`] — the Function Builder and the Templates Repository
//!   (`java11`, `java11-criu`, `java11-criu-warm<N>`)
//! - [`platform`] — router, deployer, per-container machines, the
//!   busy-replica scale-out rule, idle GC (scale-to-zero), warm-pool
//!   floors, multi-node placement with per-node cold-start concurrency,
//!   and watchdog-style crash recovery (a dead replica is replaced and
//!   its request retried)
//! - [`loadgen`] — the paper's hold-first-request constant-rate
//!   generator, plus Poisson, burst, heavy-tailed (Pareto) and
//!   empirical-bootstrap patterns, and CSV trace replay via
//!   [`loadgen::Schedule`]
//! - [`metrics`] — Prometheus-style gateway metrics
//! - [`openfaas`] — `faas-cli new/build/push/deploy`, the gateway and the
//!   privileged-restore requirement
//!
//! ## Example: the paper's §5 feasibility flow
//!
//! ```
//! use prebake_platform::openfaas::{FaasGateway, ProviderConfig};
//! use prebake_platform::platform::PlatformConfig;
//! use prebake_functions::FunctionSpec;
//! use prebake_runtime::http::Request;
//!
//! let mut gw = FaasGateway::new(PlatformConfig::default(), ProviderConfig::default());
//! let project = gw.new_project(FunctionSpec::noop(), "java11-criu-warm1").unwrap();
//! let image = gw.build(&project).unwrap();   // boots + warms + checkpoints
//! gw.push(image);                            // snapshot ships in the image
//! gw.deploy("noop").unwrap();                // privileged restore allowed
//! let cold_ms = gw.invoke_and_wait("noop", Request::empty()).unwrap();
//! assert!(cold_ms < 90.0, "prebaked cold start: {cold_ms}ms");
//! ```

#![warn(missing_docs)]

pub mod builder;
pub mod loadgen;
pub mod metrics;
pub mod openfaas;
pub mod platform;
pub mod registry;

pub use builder::{FunctionBuilder, Template};
pub use loadgen::{
    write_csv_stream, Arrival, ArrivalGen, CsvArrivalStream, LoadError, LoadResult, MergedArrivals,
    PoissonProcess, Schedule,
};
pub use metrics::Metrics;
pub use openfaas::{FaasGateway, ProviderConfig};
pub use platform::{CompletedRequest, Platform, PlatformConfig};
pub use registry::{ContainerImage, Registry};
