//! The Function Registry (SPEC-RG): metadata and deployable artifacts.
//!
//! After the Function Builder turns source into a deployable container
//! image, the image is pushed here; the Function Deployer later pulls it
//! to create replicas. For prebaked functions the image additionally
//! carries the checkpoint files (paper §5.2: "CRIU triggers the process
//! checkpoint and stores the Function Snapshot data inside the Function
//! Container Image").
//!
//! Not to be confused with the *snapshot image* registry in the
//! `prebake-registry` crate: this module stores *what* to run (function
//! specs, templates, built container images, versions), while
//! `prebake_registry::SnapshotRegistry` is the content-addressed
//! artifact tier the fleet pulls snapshot bytes from, charging network
//! latency and bandwidth per pull. The deploy path reads *this*
//! registry to pick an image; the multi-node scheduler (DESIGN.md §13)
//! pays *that* one to materialise it on a worker.

use std::collections::BTreeMap;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::RwLock;

use prebake_core::SnapshotPolicy;
use prebake_criu::RestoreMode;
use prebake_functions::FunctionSpec;

/// A built, pushable container image for one function version.
#[derive(Debug, Clone)]
pub struct ContainerImage {
    /// The function it packages.
    pub spec: FunctionSpec,
    /// Template the image was built from (e.g. `java11`, `java11-criu`).
    pub template: String,
    /// Snapshot image files baked into the container image, if the
    /// template prebakes.
    pub snapshot_files: Vec<(String, Bytes)>,
    /// The snapshot policy used at build time, if any.
    pub policy: Option<SnapshotPolicy>,
    /// How replicas reinstate snapshot memory (from the build template;
    /// meaningless for plain images).
    pub restore_mode: RestoreMode,
    /// Install shards replicas restore with (from the build template;
    /// values below 2 restore serially).
    pub restore_threads: usize,
    /// Monotonic version, bumped on every push.
    pub version: u32,
}

impl ContainerImage {
    /// Returns `true` if the image carries a prebaked snapshot.
    pub fn is_prebaked(&self) -> bool {
        !self.snapshot_files.is_empty()
    }

    /// Total bytes of the baked snapshot.
    pub fn snapshot_bytes(&self) -> u64 {
        self.snapshot_files
            .iter()
            .map(|(_, d)| d.len() as u64)
            .sum()
    }
}

#[derive(Debug, Default)]
struct Inner {
    images: BTreeMap<String, ContainerImage>,
}

/// A shared, thread-safe function registry.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Arc<RwLock<Inner>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Pushes an image, bumping the stored version. Returns the version.
    pub fn push(&self, mut image: ContainerImage) -> u32 {
        let mut inner = self.inner.write();
        let version = inner
            .images
            .get(image.spec.name())
            .map_or(1, |old| old.version + 1);
        image.version = version;
        inner.images.insert(image.spec.name().to_owned(), image);
        version
    }

    /// Pulls the latest image for `name`.
    pub fn pull(&self, name: &str) -> Option<ContainerImage> {
        self.inner.read().images.get(name).cloned()
    }

    /// Registered function names.
    pub fn names(&self) -> Vec<String> {
        self.inner.read().images.keys().cloned().collect()
    }

    /// Removes a function's image.
    pub fn remove(&self, name: &str) -> bool {
        self.inner.write().images.remove(name).is_some()
    }

    /// Number of registered functions.
    pub fn len(&self) -> usize {
        self.inner.read().images.len()
    }

    /// Returns `true` if no functions are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn image(template: &str) -> ContainerImage {
        ContainerImage {
            spec: FunctionSpec::noop(),
            template: template.to_owned(),
            snapshot_files: Vec::new(),
            policy: None,
            restore_mode: RestoreMode::Eager,
            restore_threads: 1,
            version: 0,
        }
    }

    #[test]
    fn push_bumps_versions() {
        let reg = Registry::new();
        assert_eq!(reg.push(image("java11")), 1);
        assert_eq!(reg.push(image("java11")), 2);
        assert_eq!(reg.pull("noop").unwrap().version, 2);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn pull_missing_is_none() {
        let reg = Registry::new();
        assert!(reg.pull("ghost").is_none());
        assert!(reg.is_empty());
    }

    #[test]
    fn remove_and_names() {
        let reg = Registry::new();
        reg.push(image("java11"));
        assert_eq!(reg.names(), vec!["noop".to_owned()]);
        assert!(reg.remove("noop"));
        assert!(!reg.remove("noop"));
        assert!(reg.is_empty());
    }

    #[test]
    fn prebaked_predicate() {
        let mut img = image("java11-criu");
        assert!(!img.is_prebaked());
        img.snapshot_files
            .push(("pages.img".into(), Bytes::from(vec![0u8; 100])));
        assert!(img.is_prebaked());
        assert_eq!(img.snapshot_bytes(), 100);
    }

    #[test]
    fn registry_is_shared() {
        let a = Registry::new();
        let b = a.clone();
        a.push(image("java11"));
        assert_eq!(b.len(), 1, "clones share state");
    }
}
