//! The Function Builder (SPEC-RG) and template repository.
//!
//! Templates hide setup complexity (paper §5.2): ordinary language
//! templates package the archive into a runnable image; the CRIU
//! templates additionally boot the function during `build`, run an
//! optional warm-up script, and checkpoint the process into the image.

use prebake_core::env::{export_images, provision_machine, Deployment};
use prebake_core::prebaker::{bake, record_working_set, SnapshotPolicy};
use prebake_criu::RestoreMode;
use prebake_functions::FunctionSpec;
use prebake_sim::error::SysResult;
use prebake_sim::kernel::Kernel;

use crate::registry::ContainerImage;

/// A build template from the Templates Repository.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Template {
    /// Template name (`java11`, `java11-criu`, ...).
    pub name: String,
    /// Snapshot policy the build applies; `None` builds a plain image.
    pub prebake: Option<SnapshotPolicy>,
    /// How replicas of the built image reinstate snapshot memory
    /// (ignored for plain templates). Prefetch templates additionally
    /// run the working-set record pass at build time.
    pub restore: RestoreMode,
}

impl Template {
    /// The plain Java-like template.
    pub fn java11() -> Template {
        Template {
            name: "java11".to_owned(),
            prebake: None,
            restore: RestoreMode::Eager,
        }
    }

    /// The CRIU template without warm-up (snapshot right after ready).
    pub fn java11_criu() -> Template {
        Template {
            name: "java11-criu".to_owned(),
            prebake: Some(SnapshotPolicy::AfterReady),
            restore: RestoreMode::Eager,
        }
    }

    /// The CRIU template with a warm-up script of `n` requests.
    pub fn java11_criu_warm(n: u32) -> Template {
        Template {
            name: format!("java11-criu-warm{n}"),
            prebake: Some(SnapshotPolicy::AfterWarmup(n)),
            restore: RestoreMode::Eager,
        }
    }

    /// The lazy-restore CRIU template: the 1-warm-up snapshot restored
    /// with demand paging only (`prebake-lazy`, no prefetch).
    pub fn java11_criu_lazy() -> Template {
        Template {
            name: "java11-criu-lazy".to_owned(),
            prebake: Some(SnapshotPolicy::AfterWarmup(1)),
            restore: RestoreMode::Lazy,
        }
    }

    /// The prefetching CRIU template: the 1-warm-up snapshot plus a
    /// build-time working-set record pass; replicas bulk-load `ws.img`
    /// and demand-fault the rest (`prebake-lazy`, REAP-style).
    pub fn java11_criu_prefetch() -> Template {
        Template {
            name: "java11-criu-prefetch".to_owned(),
            prebake: Some(SnapshotPolicy::AfterWarmup(1)),
            restore: RestoreMode::Prefetch,
        }
    }

    /// The copy-on-write CRIU template: the 1-warm-up snapshot restored
    /// by mapping shared frames from the machine's content-addressed
    /// page store; replicas pay the page copy on first write only.
    pub fn java11_criu_cow() -> Template {
        Template {
            name: "java11-criu-cow".to_owned(),
            prebake: Some(SnapshotPolicy::AfterWarmup(1)),
            restore: RestoreMode::Cow,
        }
    }

    /// The CoW-prefetch CRIU template: the recorded working set maps
    /// copy-on-write, residual pages demand-fault (page store + `ws.img`,
    /// both produced at build time).
    pub fn java11_criu_cow_prefetch() -> Template {
        Template {
            name: "java11-criu-cow-prefetch".to_owned(),
            prebake: Some(SnapshotPolicy::AfterWarmup(1)),
            restore: RestoreMode::CowPrefetch,
        }
    }

    /// The built-in template repository.
    pub fn repository() -> Vec<Template> {
        vec![
            Template::java11(),
            Template::java11_criu(),
            Template::java11_criu_warm(1),
            Template::java11_criu_lazy(),
            Template::java11_criu_prefetch(),
            Template::java11_criu_cow(),
            Template::java11_criu_cow_prefetch(),
        ]
    }

    /// Looks a template up by name.
    pub fn lookup(name: &str) -> Option<Template> {
        if let Some(rest) = name.strip_prefix("java11-criu-warm") {
            if let Ok(n) = rest.parse::<u32>() {
                return Some(Template::java11_criu_warm(n));
            }
        }
        Template::repository().into_iter().find(|t| t.name == name)
    }
}

/// The Function Builder: turns a [`FunctionSpec`] + [`Template`] into a
/// pushable [`ContainerImage`].
#[derive(Debug, Default)]
pub struct FunctionBuilder;

impl FunctionBuilder {
    /// Builds an image. For CRIU templates this boots the function on a
    /// throwaway builder machine, optionally warms it, and checkpoints it
    /// into the image — exactly the paper's build-phase flow.
    ///
    /// # Errors
    ///
    /// Propagates build/bake errors.
    pub fn build(&self, spec: FunctionSpec, template: &Template) -> SysResult<ContainerImage> {
        let snapshot_files = match template.prebake {
            None => Vec::new(),
            Some(policy) => {
                let mut kernel = Kernel::new(0xB17D);
                let builder_proc = provision_machine(&mut kernel)?;
                let dep = Deployment::install(&mut kernel, spec.clone(), 8080)?;
                bake(&mut kernel, builder_proc, &dep, policy, &dep.images_dir())?;
                // `criu check`: validate the snapshot before it ships in
                // the image — a corrupt bake must fail the build, not a
                // production restore.
                prebake_criu::check(&mut kernel, &dep.images_dir())
                    .map_err(|_| prebake_sim::Errno::Einval)?;
                if template.restore.needs_ws() {
                    // Record pass: `ws.img` ships in the image alongside
                    // the other snapshot files.
                    record_working_set(&mut kernel, builder_proc, &dep, &dep.images_dir())?;
                }
                export_images(&mut kernel, &dep.images_dir())?
            }
        };
        Ok(ContainerImage {
            spec,
            template: template.name.clone(),
            snapshot_files,
            policy: template.prebake,
            restore_mode: template.restore,
            version: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn template_repository_and_lookup() {
        assert_eq!(Template::repository().len(), 7);
        assert_eq!(Template::lookup("java11"), Some(Template::java11()));
        assert_eq!(
            Template::lookup("java11-criu").unwrap().prebake,
            Some(SnapshotPolicy::AfterReady)
        );
        assert_eq!(
            Template::lookup("java11-criu-warm3").unwrap().prebake,
            Some(SnapshotPolicy::AfterWarmup(3))
        );
        assert_eq!(
            Template::lookup("java11-criu-lazy").unwrap().restore,
            RestoreMode::Lazy
        );
        assert_eq!(
            Template::lookup("java11-criu-prefetch").unwrap().restore,
            RestoreMode::Prefetch
        );
        assert_eq!(
            Template::lookup("java11-criu-cow").unwrap().restore,
            RestoreMode::Cow
        );
        assert_eq!(
            Template::lookup("java11-criu-cow-prefetch")
                .unwrap()
                .restore,
            RestoreMode::CowPrefetch
        );
        assert!(Template::lookup("go").is_none());
    }

    #[test]
    fn cow_builds_ship_the_page_store() {
        let cow = FunctionBuilder
            .build(FunctionSpec::noop(), &Template::java11_criu_cow())
            .unwrap();
        let names: Vec<&str> = cow.snapshot_files.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"pagestore.img"), "dedup view ships");
        assert!(
            !names.contains(&"ws.img"),
            "plain CoW skips the record pass"
        );

        // CoW-prefetch additionally records the working set.
        let cowpf = FunctionBuilder
            .build(FunctionSpec::noop(), &Template::java11_criu_cow_prefetch())
            .unwrap();
        let names: Vec<&str> = cowpf
            .snapshot_files
            .iter()
            .map(|(n, _)| n.as_str())
            .collect();
        assert!(names.contains(&"pagestore.img"));
        assert!(names.contains(&"ws.img"));
    }

    #[test]
    fn prefetch_build_ships_the_working_set() {
        let image = FunctionBuilder
            .build(FunctionSpec::noop(), &Template::java11_criu_prefetch())
            .unwrap();
        assert_eq!(image.restore_mode, RestoreMode::Prefetch);
        let names: Vec<&str> = image
            .snapshot_files
            .iter()
            .map(|(n, _)| n.as_str())
            .collect();
        assert!(names.contains(&"ws.img"), "record pass output ships");

        // Lazy (no prefetch) builds skip the record pass.
        let lazy = FunctionBuilder
            .build(FunctionSpec::noop(), &Template::java11_criu_lazy())
            .unwrap();
        assert!(!lazy.snapshot_files.iter().any(|(n, _)| n == "ws.img"));
    }

    #[test]
    fn plain_build_has_no_snapshot() {
        let image = FunctionBuilder
            .build(FunctionSpec::noop(), &Template::java11())
            .unwrap();
        assert!(!image.is_prebaked());
        assert!(image.policy.is_none());
        assert_eq!(image.template, "java11");
    }

    #[test]
    fn criu_build_bakes_snapshot_into_image() {
        let image = FunctionBuilder
            .build(FunctionSpec::noop(), &Template::java11_criu())
            .unwrap();
        assert!(image.is_prebaked());
        assert!(
            image.snapshot_bytes() > 10_000_000,
            "NOOP snapshot ≈13MB, got {}",
            image.snapshot_bytes()
        );
        assert_eq!(image.policy, Some(SnapshotPolicy::AfterReady));
        let names: Vec<&str> = image
            .snapshot_files
            .iter()
            .map(|(n, _)| n.as_str())
            .collect();
        assert!(names.contains(&"pages.img"));
        assert!(names.contains(&"core.img"));
    }

    #[test]
    fn warm_build_is_larger() {
        let cold = FunctionBuilder
            .build(
                FunctionSpec::synthetic(prebake_functions::SyntheticSize::Small),
                &Template::java11_criu(),
            )
            .unwrap();
        let warm = FunctionBuilder
            .build(
                FunctionSpec::synthetic(prebake_functions::SyntheticSize::Small),
                &Template::java11_criu_warm(1),
            )
            .unwrap();
        assert!(warm.snapshot_bytes() > cold.snapshot_bytes());
    }
}
