//! The Function Builder (SPEC-RG) and template repository.
//!
//! Templates hide setup complexity (paper §5.2): ordinary language
//! templates package the archive into a runnable image; the CRIU
//! templates additionally boot the function during `build`, run an
//! optional warm-up script, and checkpoint the process into the image.

use prebake_core::env::{export_images, provision_machine, Deployment};
use prebake_core::prebaker::{bake, SnapshotPolicy};
use prebake_functions::FunctionSpec;
use prebake_sim::error::SysResult;
use prebake_sim::kernel::Kernel;

use crate::registry::ContainerImage;

/// A build template from the Templates Repository.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Template {
    /// Template name (`java11`, `java11-criu`, ...).
    pub name: String,
    /// Snapshot policy the build applies; `None` builds a plain image.
    pub prebake: Option<SnapshotPolicy>,
}

impl Template {
    /// The plain Java-like template.
    pub fn java11() -> Template {
        Template {
            name: "java11".to_owned(),
            prebake: None,
        }
    }

    /// The CRIU template without warm-up (snapshot right after ready).
    pub fn java11_criu() -> Template {
        Template {
            name: "java11-criu".to_owned(),
            prebake: Some(SnapshotPolicy::AfterReady),
        }
    }

    /// The CRIU template with a warm-up script of `n` requests.
    pub fn java11_criu_warm(n: u32) -> Template {
        Template {
            name: format!("java11-criu-warm{n}"),
            prebake: Some(SnapshotPolicy::AfterWarmup(n)),
        }
    }

    /// The built-in template repository.
    pub fn repository() -> Vec<Template> {
        vec![
            Template::java11(),
            Template::java11_criu(),
            Template::java11_criu_warm(1),
        ]
    }

    /// Looks a template up by name.
    pub fn lookup(name: &str) -> Option<Template> {
        if let Some(rest) = name.strip_prefix("java11-criu-warm") {
            if let Ok(n) = rest.parse::<u32>() {
                return Some(Template::java11_criu_warm(n));
            }
        }
        Template::repository().into_iter().find(|t| t.name == name)
    }
}

/// The Function Builder: turns a [`FunctionSpec`] + [`Template`] into a
/// pushable [`ContainerImage`].
#[derive(Debug, Default)]
pub struct FunctionBuilder;

impl FunctionBuilder {
    /// Builds an image. For CRIU templates this boots the function on a
    /// throwaway builder machine, optionally warms it, and checkpoints it
    /// into the image — exactly the paper's build-phase flow.
    ///
    /// # Errors
    ///
    /// Propagates build/bake errors.
    pub fn build(
        &self,
        spec: FunctionSpec,
        template: &Template,
    ) -> SysResult<ContainerImage> {
        let snapshot_files = match template.prebake {
            None => Vec::new(),
            Some(policy) => {
                let mut kernel = Kernel::new(0xB17D);
                let builder_proc = provision_machine(&mut kernel)?;
                let dep = Deployment::install(&mut kernel, spec.clone(), 8080)?;
                bake(&mut kernel, builder_proc, &dep, policy, &dep.images_dir())?;
                // `criu check`: validate the snapshot before it ships in
                // the image — a corrupt bake must fail the build, not a
                // production restore.
                prebake_criu::check(&mut kernel, &dep.images_dir())
                    .map_err(|_| prebake_sim::Errno::Einval)?;
                export_images(&mut kernel, &dep.images_dir())?
            }
        };
        Ok(ContainerImage {
            spec,
            template: template.name.clone(),
            snapshot_files,
            policy: template.prebake,
            version: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn template_repository_and_lookup() {
        assert_eq!(Template::repository().len(), 3);
        assert_eq!(Template::lookup("java11"), Some(Template::java11()));
        assert_eq!(
            Template::lookup("java11-criu").unwrap().prebake,
            Some(SnapshotPolicy::AfterReady)
        );
        assert_eq!(
            Template::lookup("java11-criu-warm3").unwrap().prebake,
            Some(SnapshotPolicy::AfterWarmup(3))
        );
        assert!(Template::lookup("go").is_none());
    }

    #[test]
    fn plain_build_has_no_snapshot() {
        let image = FunctionBuilder
            .build(FunctionSpec::noop(), &Template::java11())
            .unwrap();
        assert!(!image.is_prebaked());
        assert!(image.policy.is_none());
        assert_eq!(image.template, "java11");
    }

    #[test]
    fn criu_build_bakes_snapshot_into_image() {
        let image = FunctionBuilder
            .build(FunctionSpec::noop(), &Template::java11_criu())
            .unwrap();
        assert!(image.is_prebaked());
        assert!(
            image.snapshot_bytes() > 10_000_000,
            "NOOP snapshot ≈13MB, got {}",
            image.snapshot_bytes()
        );
        assert_eq!(image.policy, Some(SnapshotPolicy::AfterReady));
        let names: Vec<&str> = image
            .snapshot_files
            .iter()
            .map(|(n, _)| n.as_str())
            .collect();
        assert!(names.contains(&"pages.img"));
        assert!(names.contains(&"core.img"));
    }

    #[test]
    fn warm_build_is_larger() {
        let cold = FunctionBuilder
            .build(
                FunctionSpec::synthetic(prebake_functions::SyntheticSize::Small),
                &Template::java11_criu(),
            )
            .unwrap();
        let warm = FunctionBuilder
            .build(
                FunctionSpec::synthetic(prebake_functions::SyntheticSize::Small),
                &Template::java11_criu_warm(1),
            )
            .unwrap();
        assert!(warm.snapshot_bytes() > cold.snapshot_bytes());
    }
}
