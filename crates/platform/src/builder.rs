//! The Function Builder (SPEC-RG) and template repository.
//!
//! Templates hide setup complexity (paper §5.2): ordinary language
//! templates package the archive into a runnable image; the CRIU
//! templates additionally boot the function during `build`, run an
//! optional warm-up script, and checkpoint the process into the image.

use prebake_core::env::{export_images, provision_machine, Deployment};
use prebake_core::prebaker::{bake, record_working_set, SnapshotPolicy};
use prebake_criu::{repack, RepackOptions, RestoreMode};
use prebake_functions::FunctionSpec;
use prebake_sim::error::SysResult;
use prebake_sim::kernel::Kernel;

use crate::registry::ContainerImage;

/// A build template from the Templates Repository.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Template {
    /// Template name (`java11`, `java11-criu`, ...).
    pub name: String,
    /// Snapshot policy the build applies; `None` builds a plain image.
    pub prebake: Option<SnapshotPolicy>,
    /// How replicas of the built image reinstate snapshot memory
    /// (ignored for plain templates). Prefetch templates additionally
    /// run the working-set record pass at build time.
    pub restore: RestoreMode,
    /// Install shards replicas restore with; values below 2 take the
    /// serial path bit-for-bit.
    pub restore_threads: usize,
    /// Rewrite the baked images into recorded fault order at build time
    /// (runs a record pass first when the restore mode has none).
    pub fault_order: bool,
    /// Additionally compact never-faulted pages into the fallback layer
    /// at build time (implies the fault-order rewrite).
    pub compact: bool,
}

impl Template {
    /// A template with the default restore knobs (serial install, dump
    /// order, no compaction).
    fn base(name: String, prebake: Option<SnapshotPolicy>, restore: RestoreMode) -> Template {
        Template {
            name,
            prebake,
            restore,
            restore_threads: 1,
            fault_order: false,
            compact: false,
        }
    }

    /// The plain Java-like template.
    pub fn java11() -> Template {
        Template::base("java11".to_owned(), None, RestoreMode::Eager)
    }

    /// The CRIU template without warm-up (snapshot right after ready).
    pub fn java11_criu() -> Template {
        Template::base(
            "java11-criu".to_owned(),
            Some(SnapshotPolicy::AfterReady),
            RestoreMode::Eager,
        )
    }

    /// The CRIU template with a warm-up script of `n` requests.
    pub fn java11_criu_warm(n: u32) -> Template {
        Template::base(
            format!("java11-criu-warm{n}"),
            Some(SnapshotPolicy::AfterWarmup(n)),
            RestoreMode::Eager,
        )
    }

    /// The lazy-restore CRIU template: the 1-warm-up snapshot restored
    /// with demand paging only (`prebake-lazy`, no prefetch).
    pub fn java11_criu_lazy() -> Template {
        Template::base(
            "java11-criu-lazy".to_owned(),
            Some(SnapshotPolicy::AfterWarmup(1)),
            RestoreMode::Lazy,
        )
    }

    /// The prefetching CRIU template: the 1-warm-up snapshot plus a
    /// build-time working-set record pass; replicas bulk-load `ws.img`
    /// and demand-fault the rest (`prebake-lazy`, REAP-style).
    pub fn java11_criu_prefetch() -> Template {
        Template::base(
            "java11-criu-prefetch".to_owned(),
            Some(SnapshotPolicy::AfterWarmup(1)),
            RestoreMode::Prefetch,
        )
    }

    /// The copy-on-write CRIU template: the 1-warm-up snapshot restored
    /// by mapping shared frames from the machine's content-addressed
    /// page store; replicas pay the page copy on first write only.
    pub fn java11_criu_cow() -> Template {
        Template::base(
            "java11-criu-cow".to_owned(),
            Some(SnapshotPolicy::AfterWarmup(1)),
            RestoreMode::Cow,
        )
    }

    /// The CoW-prefetch CRIU template: the recorded working set maps
    /// copy-on-write, residual pages demand-fault (page store + `ws.img`,
    /// both produced at build time).
    pub fn java11_criu_cow_prefetch() -> Template {
        Template::base(
            "java11-criu-cow-prefetch".to_owned(),
            Some(SnapshotPolicy::AfterWarmup(1)),
            RestoreMode::CowPrefetch,
        )
    }

    /// The parallel-restore CRIU template: the 1-warm-up snapshot
    /// restored with `threads` install shards working disjoint extent
    /// ranges (DESIGN.md §14).
    pub fn java11_criu_parallel(threads: usize) -> Template {
        let mut t = Template::base(
            format!("java11-criu-par{threads}"),
            Some(SnapshotPolicy::AfterWarmup(1)),
            RestoreMode::Eager,
        );
        t.restore_threads = threads;
        t
    }

    /// The fault-order CRIU template: prefetch restore over images the
    /// build repacked into recorded fault order, so the working-set read
    /// streams sequentially instead of seeking.
    pub fn java11_criu_ordered() -> Template {
        let mut t = Template::base(
            "java11-criu-ordered".to_owned(),
            Some(SnapshotPolicy::AfterWarmup(1)),
            RestoreMode::Prefetch,
        );
        t.fault_order = true;
        t
    }

    /// The compacted CRIU template: eager restore of a hot image holding
    /// only the pages the recorded first invocation touched; the rest sit
    /// in the fallback layer behind the fault handler.
    pub fn java11_criu_compact() -> Template {
        let mut t = Template::base(
            "java11-criu-compact".to_owned(),
            Some(SnapshotPolicy::AfterWarmup(1)),
            RestoreMode::Eager,
        );
        t.fault_order = true;
        t.compact = true;
        t
    }

    /// The built-in template repository.
    pub fn repository() -> Vec<Template> {
        vec![
            Template::java11(),
            Template::java11_criu(),
            Template::java11_criu_warm(1),
            Template::java11_criu_lazy(),
            Template::java11_criu_prefetch(),
            Template::java11_criu_cow(),
            Template::java11_criu_cow_prefetch(),
            Template::java11_criu_parallel(4),
            Template::java11_criu_ordered(),
            Template::java11_criu_compact(),
        ]
    }

    /// Looks a template up by name.
    pub fn lookup(name: &str) -> Option<Template> {
        if let Some(rest) = name.strip_prefix("java11-criu-warm") {
            if let Ok(n) = rest.parse::<u32>() {
                return Some(Template::java11_criu_warm(n));
            }
        }
        if let Some(rest) = name.strip_prefix("java11-criu-par") {
            if let Ok(n) = rest.parse::<usize>() {
                return Some(Template::java11_criu_parallel(n));
            }
        }
        Template::repository().into_iter().find(|t| t.name == name)
    }
}

/// The Function Builder: turns a [`FunctionSpec`] + [`Template`] into a
/// pushable [`ContainerImage`].
#[derive(Debug, Default)]
pub struct FunctionBuilder;

impl FunctionBuilder {
    /// Builds an image. For CRIU templates this boots the function on a
    /// throwaway builder machine, optionally warms it, and checkpoints it
    /// into the image — exactly the paper's build-phase flow.
    ///
    /// # Errors
    ///
    /// Propagates build/bake errors.
    pub fn build(&self, spec: FunctionSpec, template: &Template) -> SysResult<ContainerImage> {
        let snapshot_files = match template.prebake {
            None => Vec::new(),
            Some(policy) => {
                let mut kernel = Kernel::new(0xB17D);
                let builder_proc = provision_machine(&mut kernel)?;
                let dep = Deployment::install(&mut kernel, spec.clone(), 8080)?;
                bake(&mut kernel, builder_proc, &dep, policy, &dep.images_dir())?;
                // `criu check`: validate the snapshot before it ships in
                // the image — a corrupt bake must fail the build, not a
                // production restore.
                prebake_criu::check(&mut kernel, &dep.images_dir())
                    .map_err(|_| prebake_sim::Errno::Einval)?;
                let repacks = template.fault_order || template.compact;
                if template.restore.needs_ws() || repacks {
                    // Record pass: `ws.img` ships in the image alongside
                    // the other snapshot files (and drives the repack).
                    record_working_set(&mut kernel, builder_proc, &dep, &dep.images_dir())?;
                }
                if repacks {
                    let mut opts = RepackOptions::new(dep.images_dir());
                    opts.compact = template.compact;
                    repack(&mut kernel, &opts)?;
                }
                export_images(&mut kernel, &dep.images_dir())?
            }
        };
        Ok(ContainerImage {
            spec,
            template: template.name.clone(),
            snapshot_files,
            policy: template.prebake,
            restore_mode: template.restore,
            restore_threads: template.restore_threads,
            version: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn template_repository_and_lookup() {
        assert_eq!(Template::repository().len(), 10);
        assert_eq!(
            Template::lookup("java11-criu-par8")
                .unwrap()
                .restore_threads,
            8
        );
        assert_eq!(
            Template::lookup("java11-criu-ordered"),
            Some(Template::java11_criu_ordered())
        );
        assert!(Template::lookup("java11-criu-compact").unwrap().compact);
        assert_eq!(Template::lookup("java11"), Some(Template::java11()));
        assert_eq!(
            Template::lookup("java11-criu").unwrap().prebake,
            Some(SnapshotPolicy::AfterReady)
        );
        assert_eq!(
            Template::lookup("java11-criu-warm3").unwrap().prebake,
            Some(SnapshotPolicy::AfterWarmup(3))
        );
        assert_eq!(
            Template::lookup("java11-criu-lazy").unwrap().restore,
            RestoreMode::Lazy
        );
        assert_eq!(
            Template::lookup("java11-criu-prefetch").unwrap().restore,
            RestoreMode::Prefetch
        );
        assert_eq!(
            Template::lookup("java11-criu-cow").unwrap().restore,
            RestoreMode::Cow
        );
        assert_eq!(
            Template::lookup("java11-criu-cow-prefetch")
                .unwrap()
                .restore,
            RestoreMode::CowPrefetch
        );
        assert!(Template::lookup("go").is_none());
    }

    #[test]
    fn cow_builds_ship_the_page_store() {
        let cow = FunctionBuilder
            .build(FunctionSpec::noop(), &Template::java11_criu_cow())
            .unwrap();
        let names: Vec<&str> = cow.snapshot_files.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"pagestore.img"), "dedup view ships");
        assert!(
            !names.contains(&"ws.img"),
            "plain CoW skips the record pass"
        );

        // CoW-prefetch additionally records the working set.
        let cowpf = FunctionBuilder
            .build(FunctionSpec::noop(), &Template::java11_criu_cow_prefetch())
            .unwrap();
        let names: Vec<&str> = cowpf
            .snapshot_files
            .iter()
            .map(|(n, _)| n.as_str())
            .collect();
        assert!(names.contains(&"pagestore.img"));
        assert!(names.contains(&"ws.img"));
    }

    #[test]
    fn prefetch_build_ships_the_working_set() {
        let image = FunctionBuilder
            .build(FunctionSpec::noop(), &Template::java11_criu_prefetch())
            .unwrap();
        assert_eq!(image.restore_mode, RestoreMode::Prefetch);
        let names: Vec<&str> = image
            .snapshot_files
            .iter()
            .map(|(n, _)| n.as_str())
            .collect();
        assert!(names.contains(&"ws.img"), "record pass output ships");

        // Lazy (no prefetch) builds skip the record pass.
        let lazy = FunctionBuilder
            .build(FunctionSpec::noop(), &Template::java11_criu_lazy())
            .unwrap();
        assert!(!lazy.snapshot_files.iter().any(|(n, _)| n == "ws.img"));
    }

    #[test]
    fn ordered_and_compact_builds_repack_at_build_time() {
        // The ordered template records a ws and rewrites the layout; all
        // pages stay in the hot image.
        let ordered = FunctionBuilder
            .build(FunctionSpec::noop(), &Template::java11_criu_ordered())
            .unwrap();
        let names: Vec<&str> = ordered
            .snapshot_files
            .iter()
            .map(|(n, _)| n.as_str())
            .collect();
        assert!(names.contains(&"ws.img"), "repack needs the record pass");
        assert!(!names.contains(&"fallback-pages.img"));

        // The compact template additionally splits off the fallback
        // layer, and its hot pages.img shrinks against the plain warm
        // build.
        let warm = FunctionBuilder
            .build(FunctionSpec::noop(), &Template::java11_criu_warm(1))
            .unwrap();
        let compact = FunctionBuilder
            .build(FunctionSpec::noop(), &Template::java11_criu_compact())
            .unwrap();
        let pages_len = |img: &ContainerImage| {
            img.snapshot_files
                .iter()
                .find(|(n, _)| n == "pages.img")
                .map(|(_, d)| d.len())
                .unwrap()
        };
        assert!(compact
            .snapshot_files
            .iter()
            .any(|(n, _)| n == "fallback-pages.img"));
        assert!(
            pages_len(&compact) < pages_len(&warm),
            "compaction shrinks the hot image: {} !< {}",
            pages_len(&compact),
            pages_len(&warm)
        );

        // The parallel template changes no image bytes, only the restore
        // fan-out the replicas run with.
        let par = FunctionBuilder
            .build(FunctionSpec::noop(), &Template::java11_criu_parallel(4))
            .unwrap();
        assert_eq!(par.restore_threads, 4);
        assert_eq!(pages_len(&par), pages_len(&warm));
    }

    #[test]
    fn plain_build_has_no_snapshot() {
        let image = FunctionBuilder
            .build(FunctionSpec::noop(), &Template::java11())
            .unwrap();
        assert!(!image.is_prebaked());
        assert!(image.policy.is_none());
        assert_eq!(image.template, "java11");
    }

    #[test]
    fn criu_build_bakes_snapshot_into_image() {
        let image = FunctionBuilder
            .build(FunctionSpec::noop(), &Template::java11_criu())
            .unwrap();
        assert!(image.is_prebaked());
        assert!(
            image.snapshot_bytes() > 10_000_000,
            "NOOP snapshot ≈13MB, got {}",
            image.snapshot_bytes()
        );
        assert_eq!(image.policy, Some(SnapshotPolicy::AfterReady));
        let names: Vec<&str> = image
            .snapshot_files
            .iter()
            .map(|(n, _)| n.as_str())
            .collect();
        assert!(names.contains(&"pages.img"));
        assert!(names.contains(&"core.img"));
    }

    #[test]
    fn warm_build_is_larger() {
        let cold = FunctionBuilder
            .build(
                FunctionSpec::synthetic(prebake_functions::SyntheticSize::Small),
                &Template::java11_criu(),
            )
            .unwrap();
        let warm = FunctionBuilder
            .build(
                FunctionSpec::synthetic(prebake_functions::SyntheticSize::Small),
                &Template::java11_criu_warm(1),
            )
            .unwrap();
        assert!(warm.snapshot_bytes() > cold.snapshot_bytes());
    }
}
