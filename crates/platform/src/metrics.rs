//! Prometheus-style platform metrics.
//!
//! OpenFaaS scales on alerts fired from gateway metrics; this module
//! provides the counters/gauges/histograms the autoscaler and the
//! experiment reports consume, plus a text rendering in the Prometheus
//! exposition format.

use std::collections::BTreeMap;

/// A monotonically increasing counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Increments by one.
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Increments by `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0
    }
}

/// A simple latency histogram with fixed millisecond buckets.
#[derive(Debug, Clone)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    sum: f64,
    total: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new(&[
            1.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0,
        ])
    }
}

impl Histogram {
    /// Creates a histogram with the given ascending bucket upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly ascending.
    pub fn new(bounds: &[f64]) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs buckets");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bounds must be strictly ascending"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            total: 0,
        }
    }

    /// Records one observation (milliseconds).
    pub fn observe(&mut self, value_ms: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value_ms <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum += value_ms;
        self.total += 1;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean of observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// Approximate quantile from bucket boundaries (upper bound of the
    /// bucket containing the quantile).
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile in [0,1]");
        if self.total == 0 {
            return 0.0;
        }
        let target = (q * self.total as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    f64::INFINITY
                };
            }
        }
        f64::INFINITY
    }
}

/// Per-function metrics.
#[derive(Debug, Clone, Default)]
pub struct FunctionMetrics {
    /// Requests routed to the function.
    pub requests: Counter,
    /// Requests that had to wait for a cold start.
    pub cold_starts: Counter,
    /// Replicas started.
    pub replicas_started: Counter,
    /// Replicas garbage-collected after idling.
    pub replicas_reaped: Counter,
    /// Replicas that crashed and were replaced by the watchdog.
    pub replica_failures: Counter,
    /// Requests that completed with an application error (HTTP 5xx).
    pub request_errors: Counter,
    /// End-to-end latency (queueing + service), ms.
    pub latency: Histogram,
    /// Cold-start start-up time, ms.
    pub startup: Histogram,
}

/// The platform metric registry.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    functions: BTreeMap<String, FunctionMetrics>,
}

impl Metrics {
    /// Creates an empty registry.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Metrics for `name`, created on first use.
    pub fn function(&mut self, name: &str) -> &mut FunctionMetrics {
        self.functions.entry(name.to_owned()).or_default()
    }

    /// Read-only view, if the function has metrics.
    pub fn get(&self, name: &str) -> Option<&FunctionMetrics> {
        self.functions.get(name)
    }

    /// Function names with metrics.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.functions.keys().map(String::as_str)
    }

    /// Renders the registry in the Prometheus text exposition format.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, m) in &self.functions {
            out.push_str(&format!(
                "faas_requests_total{{function=\"{name}\"}} {}\n",
                m.requests.get()
            ));
            out.push_str(&format!(
                "faas_cold_starts_total{{function=\"{name}\"}} {}\n",
                m.cold_starts.get()
            ));
            out.push_str(&format!(
                "faas_replicas_started_total{{function=\"{name}\"}} {}\n",
                m.replicas_started.get()
            ));
            out.push_str(&format!(
                "faas_replicas_reaped_total{{function=\"{name}\"}} {}\n",
                m.replicas_reaped.get()
            ));
            out.push_str(&format!(
                "faas_replica_failures_total{{function=\"{name}\"}} {}\n",
                m.replica_failures.get()
            ));
            out.push_str(&format!(
                "faas_latency_ms_mean{{function=\"{name}\"}} {:.3}\n",
                m.latency.mean()
            ));
            out.push_str(&format!(
                "faas_latency_ms_count{{function=\"{name}\"}} {}\n",
                m.latency.count()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_behaviour() {
        let mut c = Counter::default();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn histogram_mean_and_count() {
        let mut h = Histogram::default();
        for v in [10.0, 20.0, 30.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 3);
        assert!((h.mean() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_quantiles_bracket() {
        let mut h = Histogram::new(&[10.0, 100.0, 1000.0]);
        for _ in 0..90 {
            h.observe(5.0);
        }
        for _ in 0..10 {
            h.observe(500.0);
        }
        assert_eq!(h.quantile(0.5), 10.0);
        assert_eq!(h.quantile(0.99), 1000.0);
        assert_eq!(h.quantile(0.0), 10.0);
    }

    #[test]
    fn histogram_overflow_bucket() {
        let mut h = Histogram::new(&[1.0]);
        h.observe(99.0);
        assert_eq!(h.quantile(1.0), f64::INFINITY);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = Histogram::default();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.9), 0.0);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unsorted_bounds_panic() {
        Histogram::new(&[5.0, 1.0]);
    }

    #[test]
    fn render_prometheus_format() {
        let mut m = Metrics::new();
        m.function("noop").requests.add(3);
        m.function("noop").latency.observe(12.0);
        let text = m.render();
        assert!(text.contains("faas_requests_total{function=\"noop\"} 3"));
        assert!(text.contains("faas_latency_ms_count{function=\"noop\"} 1"));
        assert_eq!(m.names().collect::<Vec<_>>(), vec!["noop"]);
        assert!(m.get("noop").is_some());
        assert!(m.get("ghost").is_none());
    }
}
