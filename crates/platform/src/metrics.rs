//! Prometheus-style platform metrics.
//!
//! OpenFaaS scales on alerts fired from gateway metrics; this module
//! provides the counters/gauges/histograms the autoscaler and the
//! experiment reports consume, plus a text rendering in the Prometheus
//! exposition format.

use std::collections::BTreeMap;

/// A monotonically increasing counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Increments by one.
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Increments by `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0
    }
}

/// A simple latency histogram with fixed millisecond buckets.
#[derive(Debug, Clone)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    sum: f64,
    total: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new(&[
            1.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0,
        ])
    }
}

impl Histogram {
    /// Creates a histogram with the given ascending bucket upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly ascending.
    pub fn new(bounds: &[f64]) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs buckets");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bounds must be strictly ascending"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            total: 0,
        }
    }

    /// Records one observation (milliseconds).
    pub fn observe(&mut self, value_ms: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value_ms <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum += value_ms;
        self.total += 1;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// The configured bucket upper bounds (exclusive of `+Inf`).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket (non-cumulative) counts; the last entry is the `+Inf`
    /// overflow bucket, so the slice is one longer than
    /// [`Histogram::bounds`].
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Folds another histogram's observations into this one, so per-trial
    /// histograms aggregate into run totals without re-observing raw
    /// samples.
    ///
    /// # Panics
    ///
    /// Panics if the two histograms were built with different bucket
    /// bounds — merging those would silently misbucket observations.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "cannot merge histograms with different bucket bounds"
        );
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.sum += other.sum;
        self.total += other.total;
    }

    /// Mean of observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// Approximate quantile from bucket boundaries (upper bound of the
    /// bucket containing the quantile).
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile in [0,1]");
        if self.total == 0 {
            return 0.0;
        }
        let target = (q * self.total as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    f64::INFINITY
                };
            }
        }
        f64::INFINITY
    }
}

/// Per-function metrics.
#[derive(Debug, Clone, Default)]
pub struct FunctionMetrics {
    /// Requests routed to the function.
    pub requests: Counter,
    /// Requests that had to wait for a cold start.
    pub cold_starts: Counter,
    /// Replicas started.
    pub replicas_started: Counter,
    /// Replicas garbage-collected after idling.
    pub replicas_reaped: Counter,
    /// Replicas that crashed and were replaced by the watchdog.
    pub replica_failures: Counter,
    /// Requests that completed with an application error (HTTP 5xx).
    pub request_errors: Counter,
    /// End-to-end latency (queueing + service), ms.
    pub latency: Histogram,
    /// Cold-start start-up time, ms.
    pub startup: Histogram,
    /// Start-up time of prebake (restore-path) cold starts only, ms —
    /// the `prebake_restore_ms` series.
    pub restore_ms: Histogram,
    /// Major page faults observed during restore-path start windows.
    pub restore_major_faults: Counter,
    /// Minor page faults observed during restore-path start windows.
    pub restore_minor_faults: Counter,
    /// Copy-on-write breaks observed during restore-path start windows.
    pub restore_cow_breaks: Counter,
    /// Extent runs vectored in during restore-path start windows
    /// (scatter-gather copies, CoW run maps, prefetch runs).
    pub restore_extents: Counter,
    /// Page faults avoided by fault-around batching during restore-path
    /// start windows (neighbour pages serviced without their own trap).
    pub restore_faults_avoided: Counter,
    /// Install shards restore-path cold starts ran with (1 per serial
    /// restore; parallel restores add their fan-out).
    pub restore_shards: Counter,
    /// Payload bytes the prefetch read streamed instead of seeking for,
    /// summed over restore-path cold starts (non-zero once images are
    /// laid out in fault order).
    pub restore_seek_bytes_avoided: Counter,
    /// Stored pages restores found compacted into the fallback layer,
    /// summed over restore-path cold starts.
    pub restore_pages_compacted: Counter,
}

/// The platform metric registry.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    functions: BTreeMap<String, FunctionMetrics>,
}

impl Metrics {
    /// Creates an empty registry.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Metrics for `name`, created on first use.
    pub fn function(&mut self, name: &str) -> &mut FunctionMetrics {
        self.functions.entry(name.to_owned()).or_default()
    }

    /// Read-only view, if the function has metrics.
    pub fn get(&self, name: &str) -> Option<&FunctionMetrics> {
        self.functions.get(name)
    }

    /// Function names with metrics.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.functions.keys().map(String::as_str)
    }

    /// Renders the registry in the Prometheus text exposition format:
    /// counters as single samples, histograms as full expositions —
    /// cumulative `_bucket{le="..."}` rows up to `le="+Inf"`, then
    /// `_sum` and `_count`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, m) in &self.functions {
            out.push_str(&format!(
                "faas_requests_total{{function=\"{name}\"}} {}\n",
                m.requests.get()
            ));
            out.push_str(&format!(
                "faas_cold_starts_total{{function=\"{name}\"}} {}\n",
                m.cold_starts.get()
            ));
            out.push_str(&format!(
                "faas_replicas_started_total{{function=\"{name}\"}} {}\n",
                m.replicas_started.get()
            ));
            out.push_str(&format!(
                "faas_replicas_reaped_total{{function=\"{name}\"}} {}\n",
                m.replicas_reaped.get()
            ));
            out.push_str(&format!(
                "faas_replica_failures_total{{function=\"{name}\"}} {}\n",
                m.replica_failures.get()
            ));
            out.push_str(&format!(
                "faas_request_errors_total{{function=\"{name}\"}} {}\n",
                m.request_errors.get()
            ));
            out.push_str(&format!(
                "faas_latency_ms_mean{{function=\"{name}\"}} {:.3}\n",
                m.latency.mean()
            ));
            let labels = format!("function=\"{name}\"");
            render_histogram(&mut out, "faas_latency_ms", &labels, &m.latency);
            render_histogram(&mut out, "faas_startup_ms", &labels, &m.startup);
            render_histogram(&mut out, "prebake_restore_ms", &labels, &m.restore_ms);
            out.push_str(&format!(
                "prebake_restore_major_faults_total{{function=\"{name}\"}} {}\n",
                m.restore_major_faults.get()
            ));
            out.push_str(&format!(
                "prebake_restore_minor_faults_total{{function=\"{name}\"}} {}\n",
                m.restore_minor_faults.get()
            ));
            out.push_str(&format!(
                "prebake_restore_cow_breaks_total{{function=\"{name}\"}} {}\n",
                m.restore_cow_breaks.get()
            ));
            out.push_str(&format!(
                "prebake_restore_extents_total{{function=\"{name}\"}} {}\n",
                m.restore_extents.get()
            ));
            out.push_str(&format!(
                "prebake_restore_faults_avoided_total{{function=\"{name}\"}} {}\n",
                m.restore_faults_avoided.get()
            ));
            out.push_str(&format!(
                "prebake_restore_shards_total{{function=\"{name}\"}} {}\n",
                m.restore_shards.get()
            ));
            out.push_str(&format!(
                "prebake_restore_seek_bytes_avoided_total{{function=\"{name}\"}} {}\n",
                m.restore_seek_bytes_avoided.get()
            ));
            out.push_str(&format!(
                "prebake_restore_pages_compacted_total{{function=\"{name}\"}} {}\n",
                m.restore_pages_compacted.get()
            ));
        }
        out
    }
}

/// Formats a bucket bound the way Prometheus clients conventionally do:
/// integral bounds without a trailing `.0` (`le="100"`), fractional ones
/// as-is (`le="0.5"`).
pub fn fmt_le(bound: f64) -> String {
    if bound == bound.trunc() {
        format!("{}", bound as i64)
    } else {
        format!("{bound}")
    }
}

/// Appends one histogram's full exposition: cumulative buckets including
/// `+Inf`, then `_sum` and `_count` (which equals the `+Inf` bucket).
///
/// `labels` is the pre-rendered label pairs without braces (e.g.
/// `function="echo"` or `tenant="a",node="0"`); pass `""` for an
/// unlabelled series. This is the one histogram encoder shared by the
/// platform gateway, the fleet scheduler, and the obs recorder so every
/// exposition in the workspace agrees on bucket/`le` formatting.
pub fn render_histogram(out: &mut String, metric: &str, labels: &str, h: &Histogram) {
    let sep = if labels.is_empty() { "" } else { "," };
    let brace = |inner: &str| -> String {
        if labels.is_empty() && inner.is_empty() {
            String::new()
        } else if inner.is_empty() {
            format!("{{{labels}}}")
        } else {
            format!("{{{labels}{sep}{inner}}}")
        }
    };
    let mut cumulative = 0u64;
    for (bound, count) in h.bounds().iter().zip(h.bucket_counts()) {
        cumulative += count;
        out.push_str(&format!(
            "{metric}_bucket{} {cumulative}\n",
            brace(&format!("le=\"{}\"", fmt_le(*bound)))
        ));
    }
    out.push_str(&format!(
        "{metric}_bucket{} {}\n",
        brace("le=\"+Inf\""),
        h.count()
    ));
    out.push_str(&format!("{metric}_sum{} {:.3}\n", brace(""), h.sum()));
    out.push_str(&format!("{metric}_count{} {}\n", brace(""), h.count()));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_behaviour() {
        let mut c = Counter::default();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn histogram_mean_and_count() {
        let mut h = Histogram::default();
        for v in [10.0, 20.0, 30.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 3);
        assert!((h.mean() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_quantiles_bracket() {
        let mut h = Histogram::new(&[10.0, 100.0, 1000.0]);
        for _ in 0..90 {
            h.observe(5.0);
        }
        for _ in 0..10 {
            h.observe(500.0);
        }
        assert_eq!(h.quantile(0.5), 10.0);
        assert_eq!(h.quantile(0.99), 1000.0);
        assert_eq!(h.quantile(0.0), 10.0);
    }

    #[test]
    fn histogram_overflow_bucket() {
        let mut h = Histogram::new(&[1.0]);
        h.observe(99.0);
        assert_eq!(h.quantile(1.0), f64::INFINITY);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = Histogram::default();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.9), 0.0);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unsorted_bounds_panic() {
        Histogram::new(&[5.0, 1.0]);
    }

    #[test]
    fn merge_folds_counts_sum_and_total() {
        let mut a = Histogram::new(&[10.0, 100.0]);
        let mut b = Histogram::new(&[10.0, 100.0]);
        a.observe(5.0);
        b.observe(50.0);
        b.observe(500.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.bucket_counts(), &[1, 1, 1]);
        assert!((a.sum() - 555.0).abs() < 1e-9);
        // Merging an empty histogram is a no-op.
        a.merge(&Histogram::new(&[10.0, 100.0]));
        assert_eq!(a.count(), 3);
    }

    #[test]
    #[should_panic(expected = "different bucket bounds")]
    fn merge_rejects_mismatched_bounds() {
        let mut a = Histogram::new(&[1.0]);
        let b = Histogram::new(&[2.0]);
        a.merge(&b);
    }

    /// Parses `metric_bucket{...,le="..."} value` rows of one series out
    /// of an exposition.
    fn buckets_of<'t>(text: &'t str, metric: &str, function: &str) -> Vec<(&'t str, u64)> {
        let prefix = format!("{metric}_bucket{{function=\"{function}\",le=\"");
        text.lines()
            .filter_map(|line| {
                let rest = line.strip_prefix(&prefix)?;
                let (le, value) = rest.split_once("\"} ")?;
                Some((le, value.parse().ok()?))
            })
            .collect()
    }

    fn series_value(text: &str, series: &str) -> Option<f64> {
        text.lines()
            .find_map(|l| l.strip_prefix(series).and_then(|r| r.trim().parse().ok()))
    }

    #[test]
    fn render_is_valid_prometheus_histogram_exposition() {
        let mut m = Metrics::new();
        {
            let f = m.function("fn");
            for v in [0.5, 7.0, 30.0, 30.0, 5000.0] {
                f.latency.observe(v);
            }
            f.startup.observe(42.0);
            f.restore_ms.observe(13.0);
            f.request_errors.inc();
        }
        let text = m.render();

        for (metric, expected_count) in [
            ("faas_latency_ms", 5),
            ("faas_startup_ms", 1),
            ("prebake_restore_ms", 1),
        ] {
            let buckets = buckets_of(&text, metric, "fn");
            assert!(!buckets.is_empty(), "{metric} has bucket rows");
            assert_eq!(buckets.last().unwrap().0, "+Inf");
            // Bucket counts are cumulative (non-decreasing).
            assert!(
                buckets.windows(2).all(|w| w[0].1 <= w[1].1),
                "{metric} buckets cumulative: {buckets:?}"
            );
            // `le` bounds carry no trailing `.0` (integral formatting).
            assert!(
                buckets.iter().all(|(le, _)| !le.ends_with(".0")),
                "{metric} le formatting: {buckets:?}"
            );
            // `_count` equals the `+Inf` bucket.
            let count = series_value(&text, &format!("{metric}_count{{function=\"fn\"}}"))
                .expect("count rendered");
            assert_eq!(count as u64, buckets.last().unwrap().1);
            assert_eq!(count as u64, expected_count);
            assert!(
                series_value(&text, &format!("{metric}_sum{{function=\"fn\"}}")).is_some(),
                "{metric}_sum rendered"
            );
        }
        assert!(
            (series_value(&text, "faas_latency_ms_sum{function=\"fn\"}").unwrap() - 5067.5).abs()
                < 1e-6
        );
        assert!(text.contains("faas_request_errors_total{function=\"fn\"} 1"));
        assert!(text.contains("prebake_restore_major_faults_total{function=\"fn\"} 0"));

        // Every line is `name{labels} value` with a parseable value.
        for line in text.lines() {
            let (_, value) = line.rsplit_once(' ').expect("space-separated sample");
            assert!(value.parse::<f64>().is_ok(), "unparseable value in {line}");
        }
    }

    #[test]
    fn extent_restore_counters_render() {
        let mut m = Metrics::new();
        m.function("fn").restore_extents.add(5);
        m.function("fn").restore_faults_avoided.add(12);
        let text = m.render();
        assert!(text.contains("prebake_restore_extents_total{function=\"fn\"} 5"));
        assert!(text.contains("prebake_restore_faults_avoided_total{function=\"fn\"} 12"));
    }

    #[test]
    fn parallel_and_layout_counters_render() {
        let mut m = Metrics::new();
        m.function("fn").restore_shards.add(4);
        m.function("fn").restore_seek_bytes_avoided.add(1 << 20);
        m.function("fn").restore_pages_compacted.add(7);
        let text = m.render();
        assert!(text.contains("prebake_restore_shards_total{function=\"fn\"} 4"));
        assert!(text.contains("prebake_restore_seek_bytes_avoided_total{function=\"fn\"} 1048576"));
        assert!(text.contains("prebake_restore_pages_compacted_total{function=\"fn\"} 7"));
    }

    #[test]
    fn shared_encoder_handles_unlabelled_and_multi_label_series() {
        let mut h = Histogram::new(&[1.0, 2.5]);
        h.observe(0.5);
        h.observe(2.0);

        let mut bare = String::new();
        render_histogram(&mut bare, "m_ms", "", &h);
        assert!(bare.contains("m_ms_bucket{le=\"1\"} 1\n"));
        assert!(bare.contains("m_ms_bucket{le=\"2.5\"} 2\n"));
        assert!(bare.contains("m_ms_bucket{le=\"+Inf\"} 2\n"));
        assert!(bare.contains("m_ms_sum 2.500\n"));
        assert!(bare.contains("m_ms_count 2\n"));

        let mut labelled = String::new();
        render_histogram(&mut labelled, "m_ms", "tenant=\"a\",node=\"0\"", &h);
        assert!(labelled.contains("m_ms_bucket{tenant=\"a\",node=\"0\",le=\"1\"} 1\n"));
        assert!(labelled.contains("m_ms_sum{tenant=\"a\",node=\"0\"} 2.500\n"));
        assert!(labelled.contains("m_ms_count{tenant=\"a\",node=\"0\"} 2\n"));
    }

    #[test]
    fn render_prometheus_format() {
        let mut m = Metrics::new();
        m.function("noop").requests.add(3);
        m.function("noop").latency.observe(12.0);
        let text = m.render();
        assert!(text.contains("faas_requests_total{function=\"noop\"} 3"));
        assert!(text.contains("faas_latency_ms_count{function=\"noop\"} 1"));
        assert_eq!(m.names().collect::<Vec<_>>(), vec!["noop"]);
        assert!(m.get("noop").is_some());
        assert!(m.get("ghost").is_none());
    }
}
