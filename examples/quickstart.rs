//! Quickstart: the prebaking idea in sixty lines.
//!
//! Boots the paper's Markdown function the vanilla way, prebakes a
//! snapshot of it, starts a second replica by restoring that snapshot,
//! and shows (a) the cold-start gap and (b) that both replicas produce
//! byte-identical responses.
//!
//! Run with: `cargo run --release --example quickstart`

use prebake_core::env::{fresh_container, provision_machine, Deployment};
use prebake_core::prebaker::{bake, SnapshotPolicy};
use prebake_core::starter::{PrebakeStarter, Starter, VanillaStarter};
use prebake_functions::FunctionSpec;
use prebake_sim::kernel::Kernel;

fn main() {
    // One virtual machine: everything below runs deterministically on it.
    let mut kernel = Kernel::new(42);
    let watchdog = provision_machine(&mut kernel).expect("provision machine");

    // Deploy the Markdown Render function.
    let dep =
        Deployment::install(&mut kernel, FunctionSpec::markdown(), 8080).expect("install function");
    let request = dep.spec.sample_request();

    // 1) Vanilla cold start: clone + exec + runtime bootstrap + app init.
    fresh_container(&mut kernel, &[]).expect("reset caches");
    let mut vanilla = VanillaStarter
        .start(&mut kernel, watchdog, &dep)
        .expect("vanilla start");
    let vanilla_response = vanilla
        .replica
        .handle(&mut kernel, &request)
        .expect("vanilla request");
    println!(
        "vanilla start-up : {:>8.2} ms",
        vanilla.startup.as_millis_f64()
    );
    println!("  phases         : {}", vanilla.phases);

    // The vanilla replica's job is done; free its port for the demo.
    kernel
        .sys_exit(vanilla.replica.pid(), 0)
        .expect("stop replica");
    kernel.reap(vanilla.replica.pid()).expect("reap replica");

    // 2) Prebake: boot once at "build time", warm with one request, dump.
    let report = bake(
        &mut kernel,
        watchdog,
        &dep,
        SnapshotPolicy::AfterWarmup(1),
        &dep.images_dir(),
    )
    .expect("bake snapshot");
    println!(
        "baked snapshot   : {:>8.2} MB ({} pages, {} zero pages deduplicated)",
        report.snapshot_bytes() as f64 / 1e6,
        report.dump.pages_stored,
        report.dump.zero_pages,
    );

    // 3) Prebaked cold start: criu restore + re-attach. No exec, no RTS,
    //    no class loading, no JIT.
    let mut prebaked = PrebakeStarter::new()
        .start(&mut kernel, watchdog, &dep)
        .expect("prebake start");
    let prebaked_response = prebaked
        .replica
        .handle(&mut kernel, &request)
        .expect("prebaked request");
    println!(
        "prebaked start-up: {:>8.2} ms",
        prebaked.startup.as_millis_f64()
    );
    println!("  phases         : {}", prebaked.phases);

    // Same function, same answer.
    assert_eq!(
        vanilla_response.body, prebaked_response.body,
        "restored replica must behave identically"
    );
    let improvement = (vanilla.startup.as_millis_f64() - prebaked.startup.as_millis_f64())
        / vanilla.startup.as_millis_f64()
        * 100.0;
    println!(
        "\nprebaking cut this cold start by {improvement:.0}% \
         (paper: 40-71% across functions), responses identical ({} bytes of HTML)",
        prebaked_response.body.len()
    );
}
