//! Gateway demo: streamed invocations through the typed client SDK.
//!
//! Fronts a prebaked Markdown Render deployment with the streaming
//! gateway and walks the three paths a caller sees:
//!
//! 1. a **cold** invocation — restored from the prebaked snapshot, its
//!    HTML reply streamed chunk by chunk (time-to-first-chunk lands well
//!    before the last byte);
//! 2. a **warm** repeat with a different document — same replica, no
//!    restore cost;
//! 3. a **cached** repeat of the first document — answered at the edge
//!    in under a millisecond without touching a replica.
//!
//! It finishes with an open-loop Poisson burst that overruns admission,
//! showing bounded queueing and typed backpressure in the ledger.
//!
//! Run with: `cargo run --release --example gateway_demo`

use prebake_functions::FunctionSpec;
use prebake_gateway::{CacheConfig, Gateway, GatewayClient, GatewayConfig, StreamConfig};
use prebake_platform::{
    FunctionBuilder, Platform, PlatformConfig, PoissonProcess, Registry, Template,
};
use prebake_runtime::http::Request;
use prebake_sim::time::{SimDuration, SimInstant};

fn main() {
    // Build the prebaked image and front the platform with a gateway
    // that streams in 4 KiB chunks and caches results for 60 s.
    let spec = FunctionSpec::markdown();
    let request = spec.sample_request();
    let registry = Registry::new();
    registry.push(
        FunctionBuilder
            .build(spec, &Template::java11_criu_prefetch())
            .expect("build image"),
    );
    let platform = Platform::new(PlatformConfig::default(), registry);
    let gateway = Gateway::new(
        platform,
        GatewayConfig {
            inflight_per_worker: 4,
            queue_per_worker: 8,
            stream: StreamConfig {
                chunks: 8,
                chunk_bytes: 4 * 1024,
            },
            cache: CacheConfig {
                default_ttl: Some(SimDuration::from_secs(60)),
                ..CacheConfig::default()
            },
        },
    );
    let mut client = GatewayClient::new(gateway);
    client.deploy("markdown-render").expect("deploy");

    println!("== single invocations ==");
    let cold = client
        .invoke("markdown-render", request.clone())
        .expect("cold invoke");
    report("cold (prebaked restore)", &cold);

    let warm = client
        .invoke(
            "markdown-render",
            Request::with_body(&b"# another document\n\nwarm path"[..]),
        )
        .expect("warm invoke");
    report("warm (same replica)", &warm);

    let cached = client
        .invoke("markdown-render", request.clone())
        .expect("cached invoke");
    report("cached (edge serve)", &cached);

    // Open-loop burst: 8000 req/s for a quarter of a virtual second —
    // roughly twice what four 1 ms-service slots can carry. Every
    // arrival renders a *different* document (so the cache can't absorb
    // the burst), arrivals ignore completions, the queue fills, and the
    // overflow sheds with backpressure.
    println!("\n== open-loop Poisson burst ==");
    let stream = PoissonProcess::new(
        "markdown-render",
        8_000.0,
        client.gateway().now(),
        SimDuration::from_millis(250),
        42,
    )
    .expect("valid poisson args");
    let gw = client.gateway_mut();
    for (i, arrival) in stream.enumerate() {
        let arrival = arrival.expect("generator stays in range");
        let doc = format!("# document {i}\n\nburst traffic");
        gw.arrive(
            arrival.at,
            &arrival.function,
            Request::with_body(doc.into_bytes()),
        )
        .expect("function deployed");
    }
    let rep = gw.finish().expect("drain the burst");
    println!(
        "  offered {}  admitted {}  deferred {}  shed {}  (peak queue {})",
        rep.admission.offered,
        rep.admission.admitted,
        rep.admission.deferred,
        rep.admission.shed,
        rep.admission.peak_queue,
    );
    println!("  replies collected: {}", rep.replies.len());

    let gw = client.into_gateway();
    assert!(gw.conserved(), "every arrival accounted for");
    let m = gw.metrics();
    println!(
        "  cache: {} hits / {} misses (hit ratio {:.2})",
        m.cache_hits.get(),
        m.cache_misses.get(),
        m.cache_hit_ratio(),
    );
    println!(
        "  ttfc p50 {:.2} ms  p99 {:.2} ms  cached-serve max {:.3} ms",
        m.ttfc_ms.quantile(0.5),
        m.ttfc_ms.quantile(0.99),
        m.cached_serve_max_ms,
    );
}

fn report(label: &str, reply: &prebake_gateway::InvokeReply) {
    let arrived = reply.arrived.saturating_duration_since(SimInstant::EPOCH);
    println!(
        "  {label:24} t={:>8.2}ms  ttfc {:>6.3}ms  total {:>7.3}ms  {} chunks, {} bytes{}",
        arrived.as_millis_f64(),
        reply.ttfc_ms(),
        reply.latency_ms(),
        reply.chunks.len(),
        reply.body.len(),
        if reply.cached { "  [cache]" } else { "" },
    );
}
