//! Autoscaling under bursty load: where cold starts actually hurt.
//!
//! The paper's motivation is the tail latency users see when the
//! platform scales up (or from zero) under a demand surge. This example
//! throws identical traffic — steady Poisson arrivals plus a burst after
//! an idle period long enough for scale-to-zero — at two deployments of
//! the Image Resizer, one vanilla and one prebaked, and compares the
//! latency tails and replica churn.
//!
//! Run with: `cargo run --release --example autoscale_burst`

use prebake_functions::FunctionSpec;
use prebake_platform::builder::{FunctionBuilder, Template};
use prebake_platform::loadgen;
use prebake_platform::platform::{Platform, PlatformConfig};
use prebake_platform::registry::Registry;
use prebake_runtime::http::Request;
use prebake_sim::time::{SimDuration, SimInstant};
use prebake_stats::summary::quantile;

fn run_scenario(template: &Template) -> (Vec<f64>, u64, u64) {
    let registry = Registry::new();
    registry.push(
        FunctionBuilder
            .build(FunctionSpec::image_resizer(), template)
            .expect("build image"),
    );
    let config = PlatformConfig {
        idle_timeout: SimDuration::from_secs(15),
        ..PlatformConfig::default()
    };
    let mut platform = Platform::new(config, registry);
    platform.deploy_function("image-resizer").expect("deploy");

    // Steady trickle for ~20s, then silence, then a 10-request burst at
    // t=60s — well past the idle GC, so the burst lands on zero replicas.
    loadgen::poisson(
        &mut platform,
        "image-resizer",
        30,
        SimInstant::EPOCH,
        SimDuration::from_millis(700),
        11,
        |_| Request::empty(),
    )
    .expect("steady load");
    loadgen::burst(
        &mut platform,
        "image-resizer",
        10,
        SimInstant::EPOCH + SimDuration::from_secs(60),
        |_| Request::empty(),
    )
    .expect("burst");
    platform.run().expect("run platform");

    let latencies: Vec<f64> = platform
        .completed()
        .iter()
        .map(|r| r.latency_ms())
        .collect();
    let metrics = platform.metrics().get("image-resizer").expect("metrics");
    (
        latencies,
        metrics.cold_starts.get(),
        metrics.replicas_started.get(),
    )
}

fn main() {
    println!("autoscale burst — Image Resizer, scale-to-zero platform\n");
    println!(
        "{:<10} {:>9} {:>9} {:>9} {:>12} {:>9}",
        "variant", "p50", "p95", "p99", "cold starts", "replicas"
    );
    for (label, template) in [
        ("vanilla", Template::java11()),
        ("prebaked", Template::java11_criu()),
    ] {
        let (latencies, cold, started) = run_scenario(&template);
        println!(
            "{label:<10} {:>7.1}ms {:>7.1}ms {:>7.1}ms {:>12} {:>9}",
            quantile(&latencies, 0.50),
            quantile(&latencies, 0.95),
            quantile(&latencies, 0.99),
            cold,
            started
        );
    }
    println!(
        "\nthe burst after scale-to-zero forces cold starts in both deployments; \
         prebaking shrinks each one (~310ms -> ~90ms for this function), which is \
         exactly the tail the paper attacks."
    );
}
