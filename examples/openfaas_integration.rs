//! The paper's §5 feasibility study: integrating prebaking with an
//! OpenFaaS-style platform.
//!
//! Walks the exact CLI flow the paper lists — `faas-cli new` from a CRIU
//! template, `build` (which boots, warms and checkpoints the function
//! into the container image), `push`, `deploy` (requiring privileged
//! restore), then compares gateway-observed cold starts against the same
//! function deployed from the plain template.
//!
//! Run with: `cargo run --release --example openfaas_integration`

use prebake_functions::FunctionSpec;
use prebake_platform::openfaas::{FaasGateway, ProviderConfig};
use prebake_platform::platform::PlatformConfig;

fn main() {
    // --- plain template ------------------------------------------------
    let mut plain = FaasGateway::new(PlatformConfig::default(), ProviderConfig::default());
    let project = plain
        .new_project(FunctionSpec::markdown(), "java11")
        .expect("faas-cli new");
    let image = plain.build(&project).expect("faas-cli build");
    println!(
        "[java11]          built image (prebaked: {})",
        image.is_prebaked()
    );
    plain.push(image);
    plain.deploy("markdown-render").expect("faas-cli deploy");
    let request = FunctionSpec::markdown().sample_request();
    let cold_plain = plain
        .invoke_and_wait("markdown-render", request.clone())
        .expect("invoke");
    println!("[java11]          cold start via gateway: {cold_plain:.2} ms");

    // --- CRIU template ---------------------------------------------------
    let mut criu = FaasGateway::new(PlatformConfig::default(), ProviderConfig::default());
    let project = criu
        .new_project(FunctionSpec::markdown(), "java11-criu-warm1")
        .expect("faas-cli new");
    let image = criu
        .build(&project)
        .expect("faas-cli build (bakes snapshot)");
    println!(
        "[java11-criu]     built image (prebaked: {}, snapshot {:.1} MB)",
        image.is_prebaked(),
        image.snapshot_bytes() as f64 / 1e6
    );
    criu.push(image);
    criu.deploy("markdown-render").expect("faas-cli deploy");
    let cold_criu = criu
        .invoke_and_wait("markdown-render", request.clone())
        .expect("invoke");
    println!("[java11-criu]     cold start via gateway: {cold_criu:.2} ms");

    // --- privileged requirement -----------------------------------------
    let mut locked_down = FaasGateway::new(
        PlatformConfig::default(),
        ProviderConfig {
            backend: "kubernetes".into(),
            allow_privileged: false,
        },
    );
    let project = locked_down
        .new_project(FunctionSpec::markdown(), "java11-criu")
        .expect("faas-cli new");
    let image = locked_down.build(&project).expect("faas-cli build");
    locked_down.push(image);
    match locked_down.deploy("markdown-render") {
        Err(e) => println!("[locked-down]     deploy refused as expected: {e}"),
        Ok(()) => panic!("privileged restore must be refused when disallowed"),
    }

    // --- warm traffic ------------------------------------------------------
    let warm = criu
        .invoke_and_wait("markdown-render", request)
        .expect("invoke warm");
    println!("[java11-criu]     warm request          : {warm:.2} ms");
    println!("{}", criu.platform().metrics().render());

    let improvement = (cold_plain - cold_criu) / cold_plain * 100.0;
    println!(
        "prebaking cut the gateway-observed cold start by {improvement:.0}% \
         (paper reports 47% for Markdown Render)"
    );
}
