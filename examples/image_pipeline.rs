//! Image pipeline: the paper's heaviest workload, end to end.
//!
//! The Image Resizer decodes a ~1 MB 3440×1440 source into ≈86 MB of
//! in-process buffers at start-up — which is why its snapshot is 99.2 MB
//! and why prebaking helps it most (−71 % in the paper). This example
//! walks the full pipeline: vanilla boot, request servicing with a real
//! box-filter resize, snapshotting, restore, and a pixel-exact
//! comparison of outputs before and after restore.
//!
//! Run with: `cargo run --release --example image_pipeline`

use prebake_core::env::{provision_machine, Deployment};
use prebake_core::prebaker::{bake, SnapshotPolicy};
use prebake_core::starter::{PrebakeStarter, Starter, VanillaStarter};
use prebake_functions::image::Bitmap;
use prebake_functions::FunctionSpec;
use prebake_runtime::http::Request;
use prebake_sim::kernel::Kernel;

fn main() {
    let mut kernel = Kernel::new(7);
    let watchdog = provision_machine(&mut kernel).expect("provision machine");
    let dep = Deployment::install(&mut kernel, FunctionSpec::image_resizer(), 8080)
        .expect("install image-resizer");

    // Vanilla boot: the APPINIT phase dominates — it reads and decodes
    // the source image (paper Fig. 4).
    let mut vanilla = VanillaStarter
        .start(&mut kernel, watchdog, &dep)
        .expect("vanilla start");
    println!(
        "vanilla start-up : {:>8.2} ms",
        vanilla.startup.as_millis_f64()
    );
    println!("  phases         : {}", vanilla.phases);
    let resident_mb = kernel
        .process(vanilla.replica.pid())
        .expect("replica process")
        .mem
        .resident_bytes() as f64
        / 1e6;
    println!("  replica RSS    : {resident_mb:>8.2} MB (decoded bitmap + working set)");

    // Scale the source down to 10% — a real box filter over real pixels.
    let response = vanilla
        .replica
        .handle(&mut kernel, &Request::empty())
        .expect("resize request");
    let scaled = Bitmap::parse(&response.body).expect("valid bitmap response");
    println!(
        "  resized output : {}x{} ({} KB)",
        scaled.width,
        scaled.height,
        response.body.len() / 1024
    );

    // Retire the vanilla replica, then prebake and restore.
    kernel.sys_exit(vanilla.replica.pid(), 0).expect("stop");
    kernel.reap(vanilla.replica.pid()).expect("reap");

    let report = bake(
        &mut kernel,
        watchdog,
        &dep,
        SnapshotPolicy::AfterReady,
        &dep.images_dir(),
    )
    .expect("bake");
    println!(
        "snapshot         : {:>8.2} MB (paper reports 99.2 MB)",
        report.snapshot_bytes() as f64 / 1e6
    );

    let mut prebaked = PrebakeStarter::new()
        .start(&mut kernel, watchdog, &dep)
        .expect("prebaked start");
    println!(
        "prebaked start-up: {:>8.2} ms",
        prebaked.startup.as_millis_f64()
    );

    let restored_response = prebaked
        .replica
        .handle(&mut kernel, &Request::empty())
        .expect("resize after restore");
    assert_eq!(
        response.body, restored_response.body,
        "restored replica must produce pixel-identical output"
    );
    println!(
        "restored replica resized identically ({} bytes) — the decoded image \
         survived the snapshot, so the {:.0} ms decode never re-ran",
        restored_response.body.len(),
        vanilla.phases.appinit.as_millis_f64()
    );
}
