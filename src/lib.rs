//! # prebake
//!
//! A production-quality Rust reproduction of *"Prebaking Functions to
//! Warm the Serverless Cold Start"* (Silva, Fireman & Pereira,
//! Middleware '20, DOI 10.1145/3423211.3425682).
//!
//! The paper's **prebaking** technique replaces the fork-exec cold-start
//! path of serverless function replicas with the restoration of CRIU
//! process snapshots taken at build time — optionally *after warming the
//! function*, so class-loading and JIT state ride along. This workspace
//! rebuilds that system end to end over a deterministic OS substrate:
//!
//! | crate | role |
//! |---|---|
//! | [`prebake_sim`] | virtual-clock kernel: processes, pages, VMAs, simfs + page cache, ptrace, `/proc`, capabilities |
//! | [`prebake_runtime`] | "JLVM" managed runtime: real class-file parsing/verification, lazy JIT, in-guest state |
//! | [`prebake_criu`] | checkpoint/restore: parasite dump pipeline, image format, privileged restore, image cache |
//! | [`prebake_lazy`] | lazy restore: working-set recording, `ws.img`, prefetch planning over the demand-paging kernel |
//! | [`prebake_functions`] | the paper's workloads: NOOP, Markdown renderer, Image Resizer, synthetic class sets |
//! | [`prebake_core`] | the contribution: snapshot policies, vanilla vs prebake starters, phase measurement, trial harness |
//! | [`prebake_platform`] | SPEC-RG / OpenFaaS platform: function registry, builder templates, autoscaler, gateway, load generation |
//! | [`prebake_registry`] | snapshot registry tier: content-addressed manifests, network-charged pulls, per-node pull-through caches |
//! | [`prebake_obs`] | fleet telemetry: windowed time-series recorder, SLO burn engine, tail-sampled tracing with exemplars |
//! | [`prebake_stats`] | bootstrap CIs, Shapiro–Wilk, Wilcoxon–Mann–Whitney, ECDFs |
//!
//! See `README.md` for the architecture overview, `DESIGN.md` for the
//! substitution statement and experiment index, and `EXPERIMENTS.md` for
//! paper-vs-measured results of every table and figure.
//!
//! ## Quick taste
//!
//! ```
//! use prebake_core::measure::{StartMode, TrialRunner};
//! use prebake_functions::FunctionSpec;
//!
//! // The paper's Fig. 3 comparison for the Markdown function, 3 reps.
//! let vanilla = TrialRunner::new(FunctionSpec::markdown(), StartMode::Vanilla).unwrap();
//! let prebake = TrialRunner::new(FunctionSpec::markdown(), StartMode::PrebakeNoWarmup).unwrap();
//! let v = vanilla.startup_trial(0).unwrap().startup_ms;
//! let p = prebake.startup_trial(0).unwrap().startup_ms;
//! assert!(p < 0.7 * v, "prebaking removes the ~70ms runtime bootstrap");
//! ```

#![warn(missing_docs)]

pub use prebake_core as core;
pub use prebake_criu as criu;
pub use prebake_functions as functions;
pub use prebake_lazy as lazy;
pub use prebake_platform as platform;
// Re-exported under its full name so the *snapshot* registry
// (image-byte distribution, `prebake_registry::SnapshotRegistry`) can
// never be confused with the platform's *function* registry
// (build metadata, `prebake_platform::registry::Registry`).
pub use prebake_registry;
// Full name for the same reason: `obs` the telemetry stack, not an
// abbreviation that could collide with a future module.
pub use prebake_obs;
pub use prebake_runtime as runtime;
pub use prebake_sim as sim;
pub use prebake_stats as stats;
